//! The service-model plugin registry: SMs as versioned descriptors.
//!
//! FlexRIC's pitch is that service models are "specifications in their own
//! right" that plug into a thin SDK (paper §3, Appendix A.3) — the SDK
//! must not need editing to speak a new one.  This module is the mechanism:
//! every SM, bundled or third-party, is described by an [`SmDescriptor`]
//! — RAN function id, OID, `major.minor` [`SmVersion`], a type-erased
//! codec vtable ([`SmVtable`]), optional delta-stream hooks, and a funcdef
//! builder — registered in an [`SmRegistry`].
//!
//! The layers consume it as follows:
//!
//! * **agents** advertise `oid@version` from the descriptor at E2 Setup,
//! * **servers** negotiate per advertised function via
//!   [`SmRegistry::negotiate`]: the major version must match and the
//!   highest registered minor wins; unknown OIDs and major mismatches are
//!   rejected with an explicit E2AP cause (never silently dropped),
//! * **iApps/xApps** decode triggers, indications, controls and delta
//!   streams through the vtable instead of static `match` arms, and the
//!   northbound exposes [`SmRegistry::list`] for out-of-process discovery.
//!
//! Registration rules: the same OID may register several versions (they
//! coexist; resolution picks by semver), but registering the same
//! OID+version twice is an error — never a silent overwrite — as is
//! claiming a RAN function id already owned by a different OID.
//!
//! The process-wide instance is [`global()`], pre-loaded with the bundled
//! SM set; `examples/custom_sm.rs` registers a brand-new SM against it
//! with zero edits anywhere in this crate.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

use bytes::Bytes;
use flexric_codec::error::{CodecError, Result};
use flexric_e2ap::{FnVersion, RanFunctionId, RanFunctionItem};

use crate::delta::{DeltaDecoder, DeltaEvent, DeltaRows};
use crate::funcdef::RanFuncDef;
use crate::{oid, rf, ReportTrigger, SmCodec, SmPayload};

// ---------------------------------------------------------------------------
// Versions
// ---------------------------------------------------------------------------

/// A service-model version, `major.minor`.
///
/// Semver-compatible negotiation: two versions interoperate iff their
/// majors match; among compatible candidates the highest minor wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SmVersion {
    /// Incompatible-change counter; must match exactly.
    pub major: u16,
    /// Backward-compatible revision; highest wins.
    pub minor: u16,
}

impl SmVersion {
    /// Version 1.0, the default of every bundled SM.
    pub const V1: SmVersion = SmVersion::new(1, 0);

    /// A version literal.
    pub const fn new(major: u16, minor: u16) -> Self {
        SmVersion { major, minor }
    }

    /// Whether an offered version can be served by this one (majors match).
    pub fn compatible(&self, offered: SmVersion) -> bool {
        self.major == offered.major
    }

    /// As a `(major, minor)` pair, for wire types that avoid this crate.
    pub fn as_pair(&self) -> (u16, u16) {
        (self.major, self.minor)
    }

    /// From a `(major, minor)` pair.
    pub fn from_pair((major, minor): (u16, u16)) -> Self {
        SmVersion { major, minor }
    }
}

impl Default for SmVersion {
    fn default() -> Self {
        SmVersion::V1
    }
}

impl From<FnVersion> for SmVersion {
    fn from(v: FnVersion) -> Self {
        SmVersion { major: v.major, minor: v.minor }
    }
}

impl From<SmVersion> for FnVersion {
    fn from(v: SmVersion) -> Self {
        FnVersion { major: v.major, minor: v.minor }
    }
}

impl fmt::Display for SmVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

// ---------------------------------------------------------------------------
// Type-erased codec vtable
// ---------------------------------------------------------------------------

/// A decoded SM payload with its concrete type erased; downcast with
/// `payload.downcast_ref::<T>()` when the concrete type is known.
pub type AnyPayload = Box<dyn Any + Send>;

/// Decodes a payload of one kind (trigger, indication, …) from the wire.
pub type DecodeAnyFn = fn(SmCodec, &[u8]) -> Result<AnyPayload>;

/// Encodes a payload of one kind; `None` if the value is not this SM's
/// concrete type.
pub type EncodeAnyFn = fn(&(dyn Any + Send), SmCodec) -> Option<Vec<u8>>;

fn decode_any<T: SmPayload + Send + 'static>(codec: SmCodec, buf: &[u8]) -> Result<AnyPayload> {
    T::decode(codec, buf).map(|v| Box::new(v) as AnyPayload)
}

fn encode_any<T: SmPayload + Send + 'static>(
    v: &(dyn Any + Send),
    codec: SmCodec,
) -> Option<Vec<u8>> {
    v.downcast_ref::<T>().map(|t| t.encode(codec))
}

/// One reconstruction event from a type-erased delta stream.
pub enum AnyDeltaEvent {
    /// The stream's current full snapshot, reconstructed.
    Snapshot {
        /// The reconstruction, type-erased.
        snap: AnyPayload,
        /// Whether content changed relative to the previous reconstruction.
        changed: bool,
    },
    /// The frame could not be applied; ask the sender for a keyframe.
    NeedKeyframe,
}

/// A per-subscription delta-stream decoder with the snapshot type erased.
pub trait AnyDeltaDecoder: Send {
    /// Applies one wire frame.
    fn apply(&mut self, frame: &[u8], codec: SmCodec) -> Result<AnyDeltaEvent>;
}

struct TypedDeltaDecoder<T: DeltaRows>(DeltaDecoder<T>);

impl<T: DeltaRows + Send + 'static> AnyDeltaDecoder for TypedDeltaDecoder<T> {
    fn apply(&mut self, frame: &[u8], codec: SmCodec) -> Result<AnyDeltaEvent> {
        Ok(match self.0.apply(frame, codec)? {
            DeltaEvent::Snapshot { snap, changed, .. } => {
                AnyDeltaEvent::Snapshot { snap: Box::new(snap), changed }
            }
            DeltaEvent::NeedKeyframe { .. } => AnyDeltaEvent::NeedKeyframe,
        })
    }
}

fn new_delta_decoder<T: DeltaRows + Send + 'static>() -> Box<dyn AnyDeltaDecoder> {
    Box::new(TypedDeltaDecoder(DeltaDecoder::<T>::new()))
}

/// The per-payload-kind codec vtable of one SM.
///
/// Every slot is optional: an SM without a control plane leaves the ctrl
/// slots empty, a header-less SM leaves the hdr slots empty, and only
/// monitoring SMs install delta hooks.
#[derive(Default)]
pub struct SmVtable {
    /// Event trigger definition.
    pub decode_trigger: Option<DecodeAnyFn>,
    /// Action definition.
    pub decode_action: Option<DecodeAnyFn>,
    /// Indication header.
    pub decode_indication_hdr: Option<DecodeAnyFn>,
    /// Indication message.
    pub decode_indication: Option<DecodeAnyFn>,
    /// Indication message, encode side.
    pub encode_indication: Option<EncodeAnyFn>,
    /// Control header.
    pub decode_ctrl_hdr: Option<DecodeAnyFn>,
    /// Control message.
    pub decode_ctrl: Option<DecodeAnyFn>,
    /// Control message, encode side.
    pub encode_ctrl: Option<EncodeAnyFn>,
    /// Control outcome.
    pub decode_ctrl_outcome: Option<DecodeAnyFn>,
    /// Fresh per-subscription delta-stream decoder.
    pub new_delta_decoder: Option<fn() -> Box<dyn AnyDeltaDecoder>>,
}

impl fmt::Debug for SmVtable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmVtable")
            .field("trigger", &self.decode_trigger.is_some())
            .field("action", &self.decode_action.is_some())
            .field("indication", &self.decode_indication.is_some())
            .field("ctrl", &self.decode_ctrl.is_some())
            .field("delta", &self.new_delta_decoder.is_some())
            .finish()
    }
}

/// Which SM wire encodings a descriptor supports (the bundled SMs encode
/// with both; a third-party SM may implement only one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecSupport {
    /// ASN.1-aligned-PER style.
    pub per: bool,
    /// FlatBuffers style.
    pub fb: bool,
}

impl Default for CodecSupport {
    fn default() -> Self {
        CodecSupport { per: true, fb: true }
    }
}

impl CodecSupport {
    /// Whether `codec` is supported.
    pub fn supports(&self, codec: SmCodec) -> bool {
        match codec {
            SmCodec::Asn1Per => self.per,
            SmCodec::Flatb => self.fb,
        }
    }
}

// ---------------------------------------------------------------------------
// Descriptors
// ---------------------------------------------------------------------------

/// One versioned service-model descriptor: everything a layer needs to
/// advertise, negotiate, and speak an SM without importing its types.
#[derive(Debug)]
pub struct SmDescriptor {
    /// Default RAN function id advertised for this SM.
    pub ran_function_id: u16,
    /// Object identifier, the cross-layer name of the SM.
    pub oid: String,
    /// `major.minor` version of this descriptor.
    pub version: SmVersion,
    /// Supported SM wire encodings.
    pub supports: CodecSupport,
    /// The RAN function definition advertised at E2 Setup.
    pub funcdef: RanFuncDef,
    /// The type-erased codec vtable.
    pub vtable: SmVtable,
}

impl SmDescriptor {
    /// A descriptor with an empty vtable; chain the builder methods to
    /// install codecs.
    pub fn new(
        ran_function_id: u16,
        oid: impl Into<String>,
        version: SmVersion,
        funcdef: RanFuncDef,
    ) -> Self {
        SmDescriptor {
            ran_function_id,
            oid: oid.into(),
            version,
            supports: CodecSupport::default(),
            funcdef,
            vtable: SmVtable::default(),
        }
    }

    /// Installs the trigger codec (most SMs use [`ReportTrigger`]).
    pub fn trigger<T: SmPayload + Send + 'static>(mut self) -> Self {
        self.vtable.decode_trigger = Some(decode_any::<T>);
        self
    }

    /// Installs the action-definition codec.
    pub fn action<T: SmPayload + Send + 'static>(mut self) -> Self {
        self.vtable.decode_action = Some(decode_any::<T>);
        self
    }

    /// Installs the indication-header codec.
    pub fn indication_hdr<T: SmPayload + Send + 'static>(mut self) -> Self {
        self.vtable.decode_indication_hdr = Some(decode_any::<T>);
        self
    }

    /// Installs the indication-message codec (encode + decode).
    pub fn indication<T: SmPayload + Send + 'static>(mut self) -> Self {
        self.vtable.decode_indication = Some(decode_any::<T>);
        self.vtable.encode_indication = Some(encode_any::<T>);
        self
    }

    /// Installs the control-header codec.
    pub fn ctrl_hdr<T: SmPayload + Send + 'static>(mut self) -> Self {
        self.vtable.decode_ctrl_hdr = Some(decode_any::<T>);
        self
    }

    /// Installs the control-message codec (encode + decode).
    pub fn ctrl<T: SmPayload + Send + 'static>(mut self) -> Self {
        self.vtable.decode_ctrl = Some(decode_any::<T>);
        self.vtable.encode_ctrl = Some(encode_any::<T>);
        self
    }

    /// Installs the control-outcome codec.
    pub fn ctrl_outcome<T: SmPayload + Send + 'static>(mut self) -> Self {
        self.vtable.decode_ctrl_outcome = Some(decode_any::<T>);
        self
    }

    /// Installs delta-stream hooks: the indication stream may carry
    /// dirty-field deltas of `T` ([`crate::delta`]).
    pub fn delta<T: DeltaRows + Send + 'static>(mut self) -> Self {
        self.vtable.new_delta_decoder = Some(new_delta_decoder::<T>);
        self
    }

    /// Restricts the supported wire encodings.
    pub fn codecs(mut self, supports: CodecSupport) -> Self {
        self.supports = supports;
        self
    }

    /// Encodes the advertised RAN function definition.
    pub fn funcdef_bytes(&self, codec: SmCodec) -> Vec<u8> {
        self.funcdef.encode(codec)
    }

    /// Decodes an indication message through the vtable.
    pub fn decode_indication(&self, codec: SmCodec, buf: &[u8]) -> Result<AnyPayload> {
        let f = self
            .vtable
            .decode_indication
            .ok_or(CodecError::Malformed { what: "SM has no indication codec" })?;
        f(codec, buf)
    }

    /// Decodes a report trigger through the vtable.
    pub fn decode_trigger(&self, codec: SmCodec, buf: &[u8]) -> Result<AnyPayload> {
        let f = self
            .vtable
            .decode_trigger
            .ok_or(CodecError::Malformed { what: "SM has no trigger codec" })?;
        f(codec, buf)
    }

    /// Encodes an indication message through the vtable; `None` if the SM
    /// has no indication codec or `v` is a different concrete type.
    pub fn encode_indication(&self, v: &(dyn Any + Send), codec: SmCodec) -> Option<Vec<u8>> {
        self.vtable.encode_indication.and_then(|f| f(v, codec))
    }

    /// Starts a fresh delta-stream decoder, if this SM speaks deltas.
    pub fn delta_decoder(&self) -> Option<Box<dyn AnyDeltaDecoder>> {
        self.vtable.new_delta_decoder.map(|f| f())
    }

    /// `oid@major.minor`, the advertisement label.
    pub fn label(&self) -> String {
        format!("{}@{}", self.oid, self.version)
    }

    /// The E2AP advertisement of this descriptor: the [`RanFunctionItem`]
    /// an agent (or relay) sends at E2 Setup.
    pub fn advertisement(&self, sm_codec: SmCodec) -> RanFunctionItem {
        RanFunctionItem {
            id: RanFunctionId::new(self.ran_function_id),
            definition: Bytes::from(self.funcdef_bytes(sm_codec)),
            revision: 1,
            oid: self.oid.clone(),
            version: self.version.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// Why a registration was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterError {
    /// This OID+version is already registered; re-registration is an
    /// error, never a silent overwrite.
    DuplicateVersion {
        /// The conflicting OID.
        oid: String,
        /// The conflicting version.
        version: SmVersion,
    },
    /// The RAN function id is already owned by a different OID.
    FunctionIdTaken {
        /// The requested id.
        ran_function_id: u16,
        /// The OID that owns it.
        taken_by: String,
    },
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::DuplicateVersion { oid, version } => {
                write!(f, "SM {oid}@{version} is already registered")
            }
            RegisterError::FunctionIdTaken { ran_function_id, taken_by } => {
                write!(f, "RAN function id {ran_function_id} is already owned by {taken_by}")
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// Why capability negotiation failed for one advertised function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NegotiationError {
    /// No descriptor with this OID is registered.
    UnknownOid {
        /// The offered OID.
        oid: String,
    },
    /// Descriptors exist, but none shares the offered major version.
    MajorMismatch {
        /// The offered OID.
        oid: String,
        /// The offered version.
        offered: SmVersion,
        /// Every registered version of the OID.
        supported: Vec<SmVersion>,
    },
}

impl fmt::Display for NegotiationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NegotiationError::UnknownOid { oid } => write!(f, "unknown service model {oid}"),
            NegotiationError::MajorMismatch { oid, offered, supported } => {
                write!(f, "{oid}@{offered} is major-incompatible with registered {supported:?}")
            }
        }
    }
}

impl std::error::Error for NegotiationError {}

#[derive(Default)]
struct Inner {
    /// Descriptors per OID, ascending by version.
    by_oid: HashMap<String, Vec<Arc<SmDescriptor>>>,
    /// Latest descriptor per RAN function id.
    by_rf: HashMap<u16, Arc<SmDescriptor>>,
}

/// A registry of versioned SM descriptors.
///
/// Thread-safe; layers usually share the process-wide [`global()`]
/// instance, but isolated registries (tests, multi-tenant controllers)
/// can be built with [`SmRegistry::new`].
#[derive(Default)]
pub struct SmRegistry {
    inner: RwLock<Inner>,
}

impl SmRegistry {
    /// An empty registry (no bundled SMs).
    pub fn new() -> Self {
        SmRegistry::default()
    }

    /// Registers a descriptor.
    ///
    /// The same OID may register several versions; the same OID+version
    /// twice is a [`RegisterError::DuplicateVersion`], and a RAN function
    /// id owned by a different OID is a [`RegisterError::FunctionIdTaken`].
    pub fn register(
        &self,
        desc: SmDescriptor,
    ) -> std::result::Result<Arc<SmDescriptor>, RegisterError> {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        if let Some(owner) = inner.by_rf.get(&desc.ran_function_id) {
            if owner.oid != desc.oid {
                return Err(RegisterError::FunctionIdTaken {
                    ran_function_id: desc.ran_function_id,
                    taken_by: owner.oid.clone(),
                });
            }
        }
        let entry = inner.by_oid.entry(desc.oid.clone()).or_default();
        if entry.iter().any(|d| d.version == desc.version) {
            return Err(RegisterError::DuplicateVersion {
                oid: desc.oid.clone(),
                version: desc.version,
            });
        }
        let desc = Arc::new(desc);
        entry.push(desc.clone());
        entry.sort_by_key(|d| d.version);
        // The rf index points at the highest registered version.
        match inner.by_rf.get(&desc.ran_function_id) {
            Some(cur) if cur.version > desc.version => {}
            _ => {
                inner.by_rf.insert(desc.ran_function_id, desc.clone());
            }
        }
        Ok(desc)
    }

    /// Resolves an offered `oid@version` to the descriptor that will serve
    /// it: the major must match and the highest registered minor wins.
    pub fn negotiate(
        &self,
        oid: &str,
        offered: SmVersion,
    ) -> std::result::Result<Arc<SmDescriptor>, NegotiationError> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        let Some(versions) = inner.by_oid.get(oid) else {
            return Err(NegotiationError::UnknownOid { oid: oid.to_owned() });
        };
        versions
            .iter()
            .filter(|d| d.version.compatible(offered))
            .last() // ascending order: last compatible = highest minor
            .cloned()
            .ok_or_else(|| NegotiationError::MajorMismatch {
                oid: oid.to_owned(),
                offered,
                supported: versions.iter().map(|d| d.version).collect(),
            })
    }

    /// The highest registered version of an OID.
    pub fn latest(&self, oid: &str) -> Option<Arc<SmDescriptor>> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        inner.by_oid.get(oid).and_then(|v| v.last().cloned())
    }

    /// The descriptor owning a RAN function id (highest version).
    pub fn by_ran_function(&self, ran_function_id: u16) -> Option<Arc<SmDescriptor>> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        inner.by_rf.get(&ran_function_id).cloned()
    }

    /// Every registered version of an OID, ascending.
    pub fn versions(&self, oid: &str) -> Vec<SmVersion> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        inner.by_oid.get(oid).map(|v| v.iter().map(|d| d.version).collect()).unwrap_or_default()
    }

    /// Every registered descriptor, sorted by OID then version — the
    /// introspection listing served over the northbound.
    pub fn list(&self) -> Vec<Arc<SmDescriptor>> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        let mut all: Vec<Arc<SmDescriptor>> =
            inner.by_oid.values().flat_map(|v| v.iter().cloned()).collect();
        all.sort_by(|a, b| a.oid.cmp(&b.oid).then(a.version.cmp(&b.version)));
        all
    }

    /// Number of registered descriptors (all versions).
    pub fn len(&self) -> usize {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        inner.by_oid.values().map(|v| v.len()).sum()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// The process-wide instance + bundled descriptors
// ---------------------------------------------------------------------------

/// Descriptors of the bundled SM set, at their current versions.
pub fn builtin_descriptors() -> Vec<SmDescriptor> {
    vec![
        SmDescriptor::new(
            rf::HW,
            oid::HW,
            SmVersion::V1,
            RanFuncDef::simple("HW", "hello-world ping SM"),
        )
        .trigger::<ReportTrigger>()
        .indication::<crate::hw::HwPing>()
        .ctrl::<crate::hw::HwPing>(),
        SmDescriptor::new(
            rf::MAC_STATS,
            oid::MAC_STATS,
            SmVersion::V1,
            RanFuncDef::simple("MAC_STATS", "MAC layer statistics"),
        )
        .trigger::<ReportTrigger>()
        .indication::<crate::mac::MacStatsInd>()
        .delta::<crate::mac::MacStatsInd>(),
        SmDescriptor::new(
            rf::RLC_STATS,
            oid::RLC_STATS,
            SmVersion::V1,
            RanFuncDef::simple("RLC_STATS", "RLC layer statistics"),
        )
        .trigger::<ReportTrigger>()
        .indication::<crate::rlc::RlcStatsInd>()
        .delta::<crate::rlc::RlcStatsInd>(),
        SmDescriptor::new(
            rf::PDCP_STATS,
            oid::PDCP_STATS,
            SmVersion::V1,
            RanFuncDef::simple("PDCP_STATS", "PDCP layer statistics"),
        )
        .trigger::<ReportTrigger>()
        .indication::<crate::pdcp::PdcpStatsInd>()
        .delta::<crate::pdcp::PdcpStatsInd>(),
        SmDescriptor::new(
            rf::SLICE_CTRL,
            oid::SLICE_CTRL,
            SmVersion::V1,
            RanFuncDef::simple("SLICE_CTRL", "RAN slicing control (SC SM)"),
        )
        .trigger::<ReportTrigger>()
        .indication::<crate::slice::SliceStatsInd>()
        .ctrl::<crate::slice::SliceCtrl>(),
        SmDescriptor::new(
            rf::TC_CTRL,
            oid::TC_CTRL,
            SmVersion::V1,
            RanFuncDef::simple("TC_CTRL", "traffic control (TC SM)"),
        )
        .trigger::<ReportTrigger>()
        .indication::<crate::tc::TcStatsInd>()
        .ctrl::<crate::tc::TcCtrl>(),
        SmDescriptor::new(
            rf::RRC_EVENT,
            oid::RRC_EVENT,
            SmVersion::V1,
            RanFuncDef::simple("RRC_EVENT", "RRC UE-event notifications"),
        )
        .trigger::<ReportTrigger>()
        .indication::<crate::rrc::RrcEventInd>()
        .ctrl::<crate::rrc::RrcCtrl>(),
        SmDescriptor::new(
            rf::KPM,
            oid::KPM,
            SmVersion::V1,
            RanFuncDef::simple("KPM", "key performance metrics (cf. E2SM-KPM)"),
        )
        .trigger::<ReportTrigger>()
        .action::<crate::kpm::KpmActionDef>()
        .indication::<crate::kpm::KpmReport>(),
    ]
}

/// Installs the bundled descriptors into a registry, ignoring duplicates
/// (idempotent).
pub fn install_builtins(reg: &SmRegistry) {
    for desc in builtin_descriptors() {
        let _ = reg.register(desc);
    }
}

/// The process-wide registry, pre-loaded with the bundled SM set on first
/// access.  Third-party SMs register here at startup.
pub fn global() -> &'static SmRegistry {
    static GLOBAL: OnceLock<SmRegistry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let reg = SmRegistry::new();
        install_builtins(&reg);
        reg
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(oid: &str, rf_id: u16, maj: u16, min: u16) -> SmDescriptor {
        SmDescriptor::new(
            rf_id,
            oid,
            SmVersion::new(maj, min),
            RanFuncDef::simple(oid, "test descriptor"),
        )
        .trigger::<ReportTrigger>()
        .indication::<crate::mac::MacStatsInd>()
    }

    #[test]
    fn builtins_register_and_resolve() {
        let reg = global();
        for d in builtin_descriptors() {
            let got = reg
                .negotiate(&d.oid, SmVersion::V1)
                .unwrap_or_else(|e| panic!("builtin {} must negotiate: {e}", d.oid));
            assert_eq!(got.ran_function_id, d.ran_function_id);
            assert_eq!(reg.by_ran_function(d.ran_function_id).unwrap().oid, d.oid);
        }
        // Every builtin speaks a trigger and an indication.
        for d in reg.list() {
            if d.oid.starts_with("flexric.sm.") {
                assert!(d.vtable.decode_trigger.is_some(), "{} trigger", d.oid);
                assert!(d.vtable.decode_indication.is_some(), "{} indication", d.oid);
            }
        }
        // Monitoring SMs carry delta hooks; control SMs carry ctrl codecs.
        assert!(reg.latest(oid::MAC_STATS).unwrap().delta_decoder().is_some());
        assert!(reg.latest(oid::SLICE_CTRL).unwrap().vtable.decode_ctrl.is_some());
        assert!(reg.latest(oid::HW).unwrap().delta_decoder().is_none());
    }

    #[test]
    fn same_oid_two_versions_coexist() {
        let reg = SmRegistry::new();
        reg.register(desc("t.sm.a", 300, 1, 0)).unwrap();
        reg.register(desc("t.sm.a", 300, 1, 1)).unwrap();
        reg.register(desc("t.sm.a", 300, 2, 0)).unwrap();
        assert_eq!(reg.versions("t.sm.a").len(), 3);
        // Highest minor within the offered major wins.
        assert_eq!(
            reg.negotiate("t.sm.a", SmVersion::new(1, 0)).unwrap().version,
            SmVersion::new(1, 1)
        );
        assert_eq!(
            reg.negotiate("t.sm.a", SmVersion::new(1, 7)).unwrap().version,
            SmVersion::new(1, 1)
        );
        assert_eq!(
            reg.negotiate("t.sm.a", SmVersion::new(2, 0)).unwrap().version,
            SmVersion::new(2, 0)
        );
        // latest() is the global maximum.
        assert_eq!(reg.latest("t.sm.a").unwrap().version, SmVersion::new(2, 0));
    }

    #[test]
    fn duplicate_version_is_an_error_not_an_overwrite() {
        let reg = SmRegistry::new();
        let first = reg.register(desc("t.sm.dup", 301, 1, 0)).unwrap();
        // Mark the first registration so an overwrite would be visible.
        assert!(first.vtable.decode_indication.is_some());
        let second = SmDescriptor::new(
            301,
            "t.sm.dup",
            SmVersion::new(1, 0),
            RanFuncDef::simple("imposter", "no codecs at all"),
        );
        let err = reg.register(second).unwrap_err();
        assert_eq!(
            err,
            RegisterError::DuplicateVersion { oid: "t.sm.dup".into(), version: SmVersion::V1 }
        );
        // The original descriptor survived untouched.
        let got = reg.latest("t.sm.dup").unwrap();
        assert!(got.vtable.decode_indication.is_some(), "no silent overwrite");
        assert_eq!(got.funcdef.name, first.funcdef.name);
    }

    #[test]
    fn function_id_collision_across_oids_rejected() {
        let reg = SmRegistry::new();
        reg.register(desc("t.sm.x", 310, 1, 0)).unwrap();
        let err = reg.register(desc("t.sm.y", 310, 1, 0)).unwrap_err();
        assert_eq!(
            err,
            RegisterError::FunctionIdTaken { ran_function_id: 310, taken_by: "t.sm.x".into() }
        );
    }

    #[test]
    fn negotiation_failures_are_explicit() {
        let reg = SmRegistry::new();
        reg.register(desc("t.sm.v", 320, 2, 1)).unwrap();
        match reg.negotiate("t.sm.nope", SmVersion::V1) {
            Err(NegotiationError::UnknownOid { oid }) => assert_eq!(oid, "t.sm.nope"),
            other => panic!("expected UnknownOid, got {other:?}"),
        }
        match reg.negotiate("t.sm.v", SmVersion::new(3, 0)) {
            Err(NegotiationError::MajorMismatch { offered, supported, .. }) => {
                assert_eq!(offered, SmVersion::new(3, 0));
                assert_eq!(supported, vec![SmVersion::new(2, 1)]);
            }
            other => panic!("expected MajorMismatch, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_registration_never_loses_or_overwrites() {
        let reg = Arc::new(SmRegistry::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let mut wins = 0;
                    for i in 0..32u16 {
                        // All threads race on the same (oid, version) set;
                        // exactly one registration per version may win.
                        match reg.register(desc("t.sm.race", 330, 1, i)) {
                            Ok(_) => wins += 1,
                            Err(RegisterError::DuplicateVersion { .. }) => {}
                            Err(e) => panic!("thread {t}: unexpected {e}"),
                        }
                    }
                    wins
                })
            })
            .collect();
        let total: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 32, "each version registered exactly once");
        assert_eq!(reg.versions("t.sm.race").len(), 32);
        assert_eq!(
            reg.negotiate("t.sm.race", SmVersion::V1).unwrap().version,
            SmVersion::new(1, 31)
        );
    }

    #[test]
    fn vtable_decodes_and_downcasts() {
        use crate::mac::MacStatsInd;
        let reg = global();
        let d = reg.latest(oid::MAC_STATS).unwrap();
        let snap = MacStatsInd { tstamp_ms: 5, cell_prbs: 106, ues: vec![] };
        for codec in SmCodec::ALL {
            let buf = snap.encode(codec);
            let any = d.decode_indication(codec, &buf).unwrap();
            let back = any.downcast_ref::<MacStatsInd>().expect("concrete type");
            assert_eq!(back, &snap);
            // Encode side round-trips through the erased fn too.
            let enc = (d.vtable.encode_indication.unwrap())(&snap, codec).unwrap();
            assert_eq!(enc, buf);
        }
        let trig = ReportTrigger::every_ms(10);
        let any = d.decode_trigger(SmCodec::Flatb, &trig.encode(SmCodec::Flatb)).unwrap();
        assert_eq!(any.downcast_ref::<ReportTrigger>(), Some(&trig));
    }

    #[test]
    fn erased_delta_stream_reconstructs() {
        use crate::delta::DeltaStreams;
        use crate::mac::{MacStatsInd, MacUeStats};
        use crate::ReportMode;
        let reg = global();
        let d = reg.latest(oid::MAC_STATS).unwrap();
        let mut dec = d.delta_decoder().expect("mac speaks deltas");
        let mut streams: DeltaStreams<u8, MacStatsInd> = DeltaStreams::new();
        let codec = SmCodec::Flatb;
        let mode = ReportMode::Delta { keyframe_every: 4 };
        let mut snap = MacStatsInd {
            tstamp_ms: 0,
            cell_prbs: 106,
            ues: vec![MacUeStats { rnti: 7, ..Default::default() }],
        };
        for step in 0..6u64 {
            snap.tstamp_ms = step * 10;
            snap.ues[0].dl_aggr_bytes += 1000;
            let crate::delta::ReportOut::Send(frame) = streams.report(0, mode, &snap, codec) else {
                continue;
            };
            match dec.apply(&frame, codec).unwrap() {
                AnyDeltaEvent::Snapshot { snap: got, .. } => {
                    let got = got.downcast_ref::<MacStatsInd>().unwrap();
                    assert_eq!(got, &snap, "erased reconstruction is byte-faithful");
                }
                AnyDeltaEvent::NeedKeyframe => panic!("in-order stream never resyncs"),
            }
        }
    }

    #[test]
    fn labels_and_display() {
        let d = desc("t.sm.label", 340, 2, 3);
        assert_eq!(d.label(), "t.sm.label@2.3");
        assert_eq!(SmVersion::new(2, 3).to_string(), "2.3");
        assert!(SmVersion::new(2, 3).compatible(SmVersion::new(2, 9)));
        assert!(!SmVersion::new(2, 3).compatible(SmVersion::new(3, 3)));
        assert_eq!(SmVersion::from_pair((4, 5)).as_pair(), (4, 5));
    }
}
