//! MAC statistics service model.
//!
//! Exposes per-UE MAC-layer counters (CQI, MCS, allocated PRBs, transport
//! block bytes, …).  This is the SM used by the monitoring workloads of the
//! paper's Figs. 6, 8 and 9b ("statistics for MAC excluding HARQ"), exported
//! for 32 UEs per agent every millisecond in the scaling experiments.
//!
//! Each UE entry carries its PLMN so the recursive virtualization
//! controller (§6.2) can partition the statistics between tenants.

use flexric_codec::error::{CodecError, Result};
use flexric_codec::fb::{FbBuilder, FbTable, TableBuilder};
use flexric_codec::per::{BitReader, BitWriter};
use flexric_codec::ByteSink;

use crate::delta::DeltaRows;
use crate::SmPayload;

/// Per-UE MAC statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MacUeStats {
    /// Radio network temporary identifier of the UE.
    pub rnti: u16,
    /// Last reported wideband CQI (0–15).
    pub cqi: u8,
    /// Modulation-and-coding scheme in use (0–28).
    pub mcs: u8,
    /// Downlink PRBs allocated in the reporting period.
    pub prbs_dl: u32,
    /// Uplink PRBs allocated in the reporting period.
    pub prbs_ul: u32,
    /// Downlink transport-block bytes in the reporting period.
    pub tbs_dl_bytes: u64,
    /// Uplink transport-block bytes in the reporting period.
    pub tbs_ul_bytes: u64,
    /// Cumulative downlink MAC bytes since attach.
    pub dl_aggr_bytes: u64,
    /// Cumulative uplink MAC bytes since attach.
    pub ul_aggr_bytes: u64,
    /// Buffer status report (pending UL bytes).
    pub bsr: u32,
    /// Downlink MAC SDU backlog at the scheduler (bytes).
    pub dl_backlog_bytes: u64,
    /// Slice the UE is currently served by.
    pub slice_id: u32,
    /// Serving PLMN MCC (for multi-tenant partitioning).
    pub plmn_mcc: u16,
    /// Serving PLMN MNC.
    pub plmn_mnc: u16,
}

/// A MAC statistics indication: a cell-level snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MacStatsInd {
    /// Snapshot time in milliseconds since cell start.
    pub tstamp_ms: u64,
    /// Cell-wide PRB capacity per slot.
    pub cell_prbs: u32,
    /// Per-UE statistics.
    pub ues: Vec<MacUeStats>,
}

fn put_ue<B: ByteSink>(w: &mut BitWriter<B>, u: &MacUeStats) {
    w.put_bits(u.rnti as u64, 16);
    w.put_constrained(u.cqi as u64, 0, 15);
    w.put_constrained(u.mcs as u64, 0, 31);
    w.put_uint(u.prbs_dl as u64);
    w.put_uint(u.prbs_ul as u64);
    w.put_uint(u.tbs_dl_bytes);
    w.put_uint(u.tbs_ul_bytes);
    w.put_uint(u.dl_aggr_bytes);
    w.put_uint(u.ul_aggr_bytes);
    w.put_uint(u.bsr as u64);
    w.put_uint(u.dl_backlog_bytes);
    w.put_uint(u.slice_id as u64);
    w.put_constrained(u.plmn_mcc as u64, 0, 999);
    w.put_constrained(u.plmn_mnc as u64, 0, 999);
}

fn get_ue(r: &mut BitReader) -> Result<MacUeStats> {
    Ok(MacUeStats {
        rnti: r.get_bits(16)? as u16,
        cqi: r.get_constrained(0, 15)? as u8,
        mcs: r.get_constrained(0, 31)? as u8,
        prbs_dl: r.get_uint()? as u32,
        prbs_ul: r.get_uint()? as u32,
        tbs_dl_bytes: r.get_uint()?,
        tbs_ul_bytes: r.get_uint()?,
        dl_aggr_bytes: r.get_uint()?,
        ul_aggr_bytes: r.get_uint()?,
        bsr: r.get_uint()? as u32,
        dl_backlog_bytes: r.get_uint()?,
        slice_id: r.get_uint()? as u32,
        plmn_mcc: r.get_constrained(0, 999)? as u16,
        plmn_mnc: r.get_constrained(0, 999)? as u16,
    })
}

fn enc_ue_fb<B: ByteSink>(b: &mut FbBuilder<B>, u: &MacUeStats) -> u32 {
    let mut t = TableBuilder::new();
    t.u16(0, u.rnti)
        .u8(1, u.cqi)
        .u8(2, u.mcs)
        .u32(3, u.prbs_dl)
        .u32(4, u.prbs_ul)
        .u64(5, u.tbs_dl_bytes)
        .u64(6, u.tbs_ul_bytes)
        .u64(7, u.dl_aggr_bytes)
        .u64(8, u.ul_aggr_bytes)
        .u32(9, u.bsr)
        .u64(10, u.dl_backlog_bytes)
        .u32(11, u.slice_id)
        .u16(12, u.plmn_mcc)
        .u16(13, u.plmn_mnc);
    t.end(b)
}

fn dec_ue_fb(t: &FbTable) -> Result<MacUeStats> {
    Ok(MacUeStats {
        rnti: t.req_u16(0, "rnti")?,
        cqi: t.req_u8(1, "cqi")?,
        mcs: t.req_u8(2, "mcs")?,
        prbs_dl: t.req_u32(3, "prbs dl")?,
        prbs_ul: t.req_u32(4, "prbs ul")?,
        tbs_dl_bytes: t.req_u64(5, "tbs dl")?,
        tbs_ul_bytes: t.req_u64(6, "tbs ul")?,
        dl_aggr_bytes: t.req_u64(7, "dl aggr")?,
        ul_aggr_bytes: t.req_u64(8, "ul aggr")?,
        bsr: t.req_u32(9, "bsr")?,
        dl_backlog_bytes: t.req_u64(10, "backlog")?,
        slice_id: t.req_u32(11, "slice")?,
        plmn_mcc: t.req_u16(12, "mcc")?,
        plmn_mnc: t.req_u16(13, "mnc")?,
    })
}

impl SmPayload for MacStatsInd {
    fn encode_per<B: ByteSink>(&self, w: &mut BitWriter<B>) {
        w.put_uint(self.tstamp_ms);
        w.put_uint(self.cell_prbs as u64);
        w.put_length(self.ues.len());
        for u in &self.ues {
            put_ue(w, u);
        }
    }

    fn decode_per(r: &mut BitReader) -> Result<Self> {
        let tstamp_ms = r.get_uint()?;
        let cell_prbs = r.get_uint()? as u32;
        let n = r.get_length()?;
        if n > 65536 {
            return Err(CodecError::Malformed { what: "too many UEs" });
        }
        let mut ues = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            ues.push(get_ue(r)?);
        }
        Ok(MacStatsInd { tstamp_ms, cell_prbs, ues })
    }

    fn encode_fb<B: ByteSink>(&self, b: &mut FbBuilder<B>) -> u32 {
        let offs: Vec<u32> = self.ues.iter().map(|u| enc_ue_fb(b, u)).collect();
        let ues = b.vec_off(&offs);
        let mut t = TableBuilder::new();
        t.u64(0, self.tstamp_ms).u32(1, self.cell_prbs).off(2, ues);
        t.end(b)
    }

    fn decode_fb(t: &FbTable) -> Result<Self> {
        let v = t.vector_or_empty(2)?;
        let mut ues = Vec::with_capacity(v.len());
        for i in 0..v.len() {
            ues.push(dec_ue_fb(&v.table_at(i)?)?);
        }
        Ok(MacStatsInd {
            tstamp_ms: t.req_u64(0, "tstamp")?,
            cell_prbs: t.req_u32(1, "cell prbs")?,
            ues,
        })
    }
}

impl DeltaRows for MacStatsInd {
    type Row = MacUeStats;
    const FIELD_COUNT: u32 = 13;
    const NAME: &'static str = "mac";

    fn tstamp_ms(&self) -> u64 {
        self.tstamp_ms
    }
    fn set_tstamp_ms(&mut self, t: u64) {
        self.tstamp_ms = t;
    }
    fn aux(&self) -> u64 {
        self.cell_prbs as u64
    }
    fn set_aux(&mut self, v: u64) {
        self.cell_prbs = v as u32;
    }
    fn rows(&self) -> &[MacUeStats] {
        &self.ues
    }
    fn rows_mut(&mut self) -> &mut Vec<MacUeStats> {
        &mut self.ues
    }
    fn row_key(row: &MacUeStats) -> u32 {
        row.rnti as u32
    }
    fn field(row: &MacUeStats, i: u32) -> u64 {
        match i {
            0 => row.cqi as u64,
            1 => row.mcs as u64,
            2 => row.prbs_dl as u64,
            3 => row.prbs_ul as u64,
            4 => row.tbs_dl_bytes,
            5 => row.tbs_ul_bytes,
            6 => row.dl_aggr_bytes,
            7 => row.ul_aggr_bytes,
            8 => row.bsr as u64,
            9 => row.dl_backlog_bytes,
            10 => row.slice_id as u64,
            11 => row.plmn_mcc as u64,
            _ => row.plmn_mnc as u64,
        }
    }
    fn set_field(row: &mut MacUeStats, i: u32, v: u64) {
        match i {
            0 => row.cqi = v as u8,
            1 => row.mcs = v as u8,
            2 => row.prbs_dl = v as u32,
            3 => row.prbs_ul = v as u32,
            4 => row.tbs_dl_bytes = v,
            5 => row.tbs_ul_bytes = v,
            6 => row.dl_aggr_bytes = v,
            7 => row.ul_aggr_bytes = v,
            8 => row.bsr = v as u32,
            9 => row.dl_backlog_bytes = v,
            10 => row.slice_id = v as u32,
            11 => row.plmn_mcc = v as u16,
            _ => row.plmn_mnc = v as u16,
        }
    }
    fn new_row(key: u32) -> MacUeStats {
        MacUeStats { rnti: key as u16, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;
    use crate::SmCodec;

    pub(crate) fn sample(ue_count: usize) -> MacStatsInd {
        MacStatsInd {
            tstamp_ms: 123_456,
            cell_prbs: 106,
            ues: (0..ue_count)
                .map(|i| MacUeStats {
                    rnti: 0x4601 + i as u16,
                    cqi: 15,
                    mcs: 20,
                    prbs_dl: 50 + i as u32,
                    prbs_ul: 10,
                    tbs_dl_bytes: 61_600,
                    tbs_ul_bytes: 8_000,
                    dl_aggr_bytes: 1 << 33,
                    ul_aggr_bytes: 1 << 20,
                    bsr: 1200,
                    dl_backlog_bytes: 95_000,
                    slice_id: (i % 2) as u32,
                    plmn_mcc: 208,
                    plmn_mnc: 95,
                })
                .collect(),
        }
    }

    #[test]
    fn roundtrip() {
        roundtrip_both(&sample(0));
        roundtrip_both(&sample(1));
        roundtrip_both(&sample(32));
        garbage_rejected::<MacStatsInd>();
    }

    #[test]
    fn thirty_two_ue_snapshot_is_compact() {
        // The 1 ms monitoring hot path must not produce pathological sizes.
        let ind = sample(32);
        let per = ind.encode(SmCodec::Asn1Per);
        let fb = ind.encode(SmCodec::Flatb);
        assert!(per.len() < fb.len(), "per={} fb={}", per.len(), fb.len());
        assert!(per.len() < 4096, "per snapshot {} B", per.len());
        assert!(fb.len() < 8192, "fb snapshot {} B", fb.len());
    }

    #[test]
    fn extreme_values_roundtrip() {
        let ind = MacStatsInd {
            tstamp_ms: u64::MAX,
            cell_prbs: u32::MAX,
            ues: vec![MacUeStats {
                rnti: u16::MAX,
                cqi: 15,
                mcs: 31,
                prbs_dl: u32::MAX,
                prbs_ul: u32::MAX,
                tbs_dl_bytes: u64::MAX,
                tbs_ul_bytes: u64::MAX,
                dl_aggr_bytes: u64::MAX,
                ul_aggr_bytes: u64::MAX,
                bsr: u32::MAX,
                dl_backlog_bytes: u64::MAX,
                slice_id: u32::MAX,
                plmn_mcc: 999,
                plmn_mnc: 999,
            }],
        };
        roundtrip_both(&ind);
    }
}
