//! Property tests for the delta indication codec: for arbitrary KPI
//! snapshots, mutation sequences (dirty-field subsets, row churn), and
//! keyframe intervals, keyframe + delta-apply reconstruction is
//! byte-identical to encoding the sender's snapshot directly; and losing
//! a delta frame is always detected, with a forced keyframe resyncing
//! the stream.  Runs under both the real proptest (cargo) and the
//! mini_proptest shim (tools/offline_verify).

use flexric_sm::delta::{DeltaDecoder, DeltaEncoder, DeltaEvent, DeltaOut, DeltaRows};
use flexric_sm::mac::{MacStatsInd, MacUeStats};
use flexric_sm::{SmCodec, SmPayload};
use proptest::prelude::*;

/// Clamps a raw u64 into the legal range of MAC field `i` (CQI, MCS and
/// PLMN digits are range-constrained on the PER wire).
fn legal(i: u32, v: u64) -> u64 {
    match i {
        0 => v % 16,
        1 => v % 32,
        2 | 3 | 8 | 10 => v % (u32::MAX as u64 + 1),
        11 | 12 => v % 1000,
        _ => v,
    }
}

fn snapshot_of(rows: &[(u16, u64)]) -> MacStatsInd {
    let mut snap = MacStatsInd { tstamp_ms: 0, cell_prbs: 106, ues: Vec::new() };
    for (rnti, seed) in rows {
        let mut ue = MacUeStats { rnti: *rnti, ..Default::default() };
        for i in 0..MacStatsInd::FIELD_COUNT {
            let v = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
            MacStatsInd::set_field(&mut ue, i, legal(i, v));
        }
        snap.ues.push(ue);
    }
    snap
}

fn arb_rows() -> impl Strategy<Value = Vec<(u16, u64)>> {
    prop::collection::vec((any::<u64>(), any::<u64>()), 0..24).prop_map(|seeds| {
        // Index-derived RNTIs keep row keys unique (duplicate keys force
        // keyframes by design and are tested separately).
        seeds.into_iter().enumerate().map(|(i, (_, seed))| (0x4601 + i as u16, seed)).collect()
    })
}

/// One mutation step: `(what, row selector, field, value)`.
type Op = (u8, prop::sample::Index, u32, u64);

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0..8u8, any::<prop::sample::Index>(), 0..13u32, any::<u64>()), 0..40)
}

/// Applies one mutation to the snapshot, keeping row keys unique.
fn apply_op(snap: &mut MacStatsInd, next_rnti: &mut u16, op: &Op) {
    let (what, row, field, value) = op;
    match what {
        // Remove the selected row.
        0 if !snap.ues.is_empty() => {
            let i = row.index(snap.ues.len());
            snap.ues.remove(i);
        }
        // Add a fresh row.
        1 => {
            *next_rnti += 1;
            let mut ue = MacUeStats { rnti: *next_rnti, ..Default::default() };
            MacStatsInd::set_field(&mut ue, field % 13, legal(field % 13, *value));
            snap.ues.push(ue);
        }
        // Swap two rows (reordering).
        2 if snap.ues.len() >= 2 => {
            let i = row.index(snap.ues.len());
            let j = (i + 1) % snap.ues.len();
            snap.ues.swap(i, j);
        }
        // Touch the aux header scalar.
        3 => snap.cell_prbs = (*value % 1000) as u32,
        // Mutate one field of one row (the common case).
        _ if !snap.ues.is_empty() => {
            let i = row.index(snap.ues.len());
            MacStatsInd::set_field(&mut snap.ues[i], *field, legal(*field, *value));
        }
        _ => {}
    }
    snap.tstamp_ms += 1;
}

proptest! {
    /// Whatever the mutation sequence and keyframe interval, every frame
    /// the encoder emits reconstructs to the exact snapshot — value-,
    /// order- and byte-identical under both codecs — and suppressed
    /// reports leave the previous reconstruction in place.
    #[test]
    fn reconstruction_is_byte_identical(
        rows in arb_rows(),
        ops in arb_ops(),
        keyframe_every in 1..20u32,
        codec_fb in any::<bool>(),
    ) {
        let codec = if codec_fb { SmCodec::Flatb } else { SmCodec::Asn1Per };
        let mut snap = snapshot_of(&rows);
        let mut next_rnti = 0x4601 + 64;
        let mut enc = DeltaEncoder::new(keyframe_every);
        let mut dec = DeltaDecoder::<MacStatsInd>::new();
        let mut last_emitted = None;
        for step in 0..ops.len() + 1 {
            if step > 0 {
                apply_op(&mut snap, &mut next_rnti, &ops[step - 1]);
            }
            match enc.encode(&snap, codec) {
                DeltaOut::Keyframe(f) | DeltaOut::Delta(f) => {
                    match dec.apply(&f, codec).expect("well-formed frame") {
                        DeltaEvent::Snapshot { snap: got, .. } => {
                            prop_assert_eq!(&got, &snap);
                            prop_assert_eq!(got.encode(codec), snap.encode(codec));
                            last_emitted = Some(snap.clone());
                        }
                        DeltaEvent::NeedKeyframe { reason } => {
                            panic!("lossless stream must never resync: {reason}");
                        }
                    }
                }
                DeltaOut::Suppressed => {
                    // Suppression is only legal when content is unchanged.
                    let prev = last_emitted.as_ref().expect("first report never suppressed");
                    prop_assert_eq!(
                        flexric_sm::content_hash(prev),
                        flexric_sm::content_hash(&snap)
                    );
                }
            }
        }
        prop_assert_eq!(dec.resyncs, 0);
    }

    /// Keyframes appear at least every `keyframe_every` report
    /// opportunities, even when every report is suppressed in between.
    #[test]
    fn keyframe_cadence_holds(
        rows in arb_rows(),
        keyframe_every in 1..12u32,
        reports in 1..40usize,
    ) {
        let snap = snapshot_of(&rows);
        let mut enc = DeltaEncoder::new(keyframe_every);
        let mut since = 0u32;
        for step in 0..reports {
            let mut s = snap.clone();
            s.tstamp_ms = step as u64;
            match enc.encode(&s, SmCodec::Asn1Per) {
                DeltaOut::Keyframe(_) => since = 0,
                DeltaOut::Delta(_) | DeltaOut::Suppressed => {
                    since += 1;
                    prop_assert!(since < keyframe_every, "overdue keyframe");
                }
            }
        }
    }

    /// Dropping any single delta frame from a changing stream is detected
    /// (sequence gap → NeedKeyframe, never a wrong snapshot), and forcing
    /// a keyframe resynchronizes the decoder exactly.
    #[test]
    fn lost_delta_detected_and_keyframe_resyncs(
        rows in arb_rows(),
        ops in arb_ops(),
        drop_at in any::<prop::sample::Index>(),
    ) {
        let codec = SmCodec::Flatb;
        let mut snap = snapshot_of(&rows);
        let mut next_rnti = 0x4601 + 64;
        // Large interval so the recovery below is driven by the forced
        // keyframe, not the periodic one.
        let mut enc = DeltaEncoder::new(10_000);
        let mut frames = Vec::new();
        let mut snaps = Vec::new();
        for step in 0..ops.len() + 1 {
            if step > 0 {
                apply_op(&mut snap, &mut next_rnti, &ops[step - 1]);
            }
            match enc.encode(&snap, codec) {
                DeltaOut::Keyframe(f) | DeltaOut::Delta(f) => {
                    frames.push(f);
                    snaps.push(snap.clone());
                }
                DeltaOut::Suppressed => {}
            }
        }
        let drop = drop_at.index(frames.len());
        let mut dec = DeltaDecoder::<MacStatsInd>::new();
        let mut desynced = false;
        for (i, f) in frames.iter().enumerate() {
            if i == drop {
                continue;
            }
            match dec.apply(f, codec).expect("well-formed frame") {
                DeltaEvent::Snapshot { snap: got, keyframe, .. } => {
                    // After the gap only a keyframe may deliver a snapshot.
                    prop_assert!(!desynced || keyframe);
                    if !desynced || keyframe {
                        desynced = false;
                        prop_assert_eq!(&got, &snaps[i]);
                    }
                }
                DeltaEvent::NeedKeyframe { .. } => {
                    prop_assert!(i > drop, "loss detected before the gap");
                    desynced = true;
                }
            }
        }
        // The resync path: a forced keyframe restores exact state.
        enc.force_keyframe();
        snap.tstamp_ms += 1;
        let DeltaOut::Keyframe(f) = enc.encode(&snap, codec) else {
            panic!("force_keyframe must produce a keyframe")
        };
        match dec.apply(&f, codec).expect("well-formed keyframe") {
            DeltaEvent::Snapshot { snap: got, keyframe, .. } => {
                prop_assert!(keyframe);
                prop_assert_eq!(&got, &snap);
                prop_assert_eq!(got.encode(codec), snap.encode(codec));
            }
            DeltaEvent::NeedKeyframe { reason } => panic!("keyframe rejected: {reason}"),
        }
    }

    /// Arbitrary bytes never panic the delta decoder.
    #[test]
    fn garbage_never_panics(buf in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut dec = DeltaDecoder::<MacStatsInd>::new();
        let _ = dec.apply(&buf, SmCodec::Asn1Per);
        let _ = dec.apply(&buf, SmCodec::Flatb);
    }
}
