//! Property tests for the SM registry: against a model set of
//! `(oid, major, minor)` registrations, the registry's acceptance
//! decisions, version ordering, latest-version resolution, and semver
//! negotiation all match the spec — duplicates are explicit errors
//! (never silent overwrites), and negotiation returns exactly the
//! highest compatible minor or an explicit failure.  Runs under both the
//! real proptest (cargo) and the mini_proptest shim
//! (tools/offline_verify).

use flexric_sm::registry::{NegotiationError, RegisterError, SmRegistry};
use flexric_sm::{RanFuncDef, SmDescriptor, SmVersion};
use proptest::prelude::*;

/// Distinct OID namespace per index; RAN function ids derived per
/// `(oid, version)` so id ownership never collides across OIDs (same-OID
/// reuse across versions is legal by design).
fn oid_of(o: usize) -> String {
    format!("prop.sm.{o}")
}

fn rf_of(o: usize, major: u16, minor: u16) -> u16 {
    (o as u16) * 1000 + major * 10 + minor
}

fn desc_of(o: usize, major: u16, minor: u16) -> SmDescriptor {
    SmDescriptor::new(
        rf_of(o, major, minor),
        oid_of(o),
        SmVersion::new(major, minor),
        RanFuncDef::simple("PROP", "registry property test SM"),
    )
}

proptest! {
    /// Whatever the registration sequence, the registry agrees with a
    /// model set: first registration of an `(oid, version)` succeeds,
    /// re-registration is a `DuplicateVersion` error that leaves the
    /// original untouched, per-OID version lists stay ascending, and
    /// `latest` is the model maximum.
    #[test]
    fn registration_matches_model(
        entries in prop::collection::vec((0..5usize, 1..4u16, 0..5u16), 0..40),
    ) {
        let reg = SmRegistry::new();
        let mut model: std::collections::BTreeSet<(usize, u16, u16)> = Default::default();
        for &(o, major, minor) in &entries {
            let res = reg.register(desc_of(o, major, minor));
            if model.insert((o, major, minor)) {
                prop_assert!(res.is_ok(), "fresh version must register: {res:?}");
            } else {
                prop_assert!(
                    matches!(res, Err(RegisterError::DuplicateVersion { .. })),
                    "duplicate must be an explicit error: {res:?}"
                );
            }
        }
        prop_assert_eq!(reg.len(), model.len());
        for o in 0..5usize {
            let oid = oid_of(o);
            let want: Vec<SmVersion> = model
                .iter()
                .filter(|(mo, _, _)| *mo == o)
                .map(|&(_, ma, mi)| SmVersion::new(ma, mi))
                .collect();
            // BTreeSet iteration order == ascending (major, minor), the
            // registry's documented ordering.
            prop_assert_eq!(reg.versions(&oid), want.clone());
            prop_assert_eq!(reg.latest(&oid).map(|d| d.version), want.last().copied());
            // Every surviving descriptor is the ORIGINAL registration:
            // its RAN function id still encodes its own version.
            for d in reg.versions(&oid) {
                let got = reg
                    .by_ran_function(rf_of(o, d.major, d.minor))
                    .expect("registered id resolves");
                prop_assert_eq!(got.version, d);
                prop_assert_eq!(&got.oid, &oid);
            }
        }
    }

    /// Negotiation returns exactly the highest minor of the offered
    /// major, `MajorMismatch` when the OID exists but no major matches,
    /// and `UnknownOid` when nothing is registered under the OID.
    #[test]
    fn negotiation_picks_highest_compatible_minor(
        entries in prop::collection::vec((0..5usize, 1..4u16, 0..5u16), 0..40),
        offered_minor in 0..8u16,
    ) {
        let reg = SmRegistry::new();
        let mut model: std::collections::BTreeSet<(usize, u16, u16)> = Default::default();
        for &(o, major, minor) in &entries {
            if model.insert((o, major, minor)) {
                reg.register(desc_of(o, major, minor)).unwrap();
            }
        }
        for o in 0..6usize {
            let oid = oid_of(o);
            let registered = model.iter().any(|(mo, _, _)| *mo == o);
            for major in 1..4u16 {
                let best = model
                    .iter()
                    .filter(|&&(mo, ma, _)| mo == o && ma == major)
                    .map(|&(_, _, mi)| mi)
                    .max();
                let got = reg.negotiate(&oid, SmVersion::new(major, offered_minor));
                match (got, best) {
                    (Ok(d), Some(mi)) => {
                        prop_assert_eq!(d.version, SmVersion::new(major, mi));
                        // Minor skew both ways interoperates: the offer's
                        // minor never affects the outcome.
                        prop_assert!(d.version.compatible(SmVersion::new(major, offered_minor)));
                    }
                    (Err(NegotiationError::MajorMismatch { .. }), None) => {
                        prop_assert!(registered, "MajorMismatch implies the OID exists");
                    }
                    (Err(NegotiationError::UnknownOid { .. }), None) => {
                        prop_assert!(!registered, "UnknownOid implies nothing registered");
                    }
                    (got, best) => {
                        prop_assert!(false, "negotiation mismatch: {got:?} vs best={best:?}");
                    }
                }
            }
        }
    }

    /// A RAN function id owned by one OID can never be claimed by
    /// another, whatever the version offered.
    #[test]
    fn function_id_ownership_is_stable(
        major in 1..4u16,
        minor in 0..5u16,
    ) {
        let reg = SmRegistry::new();
        reg.register(desc_of(0, 1, 0)).unwrap();
        let thief = SmDescriptor::new(
            rf_of(0, 1, 0),
            oid_of(1),
            SmVersion::new(major, minor),
            RanFuncDef::simple("THIEF", "claims someone else's id"),
        );
        let res = reg.register(thief);
        prop_assert!(matches!(res, Err(RegisterError::FunctionIdTaken { .. })), "{res:?}");
        prop_assert_eq!(&reg.by_ran_function(rf_of(0, 1, 0)).unwrap().oid, &oid_of(0));
        prop_assert_eq!(reg.len(), 1);
    }
}
