//! The NVS share re-solver behind the closed-loop SLA controller.
//!
//! Pure arithmetic over observed per-slice KPIs: no clocks, no I/O, no
//! SDK types, so the module compiles standalone (offline harness) and
//! its behaviour is exactly reproducible.  The controller iApp
//! ([`crate::sla`]) feeds it observations decoded from the monitoring
//! store and pushes whatever share vector it returns through the SC SM
//! control path.
//!
//! The solver is a damped proportional reallocator, not an optimizer:
//! slices violating their SLA bid for extra capacity share proportional
//! to how badly they miss, slices comfortably above target yield share
//! down to a configured floor, and the transfer is capped per round so
//! the loop cannot oscillate faster than the measurement cadence.  The
//! NVS admission invariant (Σ share ≤ budget, 1000 milli by default) is
//! preserved by construction: grants never exceed what yielding slices
//! and unallocated slack put on the table.

/// Per-slice service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SlaTarget {
    /// Slice id the objective applies to.
    pub slice: u32,
    /// Minimum aggregate downlink throughput, kbit/s (0 = don't care).
    pub thr_kbps_min: f64,
    /// Maximum average RLC sojourn delay, milliseconds (0 = don't care).
    pub delay_ms_max: f64,
    /// Share floor in milli-units the solver never yields below.
    pub floor_milli: u32,
}

/// One observed slice: what the monitoring plane currently sees.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceObs {
    /// Slice id.
    pub slice: u32,
    /// Currently configured NVS capacity share, milli-units.
    pub share_milli: u32,
    /// Observed aggregate downlink throughput, kbit/s.
    pub thr_kbps: f64,
    /// Observed average RLC sojourn delay, milliseconds.
    pub delay_ms: f64,
    /// UEs currently associated.
    pub num_ues: u32,
}

/// Solver knobs.
#[derive(Debug, Clone)]
pub struct SolverCfg {
    /// Total share budget in milli-units (NVS admission bound).
    pub budget_milli: u32,
    /// Largest share transfer into/out of one slice per round.
    pub max_step_milli: u32,
    /// Relative margin a slice must hold above target before it is
    /// considered a donor (hysteresis against thrashing).
    pub headroom: f64,
}

impl Default for SolverCfg {
    fn default() -> Self {
        SolverCfg { budget_milli: 1000, max_step_milli: 150, headroom: 0.15 }
    }
}

/// How badly an observation misses its target, as a ratio in `[0, ∞)`;
/// `0` means the SLA is met.
fn severity(t: &SlaTarget, o: &SliceObs) -> f64 {
    let mut s: f64 = 0.0;
    if t.thr_kbps_min > 0.0 && o.num_ues > 0 {
        let thr = o.thr_kbps.max(1.0);
        if thr < t.thr_kbps_min {
            s = s.max(t.thr_kbps_min / thr - 1.0);
        }
    }
    if t.delay_ms_max > 0.0 && o.delay_ms > t.delay_ms_max {
        s = s.max(o.delay_ms / t.delay_ms_max - 1.0);
    }
    s
}

/// Whether the slice meets its SLA with [`SolverCfg::headroom`] margin,
/// making it eligible to donate share.
fn comfortable(t: &SlaTarget, o: &SliceObs, headroom: f64) -> bool {
    if o.num_ues == 0 {
        // An empty slice holds its reservation but tolerates lending.
        return true;
    }
    let thr_ok = t.thr_kbps_min <= 0.0 || o.thr_kbps >= t.thr_kbps_min * (1.0 + headroom);
    let delay_ok = t.delay_ms_max <= 0.0 || o.delay_ms <= t.delay_ms_max * (1.0 - headroom);
    thr_ok && delay_ok
}

/// Is the observation violating its target *right now* (no hysteresis)?
/// The violation accounting of the SLA iApp uses this predicate.
pub fn violated(t: &SlaTarget, o: &SliceObs) -> bool {
    severity(t, o) > 0.0
}

/// Re-solves the share vector.  Returns `Some(new (slice, share_milli)
/// pairs, sorted by slice id)` when at least one share changed, `None`
/// when the current allocation should stand.
///
/// Deterministic: output depends only on the inputs (slices are
/// processed in ascending id order; integer remainders go to the
/// neediest slice first, ties broken by id).
pub fn resolve(
    targets: &[SlaTarget],
    obs: &[SliceObs],
    cfg: &SolverCfg,
) -> Option<Vec<(u32, u32)>> {
    let mut slices: Vec<SliceObs> = obs.to_vec();
    slices.sort_by_key(|o| o.slice);
    slices.dedup_by_key(|o| o.slice);
    if slices.is_empty() {
        return None;
    }
    let target_of = |id: u32| targets.iter().find(|t| t.slice == id);

    // Bid collection: how much each slice wants (needy) or can spare
    // (donor), both capped by max_step.
    let mut need: Vec<(usize, u64)> = Vec::new(); // (idx, wanted milli)
    let mut give: Vec<(usize, u64)> = Vec::new(); // (idx, spare milli)
    let allocated: u64 = slices.iter().map(|o| o.share_milli as u64).sum();
    let slack = (cfg.budget_milli as u64).saturating_sub(allocated);

    for (i, o) in slices.iter().enumerate() {
        let Some(t) = target_of(o.slice) else { continue };
        let sev = severity(t, o);
        if sev > 0.0 {
            // Ask proportionally to the miss, at least one step quantum.
            let want = ((o.share_milli.max(10) as f64) * sev).ceil() as u64;
            need.push((i, want.clamp(10, cfg.max_step_milli as u64)));
        } else if comfortable(t, o, cfg.headroom) {
            let floor = t.floor_milli.min(o.share_milli);
            let spare = (o.share_milli - floor) as u64;
            if spare > 0 {
                give.push((i, spare.min(cfg.max_step_milli as u64)));
            }
        }
    }
    if need.is_empty() {
        return None;
    }

    let total_need: u64 = need.iter().map(|&(_, w)| w).sum();
    let total_avail: u64 = slack + give.iter().map(|&(_, s)| s).sum::<u64>();
    let grant_total = total_need.min(total_avail);
    if grant_total == 0 {
        return None;
    }

    let mut next: Vec<u64> = slices.iter().map(|o| o.share_milli as u64).collect();

    // Distribute grants proportionally to the asks (largest-remainder,
    // deterministic tie-break by ask size then index).
    let mut granted = 0u64;
    let mut grants: Vec<(usize, u64)> = need
        .iter()
        .map(|&(i, w)| {
            let g = grant_total * w / total_need;
            (i, g)
        })
        .collect();
    granted += grants.iter().map(|&(_, g)| g).sum::<u64>();
    let mut leftovers = grant_total - granted;
    // Hand leftover milli-units to the largest askers first.
    let mut order: Vec<usize> = (0..need.len()).collect();
    order.sort_by(|&a, &b| need[b].1.cmp(&need[a].1).then(need[a].0.cmp(&need[b].0)));
    for &k in &order {
        if leftovers == 0 {
            break;
        }
        grants[k].1 += 1;
        leftovers -= 1;
    }
    for &(i, g) in &grants {
        next[i] += g;
    }

    // Fund the grants: slack first, then donors proportionally.
    let mut to_fund = grant_total.saturating_sub(slack);
    if to_fund > 0 {
        let total_give: u64 = give.iter().map(|&(_, s)| s).sum();
        let mut taken = 0u64;
        let mut takes: Vec<(usize, u64)> =
            give.iter().map(|&(i, s)| (i, to_fund * s / total_give)).collect();
        taken += takes.iter().map(|&(_, t)| t).sum::<u64>();
        let mut rem = to_fund - taken;
        let mut gorder: Vec<usize> = (0..give.len()).collect();
        gorder.sort_by(|&a, &b| give[b].1.cmp(&give[a].1).then(give[a].0.cmp(&give[b].0)));
        for &k in &gorder {
            if rem == 0 {
                break;
            }
            if takes[k].1 < give[k].1 {
                takes[k].1 += 1;
                rem -= 1;
            }
        }
        for &(i, t) in &takes {
            next[i] -= t.min(next[i]);
        }
        to_fund = rem;
        let _ = to_fund;
    }

    // Safety: never exceed the budget even under rounding surprises.
    let mut total: u64 = next.iter().sum();
    let mut j = 0;
    while total > cfg.budget_milli as u64 && j < next.len() {
        let over = total - cfg.budget_milli as u64;
        let cut = over.min(next[j]);
        next[j] -= cut;
        total -= cut;
        j += 1;
    }

    let out: Vec<(u32, u32)> =
        slices.iter().zip(&next).map(|(o, &s)| (o.slice, s as u32)).collect();
    let changed = slices.iter().zip(&next).any(|(o, &s)| o.share_milli as u64 != s);
    if changed {
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(slice: u32, thr: f64, delay: f64, floor: u32) -> SlaTarget {
        SlaTarget { slice, thr_kbps_min: thr, delay_ms_max: delay, floor_milli: floor }
    }

    fn o(slice: u32, share: u32, thr: f64, delay: f64, ues: u32) -> SliceObs {
        SliceObs { slice, share_milli: share, thr_kbps: thr, delay_ms: delay, num_ues: ues }
    }

    #[test]
    fn deficit_slice_gains_share() {
        let targets = [t(0, 2_000.0, 0.0, 50), t(1, 0.0, 0.0, 50)];
        let obs = [o(0, 200, 500.0, 1.0, 4), o(1, 800, 40_000.0, 1.0, 2)];
        let next = resolve(&targets, &obs, &SolverCfg::default()).expect("reallocation");
        let s0 = next.iter().find(|&&(id, _)| id == 0).unwrap().1;
        let s1 = next.iter().find(|&&(id, _)| id == 1).unwrap().1;
        assert!(s0 > 200, "violating slice must gain: {s0}");
        assert!(s1 < 800, "comfortable slice must yield: {s1}");
    }

    #[test]
    fn delay_violation_also_bids() {
        let targets = [t(0, 0.0, 5.0, 50), t(1, 0.0, 0.0, 50)];
        let obs = [o(0, 300, 1_000.0, 40.0, 3), o(1, 700, 9_000.0, 0.5, 1)];
        let next = resolve(&targets, &obs, &SolverCfg::default()).expect("reallocation");
        assert!(next.iter().find(|&&(id, _)| id == 0).unwrap().1 > 300);
    }

    #[test]
    fn budget_preserved_and_floor_respected() {
        let cfg = SolverCfg::default();
        let targets = [t(0, 50_000.0, 0.0, 50), t(1, 0.0, 0.0, 400), t(2, 0.0, 0.0, 100)];
        let obs =
            [o(0, 100, 1_000.0, 1.0, 8), o(1, 450, 30_000.0, 1.0, 2), o(2, 450, 30_000.0, 1.0, 2)];
        let next = resolve(&targets, &obs, &cfg).expect("reallocation");
        let sum: u64 = next.iter().map(|&(_, s)| s as u64).sum();
        assert!(sum <= cfg.budget_milli as u64, "Σshare {sum} > budget");
        let s1 = next.iter().find(|&&(id, _)| id == 1).unwrap().1;
        assert!(s1 >= 400, "floor violated: {s1}");
    }

    #[test]
    fn no_change_when_all_met() {
        let targets = [t(0, 1_000.0, 20.0, 50)];
        let obs = [o(0, 500, 5_000.0, 1.0, 3)];
        assert_eq!(resolve(&targets, &obs, &SolverCfg::default()), None);
    }

    #[test]
    fn empty_slice_does_not_bid() {
        // A slice with zero UEs never bids for share even with a
        // throughput floor it trivially "misses".
        let targets = [t(0, 10_000.0, 0.0, 50)];
        let obs = [o(0, 300, 0.0, 0.0, 0)];
        assert_eq!(resolve(&targets, &obs, &SolverCfg::default()), None);
    }

    #[test]
    fn unallocated_slack_funds_grants_first() {
        // 400 milli unallocated: the needy slice grows without anyone
        // yielding.
        let targets = [t(0, 9_000.0, 0.0, 50)];
        let obs = [o(0, 200, 2_000.0, 1.0, 4), o(1, 400, 8_000.0, 1.0, 2)];
        let next = resolve(&targets, &obs, &SolverCfg::default()).expect("reallocation");
        assert!(next.iter().find(|&&(id, _)| id == 0).unwrap().1 > 200);
        assert_eq!(next.iter().find(|&&(id, _)| id == 1).unwrap().1, 400);
    }

    #[test]
    fn step_cap_bounds_per_round_transfer() {
        let cfg = SolverCfg { max_step_milli: 60, ..SolverCfg::default() };
        let targets = [t(0, 100_000.0, 0.0, 50), t(1, 0.0, 0.0, 100)];
        let obs = [o(0, 100, 1_000.0, 1.0, 8), o(1, 900, 50_000.0, 1.0, 2)];
        let next = resolve(&targets, &obs, &cfg).expect("reallocation");
        let s0 = next.iter().find(|&&(id, _)| id == 0).unwrap().1;
        assert!(s0 <= 160, "grant exceeded step cap: {s0}");
    }

    #[test]
    fn deterministic() {
        let targets = [t(0, 20_000.0, 8.0, 50), t(1, 5_000.0, 0.0, 100), t(2, 0.0, 0.0, 50)];
        let obs =
            [o(0, 150, 3_000.0, 22.0, 6), o(1, 250, 4_000.0, 3.0, 3), o(2, 600, 45_000.0, 0.4, 1)];
        let a = resolve(&targets, &obs, &SolverCfg::default());
        let b = resolve(&targets, &obs, &SolverCfg::default());
        assert_eq!(a, b);
        assert!(a.is_some());
    }
}
