//! Pre-defined RAN functions: the SM implementations an agent registers to
//! expose a (simulated) base station (paper §3, §4.1.1).
//!
//! Each function bridges one service model to the `flexric-ransim`
//! substrate: statistics functions snapshot the cell on due report
//! subscriptions; control functions apply SC/TC SM messages to the cell's
//! schedulers and TC sublayer.  All functions honour the UE-to-controller
//! association: statistics toward an additional controller only contain
//! the UEs exposed to it (paper §4.1.2).

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use flexric::agent::{AgentCtx, CtrlId, PeriodicSubs, RanFunction, SubscriptionInfo};
use flexric::report::ReportSender;
use flexric_e2ap::{
    Cause, FnVersion, RanFunctionId, RicCause, RicControlRequest, RicRequestId,
    RicSubscriptionRequest,
};
use flexric_ransim::Sim;
use flexric_sm::{
    hw::HwPing,
    kpm::{self, KpmActionDef, KpmRecord, KpmReport},
    mac::MacStatsInd,
    oid,
    pdcp::PdcpStatsInd,
    rlc::RlcStatsInd,
    rrc::{RrcCtrl, RrcEventInd},
    slice::{SliceCtrl, SliceStatsInd},
    tc::{TcCtrl, TcStatsInd},
    ReportTrigger, SmCodec, SmDescriptor, SmPayload,
};

/// The registry descriptor of a bundled SM: the single source of function
/// id, OID, version, and funcdef for every pre-defined RAN function here.
fn desc_of(oid: &str) -> Arc<SmDescriptor> {
    flexric_sm::registry::global().latest(oid).expect("bundled SM descriptor")
}

/// Shared handle to a simulated base station: the simulator plus the cell
/// this agent fronts.
#[derive(Clone)]
pub struct SimBs {
    /// The simulation.
    pub sim: Arc<Mutex<Sim>>,
    /// Index of this base station's cell.
    pub cell: usize,
}

impl SimBs {
    /// Wraps a cell of a simulation.
    pub fn new(sim: Arc<Mutex<Sim>>, cell: usize) -> Self {
        SimBs { sim, cell }
    }
}

/// Addressing header of TC SM control/indication payloads: which bearer a
/// message concerns.  Fixed 3-byte wire format (rnti big-endian + drb),
/// deliberately codec-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BearerAddr {
    /// The UE.
    pub rnti: u16,
    /// The bearer.
    pub drb: u8,
}

impl BearerAddr {
    /// Serializes to the 3-byte wire form.
    pub fn encode(&self) -> Bytes {
        Bytes::from(vec![(self.rnti >> 8) as u8, self.rnti as u8, self.drb])
    }

    /// Parses the 3-byte wire form.
    pub fn decode(buf: &[u8]) -> Option<BearerAddr> {
        if buf.len() != 3 {
            return None;
        }
        Some(BearerAddr { rnti: ((buf[0] as u16) << 8) | buf[1] as u16, drb: buf[2] })
    }
}

/// The complete pre-defined function bundle for a simulated base station:
/// MAC/RLC/PDCP statistics, slice control, traffic control, RRC events and
/// hello-world.
pub fn full_bundle(bs: &SimBs, sm_codec: SmCodec) -> Vec<Box<dyn RanFunction>> {
    vec![
        Box::new(MacStatsFn::new(bs.clone(), sm_codec)),
        Box::new(RlcStatsFn::new(bs.clone(), sm_codec)),
        Box::new(PdcpStatsFn::new(bs.clone(), sm_codec)),
        Box::new(SliceCtrlFn::new(bs.clone(), sm_codec)),
        Box::new(TcCtrlFn::new(bs.clone(), sm_codec)),
        Box::new(RrcEventFn::new(bs.clone(), sm_codec)),
        Box::new(KpmFn::new(bs.clone(), sm_codec)),
        Box::new(HwFn::new(sm_codec)),
    ]
}

/// Only the monitoring functions (MAC/RLC/PDCP), as used in §5.1.
pub fn stats_bundle(bs: &SimBs, sm_codec: SmCodec) -> Vec<Box<dyn RanFunction>> {
    vec![
        Box::new(MacStatsFn::new(bs.clone(), sm_codec)),
        Box::new(RlcStatsFn::new(bs.clone(), sm_codec)),
        Box::new(PdcpStatsFn::new(bs.clone(), sm_codec)),
    ]
}

macro_rules! stats_fn {
    ($name:ident, $oid:expr, $snapshot:ident, $ind:ty, $filter:expr) => {
        /// Periodic statistics RAN function (see module docs).
        pub struct $name {
            bs: SimBs,
            sm_codec: SmCodec,
            desc: Arc<SmDescriptor>,
            subs: PeriodicSubs,
            sender: ReportSender<$ind>,
        }

        impl $name {
            /// Creates the function over a simulated base station.
            pub fn new(bs: SimBs, sm_codec: SmCodec) -> Self {
                Self {
                    bs,
                    sm_codec,
                    desc: desc_of($oid),
                    subs: PeriodicSubs::new(),
                    sender: ReportSender::new(),
                }
            }
        }

        impl RanFunction for $name {
            fn id(&self) -> RanFunctionId {
                RanFunctionId::new(self.desc.ran_function_id)
            }
            fn oid(&self) -> String {
                self.desc.oid.clone()
            }
            fn definition(&self) -> Bytes {
                Bytes::from(self.desc.funcdef_bytes(self.sm_codec))
            }
            fn version(&self) -> FnVersion {
                self.desc.version.into()
            }
            fn on_subscription(
                &mut self,
                ctx: &mut AgentCtx,
                sub: &SubscriptionInfo,
                _req: &RicSubscriptionRequest,
            ) -> Result<(), Cause> {
                self.subs.admit(sub, self.sm_codec, ctx.now_ms)?;
                if let Ok(t) = ReportTrigger::decode(self.sm_codec, &sub.trigger) {
                    self.sender.reset(sub, &t);
                }
                Ok(())
            }
            fn on_subscription_update(
                &mut self,
                ctx: &mut AgentCtx,
                sub: &SubscriptionInfo,
                _req: &RicSubscriptionRequest,
            ) -> Result<(), Cause> {
                // Server-driven retune: new period takes effect without a
                // resubscribe.  Period-only changes keep the delta stream;
                // identical-trigger retunes (resync requests) and mode
                // changes force a keyframe.
                let t = self.subs.retune(sub, self.sm_codec, ctx.now_ms)?;
                self.sender.retune(sub, &t);
                Ok(())
            }
            fn on_subscription_delete(
                &mut self,
                _ctx: &mut AgentCtx,
                ctrl: CtrlId,
                req_id: RicRequestId,
            ) {
                self.subs.remove(ctrl, req_id);
                self.sender.delete(ctrl, req_id);
            }
            fn on_control(
                &mut self,
                _ctx: &mut AgentCtx,
                _ctrl: CtrlId,
                _req: &RicControlRequest,
            ) -> Result<Option<Bytes>, Cause> {
                Err(Cause::Ric(RicCause::ActionNotSupported))
            }
            fn on_tick(&mut self, ctx: &mut AgentCtx) {
                if self.subs.is_empty() {
                    return;
                }
                let mut due: Vec<(SubscriptionInfo, ReportTrigger)> = Vec::new();
                self.subs.for_due(ctx.now_ms, |sub, t| due.push((sub.clone(), t.clone())));
                if due.is_empty() {
                    return;
                }
                // One snapshot per tick, shared by all due subscriptions;
                // the sender applies the per-subscription report mode
                // (full / delta / suppressed) to the filtered view.
                let ind: $ind = {
                    let mut sim = self.bs.sim.lock();
                    sim.cells[self.bs.cell].$snapshot()
                };
                for (sub, trigger) in due {
                    let filtered = $filter(&ind, ctx, &sub);
                    self.sender.send(
                        ctx,
                        &sub,
                        &trigger,
                        &filtered,
                        self.sm_codec,
                        None,
                        Bytes::new(),
                    );
                }
            }
        }
    };
}

fn filter_mac(ind: &MacStatsInd, ctx: &AgentCtx, sub: &SubscriptionInfo) -> MacStatsInd {
    MacStatsInd {
        tstamp_ms: ind.tstamp_ms,
        cell_prbs: ind.cell_prbs,
        ues: ind.ues.iter().filter(|u| ctx.ue_exposed(sub.ctrl, u.rnti)).copied().collect(),
    }
}

fn filter_rlc(ind: &RlcStatsInd, ctx: &AgentCtx, sub: &SubscriptionInfo) -> RlcStatsInd {
    RlcStatsInd {
        tstamp_ms: ind.tstamp_ms,
        bearers: ind.bearers.iter().filter(|b| ctx.ue_exposed(sub.ctrl, b.rnti)).copied().collect(),
    }
}

fn filter_pdcp(ind: &PdcpStatsInd, ctx: &AgentCtx, sub: &SubscriptionInfo) -> PdcpStatsInd {
    PdcpStatsInd {
        tstamp_ms: ind.tstamp_ms,
        bearers: ind.bearers.iter().filter(|b| ctx.ue_exposed(sub.ctrl, b.rnti)).copied().collect(),
    }
}

stats_fn!(MacStatsFn, oid::MAC_STATS, mac_stats, MacStatsInd, filter_mac);
stats_fn!(RlcStatsFn, oid::RLC_STATS, rlc_stats, RlcStatsInd, filter_rlc);
stats_fn!(PdcpStatsFn, oid::PDCP_STATS, pdcp_stats, PdcpStatsInd, filter_pdcp);

/// Slice control RAN function (SC SM): applies slice configuration to the
/// cell's MAC schedulers and reports slice status.
pub struct SliceCtrlFn {
    bs: SimBs,
    sm_codec: SmCodec,
    desc: Arc<SmDescriptor>,
    subs: PeriodicSubs,
}

impl SliceCtrlFn {
    /// Creates the function over a simulated base station.
    pub fn new(bs: SimBs, sm_codec: SmCodec) -> Self {
        SliceCtrlFn { bs, sm_codec, desc: desc_of(oid::SLICE_CTRL), subs: PeriodicSubs::new() }
    }
}

impl RanFunction for SliceCtrlFn {
    fn id(&self) -> RanFunctionId {
        RanFunctionId::new(self.desc.ran_function_id)
    }
    fn oid(&self) -> String {
        self.desc.oid.clone()
    }
    fn definition(&self) -> Bytes {
        Bytes::from(self.desc.funcdef_bytes(self.sm_codec))
    }
    fn version(&self) -> FnVersion {
        self.desc.version.into()
    }
    fn on_subscription(
        &mut self,
        ctx: &mut AgentCtx,
        sub: &SubscriptionInfo,
        _req: &RicSubscriptionRequest,
    ) -> Result<(), Cause> {
        self.subs.admit(sub, self.sm_codec, ctx.now_ms)
    }
    fn on_subscription_delete(&mut self, _ctx: &mut AgentCtx, ctrl: CtrlId, req_id: RicRequestId) {
        self.subs.remove(ctrl, req_id);
    }
    fn on_control(
        &mut self,
        _ctx: &mut AgentCtx,
        _ctrl: CtrlId,
        req: &RicControlRequest,
    ) -> Result<Option<Bytes>, Cause> {
        let ctrl_msg = SliceCtrl::decode(self.sm_codec, &req.message)
            .map_err(|_| Cause::Ric(RicCause::ControlMessageInvalid))?;
        let mut sim = self.bs.sim.lock();
        // Admission control happens inside the scheduler — conflict-free
        // operations are the SM's responsibility (paper §4.1.2).
        sim.cells[self.bs.cell]
            .apply_slice_ctrl(&ctrl_msg)
            .map_err(|_| Cause::Ric(RicCause::FunctionResourceLimit))?;
        Ok(Some(Bytes::from_static(b"ok")))
    }
    fn on_tick(&mut self, ctx: &mut AgentCtx) {
        if self.subs.is_empty() {
            return;
        }
        let mut due: Vec<SubscriptionInfo> = Vec::new();
        self.subs.for_due(ctx.now_ms, |sub, _| due.push(sub.clone()));
        if due.is_empty() {
            return;
        }
        let ind: SliceStatsInd = {
            let mut sim = self.bs.sim.lock();
            sim.cells[self.bs.cell].slice_stats()
        };
        for sub in due {
            // Partition: only associations of exposed UEs.
            let filtered = SliceStatsInd {
                tstamp_ms: ind.tstamp_ms,
                algo: ind.algo,
                slices: ind.slices.clone(),
                ue_assoc: ind
                    .ue_assoc
                    .iter()
                    .filter(|(rnti, _)| ctx.ue_exposed(sub.ctrl, *rnti))
                    .copied()
                    .collect(),
            };
            let msg = Bytes::from(filtered.encode(self.sm_codec));
            ctx.send_indication(&sub, None, Bytes::new(), msg);
        }
    }
}

/// Traffic control RAN function (TC SM): applies TC configuration to one
/// bearer's TC sublayer and reports per-queue statistics.
pub struct TcCtrlFn {
    bs: SimBs,
    sm_codec: SmCodec,
    desc: Arc<SmDescriptor>,
    /// Subscriptions with the bearer each one watches.
    subs: Vec<(SubscriptionInfo, BearerAddr, u32, u64)>, // (sub, bearer, period, next_due)
}

impl TcCtrlFn {
    /// Creates the function over a simulated base station.
    pub fn new(bs: SimBs, sm_codec: SmCodec) -> Self {
        TcCtrlFn { bs, sm_codec, desc: desc_of(oid::TC_CTRL), subs: Vec::new() }
    }
}

impl RanFunction for TcCtrlFn {
    fn id(&self) -> RanFunctionId {
        RanFunctionId::new(self.desc.ran_function_id)
    }
    fn oid(&self) -> String {
        self.desc.oid.clone()
    }
    fn definition(&self) -> Bytes {
        Bytes::from(self.desc.funcdef_bytes(self.sm_codec))
    }
    fn version(&self) -> FnVersion {
        self.desc.version.into()
    }
    fn on_subscription(
        &mut self,
        _ctx: &mut AgentCtx,
        sub: &SubscriptionInfo,
        req: &RicSubscriptionRequest,
    ) -> Result<(), Cause> {
        let trigger = flexric_sm::ReportTrigger::decode(self.sm_codec, &sub.trigger)
            .map_err(|_| Cause::Ric(RicCause::UnsupportedEventTrigger))?;
        // The action definition addresses the bearer to watch.
        let def = req
            .actions
            .first()
            .and_then(|a| a.definition.as_ref())
            .ok_or(Cause::Ric(RicCause::ActionNotSupported))?;
        let bearer = BearerAddr::decode(def).ok_or(Cause::Ric(RicCause::ActionNotSupported))?;
        self.subs.push((sub.clone(), bearer, trigger.period_ms.max(1), 0));
        Ok(())
    }
    fn on_subscription_delete(&mut self, _ctx: &mut AgentCtx, ctrl: CtrlId, req_id: RicRequestId) {
        self.subs.retain(|(s, _, _, _)| !(s.ctrl == ctrl && s.req_id == req_id));
    }
    fn on_control(
        &mut self,
        _ctx: &mut AgentCtx,
        _ctrl: CtrlId,
        req: &RicControlRequest,
    ) -> Result<Option<Bytes>, Cause> {
        let bearer =
            BearerAddr::decode(&req.header).ok_or(Cause::Ric(RicCause::ControlMessageInvalid))?;
        let ctrl_msg = TcCtrl::decode(self.sm_codec, &req.message)
            .map_err(|_| Cause::Ric(RicCause::ControlMessageInvalid))?;
        let mut sim = self.bs.sim.lock();
        sim.cells[self.bs.cell]
            .apply_tc_ctrl(bearer.rnti, bearer.drb, &ctrl_msg)
            .map_err(|_| Cause::Ric(RicCause::ControlMessageInvalid))?;
        Ok(Some(Bytes::from_static(b"ok")))
    }
    fn on_tick(&mut self, ctx: &mut AgentCtx) {
        let now = ctx.now_ms;
        for i in 0..self.subs.len() {
            if now < self.subs[i].3 {
                continue;
            }
            let (sub, bearer, period) = (self.subs[i].0.clone(), self.subs[i].1, self.subs[i].2);
            self.subs[i].3 = now + period as u64;
            let ind: Option<TcStatsInd> = {
                let mut sim = self.bs.sim.lock();
                sim.cells[self.bs.cell].tc_stats(bearer.rnti, bearer.drb)
            };
            if let Some(ind) = ind {
                let msg = Bytes::from(ind.encode(self.sm_codec));
                ctx.send_indication(&sub, None, bearer.encode(), msg);
            }
        }
    }
}

/// RRC event RAN function: forwards UE attach/detach events to subscribers.
pub struct RrcEventFn {
    bs: SimBs,
    sm_codec: SmCodec,
    desc: Arc<SmDescriptor>,
    subs: Vec<SubscriptionInfo>,
}

impl RrcEventFn {
    /// Creates the function over a simulated base station.
    pub fn new(bs: SimBs, sm_codec: SmCodec) -> Self {
        RrcEventFn { bs, sm_codec, desc: desc_of(oid::RRC_EVENT), subs: Vec::new() }
    }
}

/// KPM RAN function: computes 3GPP-style measurements from the cell's
/// cumulative counters at the subscription's granularity period.
/// Baseline for one KPM subscription's delta computations: the per-UE
/// cumulative counters plus the cell's handover counter.
struct KpmBaseline {
    ues: Vec<flexric_ransim::cell::KpmUeCounters>,
    ho_total: u64,
}

pub struct KpmFn {
    bs: SimBs,
    sm_codec: SmCodec,
    desc: Arc<SmDescriptor>,
    /// (sub, action def, last counters, next due ms)
    subs: Vec<(SubscriptionInfo, KpmActionDef, KpmBaseline, u64)>,
}

impl KpmFn {
    /// Creates the function over a simulated base station.
    pub fn new(bs: SimBs, sm_codec: SmCodec) -> Self {
        KpmFn { bs, sm_codec, desc: desc_of(oid::KPM), subs: Vec::new() }
    }

    fn baseline(&self) -> KpmBaseline {
        let sim = self.bs.sim.lock();
        let cell = &sim.cells[self.bs.cell];
        KpmBaseline { ues: cell.kpm_counters(), ho_total: cell.ho_in_total + cell.ho_out_total }
    }

    fn compute(
        def: &KpmActionDef,
        base: &KpmBaseline,
        curb: &KpmBaseline,
        now_ms: u64,
    ) -> KpmReport {
        let (prev, cur) = (&base.ues[..], &curb.ues[..]);
        let period = def.granularity_ms.max(1) as u64;
        let mut records = Vec::new();
        let prev_of = |rnti: u16| prev.iter().find(|c| c.rnti == rnti);
        for name in &def.measurements {
            match name.as_str() {
                kpm::meas::DRB_UE_THP_DL => {
                    for c in cur {
                        if def.ue_filter.is_some_and(|u| u != c.rnti) {
                            continue;
                        }
                        let before = prev_of(c.rnti).map(|p| p.dl_bytes_total).unwrap_or(0);
                        // Saturating: a UE handed into this cell carries
                        // counters from its previous serving cell.
                        let kbps = c.dl_bytes_total.saturating_sub(before) * 8 / period;
                        records.push(KpmRecord {
                            name: name.clone(),
                            rnti: Some(c.rnti),
                            value: kbps,
                        });
                    }
                }
                kpm::meas::RRU_PRB_TOT_DL => {
                    let before: u64 = prev.iter().map(|p| p.dl_prbs_total).sum();
                    let total: u64 = cur.iter().map(|c| c.dl_prbs_total).sum();
                    records.push(KpmRecord {
                        name: name.clone(),
                        rnti: None,
                        // Saturating: handovers move cumulative counters
                        // between cells mid-subscription.
                        value: total.saturating_sub(before),
                    });
                }
                kpm::meas::DRB_RLC_SDU_DELAY_DL => {
                    for c in cur {
                        if def.ue_filter.is_some_and(|u| u != c.rnti) {
                            continue;
                        }
                        records.push(KpmRecord {
                            name: name.clone(),
                            rnti: Some(c.rnti),
                            value: c.rlc_sojourn_us_avg,
                        });
                    }
                }
                kpm::meas::DRB_PDCP_SDU_VOLUME_DL => {
                    let before: u64 = prev.iter().map(|p| p.pdcp_tx_aggr).sum();
                    let total: u64 = cur.iter().map(|c| c.pdcp_tx_aggr).sum();
                    records.push(KpmRecord {
                        name: name.clone(),
                        rnti: None,
                        value: total.saturating_sub(before),
                    });
                }
                kpm::meas::RRC_CONN_MEAN => {
                    records.push(KpmRecord {
                        name: name.clone(),
                        rnti: None,
                        value: cur.len() as u64,
                    });
                }
                kpm::meas::HO_EXE_TOTAL => {
                    records.push(KpmRecord {
                        name: name.clone(),
                        rnti: None,
                        value: curb.ho_total.saturating_sub(base.ho_total),
                    });
                }
                _ => {} // unknown measurements are skipped, per KPM practice
            }
        }
        KpmReport { tstamp_ms: now_ms, granularity_ms: def.granularity_ms, records }
    }
}

impl RanFunction for KpmFn {
    fn id(&self) -> RanFunctionId {
        RanFunctionId::new(self.desc.ran_function_id)
    }
    fn oid(&self) -> String {
        self.desc.oid.clone()
    }
    fn definition(&self) -> Bytes {
        Bytes::from(self.desc.funcdef_bytes(self.sm_codec))
    }
    fn version(&self) -> FnVersion {
        self.desc.version.into()
    }
    fn on_subscription(
        &mut self,
        _ctx: &mut AgentCtx,
        sub: &SubscriptionInfo,
        req: &RicSubscriptionRequest,
    ) -> Result<(), Cause> {
        let def = req
            .actions
            .first()
            .and_then(|a| a.definition.as_ref())
            .ok_or(Cause::Ric(RicCause::ActionNotSupported))?;
        let def = KpmActionDef::decode(self.sm_codec, def)
            .map_err(|_| Cause::Ric(RicCause::ActionNotSupported))?;
        let baseline = self.baseline();
        self.subs.push((sub.clone(), def, baseline, 0));
        Ok(())
    }
    fn on_subscription_delete(&mut self, _ctx: &mut AgentCtx, ctrl: CtrlId, req_id: RicRequestId) {
        self.subs.retain(|(s, _, _, _)| !(s.ctrl == ctrl && s.req_id == req_id));
    }
    fn on_control(
        &mut self,
        _ctx: &mut AgentCtx,
        _ctrl: CtrlId,
        _req: &RicControlRequest,
    ) -> Result<Option<Bytes>, Cause> {
        Err(Cause::Ric(RicCause::ActionNotSupported))
    }
    fn on_tick(&mut self, ctx: &mut AgentCtx) {
        let now = ctx.now_ms;
        for i in 0..self.subs.len() {
            if now < self.subs[i].3 {
                continue;
            }
            let cur = self.baseline();
            let (sub, def) = (self.subs[i].0.clone(), self.subs[i].1.clone());
            let report = Self::compute(&def, &self.subs[i].2, &cur, now);
            self.subs[i].2 = cur;
            self.subs[i].3 = now + def.granularity_ms.max(1) as u64;
            let msg = Bytes::from(report.encode(self.sm_codec));
            // KPM is UE-agnostic of controllers only through the filter;
            // respect UE exposure for additional controllers.
            let filtered = if sub.ctrl == 0 {
                msg
            } else {
                let mut r = report.clone();
                r.records
                    .retain(|rec| rec.rnti.map(|u| ctx.ue_exposed(sub.ctrl, u)).unwrap_or(true));
                Bytes::from(r.encode(self.sm_codec))
            };
            ctx.send_indication(&sub, None, Bytes::new(), filtered);
        }
    }
}

impl RanFunction for RrcEventFn {
    fn id(&self) -> RanFunctionId {
        RanFunctionId::new(self.desc.ran_function_id)
    }
    fn oid(&self) -> String {
        self.desc.oid.clone()
    }
    fn definition(&self) -> Bytes {
        Bytes::from(self.desc.funcdef_bytes(self.sm_codec))
    }
    fn version(&self) -> FnVersion {
        self.desc.version.into()
    }
    fn on_subscription(
        &mut self,
        _ctx: &mut AgentCtx,
        sub: &SubscriptionInfo,
        _req: &RicSubscriptionRequest,
    ) -> Result<(), Cause> {
        if self.subs.iter().any(|s| s.ctrl == sub.ctrl && s.req_id == sub.req_id) {
            return Err(Cause::Ric(RicCause::DuplicateAction));
        }
        self.subs.push(sub.clone());
        Ok(())
    }
    fn on_subscription_delete(&mut self, _ctx: &mut AgentCtx, ctrl: CtrlId, req_id: RicRequestId) {
        self.subs.retain(|s| !(s.ctrl == ctrl && s.req_id == req_id));
    }
    fn on_control(
        &mut self,
        _ctx: &mut AgentCtx,
        _ctrl: CtrlId,
        req: &RicControlRequest,
    ) -> Result<Option<Bytes>, Cause> {
        // Connection management: handover / release (paper §1's "user
        // associations and handovers can be controlled […] through xApps").
        let cmd = RrcCtrl::decode(self.sm_codec, &req.message)
            .map_err(|_| Cause::Ric(RicCause::ControlMessageInvalid))?;
        let mut sim = self.bs.sim.lock();
        match cmd {
            RrcCtrl::Handover { rnti, target_cell } => sim
                .handover(rnti, self.bs.cell, target_cell as usize)
                .map_err(|_| Cause::Ric(RicCause::ControlMessageInvalid))?,
            RrcCtrl::Release { rnti } => sim.detach_ue(self.bs.cell, rnti),
        }
        Ok(Some(Bytes::from_static(b"ok")))
    }
    fn on_tick(&mut self, ctx: &mut AgentCtx) {
        if self.subs.is_empty() {
            return;
        }
        let events = {
            let mut sim = self.bs.sim.lock();
            sim.cells[self.bs.cell].take_rrc_events()
        };
        if events.is_empty() {
            return;
        }
        let ind = RrcEventInd { tstamp_ms: ctx.now_ms, events };
        // RRC events are visible to every subscribed controller: the
        // *controller* decides UE-to-controller association from them
        // (paper Fig. 4), so withholding them would deadlock setup.  One
        // SM encode here, one E2AP encode per request-id group at flush.
        let msg = Bytes::from(ind.encode(self.sm_codec));
        ctx.send_indication_multi(self.subs.iter(), None, Bytes::new(), msg);
    }
}

/// Hello-world RAN function: answers a ping control message with a pong
/// indication carrying the same payload (paper §5.2).
pub struct HwFn {
    sm_codec: SmCodec,
    desc: Arc<SmDescriptor>,
}

impl HwFn {
    /// Creates the ping responder.
    pub fn new(sm_codec: SmCodec) -> Self {
        HwFn { sm_codec, desc: desc_of(oid::HW) }
    }
}

impl RanFunction for HwFn {
    fn id(&self) -> RanFunctionId {
        RanFunctionId::new(self.desc.ran_function_id)
    }
    fn oid(&self) -> String {
        self.desc.oid.clone()
    }
    fn definition(&self) -> Bytes {
        Bytes::from(self.desc.funcdef_bytes(self.sm_codec))
    }
    fn version(&self) -> FnVersion {
        self.desc.version.into()
    }
    fn on_subscription(
        &mut self,
        _ctx: &mut AgentCtx,
        _sub: &SubscriptionInfo,
        _req: &RicSubscriptionRequest,
    ) -> Result<(), Cause> {
        Ok(())
    }
    fn on_subscription_delete(&mut self, _ctx: &mut AgentCtx, _ctrl: CtrlId, _req: RicRequestId) {}
    fn on_control(
        &mut self,
        ctx: &mut AgentCtx,
        ctrl: CtrlId,
        req: &RicControlRequest,
    ) -> Result<Option<Bytes>, Cause> {
        let ping = HwPing::decode(self.sm_codec, &req.message)
            .map_err(|_| Cause::Ric(RicCause::ControlMessageInvalid))?;
        // Respond with an indication on the same request id, as the
        // paper's modified HW SM does.
        let sub = SubscriptionInfo {
            ctrl,
            req_id: req.req_id,
            ran_function: req.ran_function,
            action: flexric_e2ap::RicActionId(0),
            trigger: Bytes::new(),
        };
        let pong = Bytes::from(ping.encode(self.sm_codec));
        ctx.send_indication(&sub, Some(ping.seq), Bytes::new(), pong);
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bearer_addr_roundtrip() {
        for (rnti, drb) in [(0u16, 0u8), (0x4601, 1), (u16::MAX, u8::MAX)] {
            let addr = BearerAddr { rnti, drb };
            assert_eq!(BearerAddr::decode(&addr.encode()), Some(addr));
        }
        assert_eq!(BearerAddr::decode(&[1, 2]), None);
        assert_eq!(BearerAddr::decode(&[1, 2, 3, 4]), None);
    }
}
