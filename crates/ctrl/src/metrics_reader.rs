//! A controller iApp that periodically aggregates the process-wide obs
//! registry into a shared [`Snapshot`] handle.
//!
//! The registry itself is lock-free on the write path; reading it walks
//! every shard of every counter and sums every histogram bucket, which is
//! cheap but not free.  Rather than have every consumer (REST handlers,
//! log reporters, tests) rescan the registry on demand, this iApp scans
//! once per period on the controller's own tick and publishes the result
//! behind a mutex — the same "decode once, read many" shape as the
//! monitoring iApp's statistics store.

use std::sync::Arc;

use parking_lot::Mutex;

use flexric::server::{IApp, ServerApi};
use flexric_obs::Snapshot;

/// Shared handle to the most recent metrics snapshot.
pub type SnapshotHandle = Arc<Mutex<Snapshot>>;

/// Configuration of the metrics-reader iApp.
#[derive(Debug, Clone, Copy)]
pub struct MetricsReaderConfig {
    /// How often the registry is rescanned (controller tick granularity).
    pub period_ms: u64,
}

impl Default for MetricsReaderConfig {
    fn default() -> Self {
        MetricsReaderConfig { period_ms: 1000 }
    }
}

/// The metrics-reader iApp.
pub struct MetricsReader {
    cfg: MetricsReaderConfig,
    snap: SnapshotHandle,
    last_scan_ms: Option<u64>,
}

impl MetricsReader {
    /// Creates the iApp; the returned handle always holds the latest
    /// published snapshot (empty until the first tick).
    pub fn new(cfg: MetricsReaderConfig) -> (Self, SnapshotHandle) {
        let snap: SnapshotHandle = Arc::new(Mutex::new(Snapshot::default()));
        (MetricsReader { cfg, snap: snap.clone(), last_scan_ms: None }, snap)
    }

    fn rescan(&mut self, now_ms: u64) {
        *self.snap.lock() = flexric_obs::snapshot();
        self.last_scan_ms = Some(now_ms);
    }

    /// Rescans if the period has elapsed.  Split out of [`IApp::on_tick`]
    /// so the cadence is testable without a live server.
    fn tick(&mut self, now_ms: u64) {
        let due = match self.last_scan_ms {
            None => true,
            Some(last) => now_ms.saturating_sub(last) >= self.cfg.period_ms,
        };
        if due {
            self.rescan(now_ms);
        }
    }
}

impl IApp for MetricsReader {
    fn name(&self) -> &str {
        "metrics-reader"
    }

    fn on_start(&mut self, _api: &mut ServerApi) {
        // Publish immediately so handles never observe an empty snapshot
        // after the server is up.
        self.rescan(0);
    }

    fn on_tick(&mut self, _api: &mut ServerApi, now_ms: u64) {
        self.tick(now_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_handle_updates_on_period() {
        let c = flexric_obs::counter(
            "flexric_test_metrics_reader_total",
            "test counter for the metrics reader",
        );
        c.inc();
        let (mut app, snap) = MetricsReader::new(MetricsReaderConfig { period_ms: 100 });
        assert!(snap.lock().metrics.is_empty());

        if cfg!(feature = "obs-off") {
            // Increments compile out; only check the snapshot plumbing.
            app.tick(5);
            assert!(snap.lock().counter_value("flexric_test_metrics_reader_total").is_some());
            return;
        }

        // First tick always scans.
        app.tick(5);
        let v1 = snap.lock().counter_value("flexric_test_metrics_reader_total");
        assert!(v1.is_some_and(|v| v >= 1));

        // Within the period: no rescan, value stays put even as the
        // counter moves.
        c.inc();
        app.tick(50);
        assert_eq!(v1, snap.lock().counter_value("flexric_test_metrics_reader_total"));

        // Past the period: the new value is published.
        app.tick(110);
        let v2 = snap.lock().counter_value("flexric_test_metrics_reader_total");
        assert!(v2 > v1);
    }
}
