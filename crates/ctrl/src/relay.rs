//! A relaying controller: terminates agents southbound and exposes itself
//! as an E2 node northbound, forwarding functional procedures verbatim.
//!
//! Used by the Fig. 9a experiment: "In FlexRIC, we use a relaying
//! controller to emulate two hops, which, unlike O-RAN RIC, is not imposed
//! by FlexRIC but added to carry out a fair comparison."  Procedure
//! traffic (subscriptions, controls, their outcomes) pays one decode + one
//! encode per hop — the honest cost of a controller hop.  FB-path
//! indications are forwarded verbatim: the relay peeks the header,
//! looks up the subscription, and ships the received frame (a refcounted
//! view of its south read slab) north unchanged — no decode, no re-encode,
//! no copy — in contrast to the O-RAN pipeline, which adds an RMR hop and
//! a second full decode at the xApp.

use std::io;

use bytes::Bytes;
use tokio::sync::mpsc;

use flexric::server::{
    AgentId, CtrlOutcome, IApp, IndicationRef, Server, ServerApi, ServerConfig, SubOutcome,
};
use flexric_e2ap::*;
use flexric_transport::{connect, TransportAddr, WireMsg};

/// Messages from the northbound task into the relay iApp.
enum NorthMsg {
    Pdu(E2apPdu),
}

/// What the relay queues toward the northbound writer.
enum NorthBound {
    /// A PDU the writer encodes (procedure traffic).
    Pdu(E2apPdu),
    /// An already-encoded indication frame forwarded verbatim — valid
    /// because the relay's north connection speaks the same codec as its
    /// south server.
    Frame(Bytes),
}

/// The relay iApp: forwards north→south requests and south→north
/// responses/indications.
struct RelayApp {
    north_tx: mpsc::UnboundedSender<NorthBound>,
    /// The south agent everything is relayed to (single-agent relay, as in
    /// the RTT experiment).
    target: Option<AgentId>,
}

impl IApp for RelayApp {
    fn name(&self) -> &str {
        "relay"
    }

    fn on_agent_connected(&mut self, _api: &mut ServerApi, agent: &flexric::server::AgentInfo) {
        if self.target.is_none() {
            self.target = Some(agent.id);
        }
    }

    fn on_agent_disconnected(&mut self, _api: &mut ServerApi, agent: AgentId) {
        if self.target == Some(agent) {
            self.target = None;
        }
    }

    fn on_indication(&mut self, _api: &mut ServerApi, _agent: AgentId, ind: &IndicationRef) {
        // FB hot path: the frame arrived undecoded; ship it north verbatim
        // (a refcount bump on the south read-slab slice).  The PER path
        // was decoded during dispatch and is re-encoded by the writer.
        if let Some(frame) = ind.frame() {
            let _ = self.north_tx.send(NorthBound::Frame(frame));
        } else if let Ok(owned) = ind.to_owned_indication() {
            let _ = self.north_tx.send(NorthBound::Pdu(E2apPdu::RicIndication(owned)));
        }
    }

    fn on_subscription_outcome(&mut self, _api: &mut ServerApi, _agent: AgentId, out: &SubOutcome) {
        let pdu = match out {
            SubOutcome::Admitted(r) => E2apPdu::RicSubscriptionResponse(r.clone()),
            SubOutcome::Failed(f) => E2apPdu::RicSubscriptionFailure(f.clone()),
            // Endpoint-layer terminals have no wire PDU; synthesize a
            // failure so the upstream controller gets an answer either way.
            SubOutcome::TimedOut { req_id, ran_function, .. }
            | SubOutcome::ConnectionLost { req_id, ran_function } => {
                E2apPdu::RicSubscriptionFailure(RicSubscriptionFailure {
                    req_id: *req_id,
                    ran_function: *ran_function,
                    cause: Cause::Transport(TransportCause::Unspecified),
                })
            }
        };
        let _ = self.north_tx.send(NorthBound::Pdu(pdu));
    }

    fn on_control_outcome(&mut self, _api: &mut ServerApi, _agent: AgentId, out: &CtrlOutcome) {
        let pdu = match out {
            CtrlOutcome::Ack(a) => E2apPdu::RicControlAcknowledge(a.clone()),
            CtrlOutcome::Failed(f) => E2apPdu::RicControlFailure(f.clone()),
            CtrlOutcome::TimedOut { req_id, ran_function }
            | CtrlOutcome::ConnectionLost { req_id, ran_function } => {
                E2apPdu::RicControlFailure(RicControlFailure {
                    req_id: *req_id,
                    ran_function: *ran_function,
                    call_process_id: None,
                    cause: Cause::Transport(TransportCause::Unspecified),
                    outcome: None,
                })
            }
        };
        let _ = self.north_tx.send(NorthBound::Pdu(pdu));
    }

    fn on_custom(&mut self, api: &mut ServerApi, msg: Box<dyn std::any::Any + Send>) {
        let Ok(north) = msg.downcast::<NorthMsg>() else { return };
        let NorthMsg::Pdu(pdu) = *north;
        let Some(target) = self.target else { return };
        match &pdu {
            E2apPdu::RicControlRequest(req) => {
                api.claim_control_id(target, req.req_id);
                api.claim_request_id(target, req.req_id); // HW pong comes as indication
            }
            E2apPdu::RicSubscriptionRequest(req) => {
                api.claim_request_id(target, req.req_id);
            }
            _ => {}
        }
        api.send_pdu(target, pdu);
    }
}

/// Spawns a relaying controller: a south server at `south.listen` plus a
/// northbound E2 connection to `north_addr`, advertising the functions in
/// `advertised`.
pub async fn spawn_relay(
    south: ServerConfig,
    north_addr: TransportAddr,
    node: GlobalE2NodeId,
    advertised: Vec<RanFunctionItem>,
) -> io::Result<flexric::server::ServerHandle> {
    let codec = south.codec;
    let (north_tx, mut north_rx) = mpsc::unbounded_channel::<NorthBound>();
    let app = RelayApp { north_tx, target: None };
    let handle = Server::spawn(south, vec![Box::new(app)]).await?;

    // Northbound: behave as an E2 node toward the upstream controller.
    let mut transport = connect(&north_addr).await?;
    let setup = E2apPdu::E2SetupRequest(E2SetupRequest {
        transaction_id: 0,
        global_node: node,
        ran_functions: advertised,
        component_configs: vec![],
    });
    transport.send(WireMsg::e2ap(Bytes::from(codec.encode(&setup)))).await?;
    match transport.recv().await? {
        Some(msg) => match codec.decode(&msg.payload) {
            Ok(E2apPdu::E2SetupResponse(_)) => {}
            other => {
                return Err(io::Error::other(format!("relay north setup failed: {other:?}")));
            }
        },
        None => return Err(io::Error::new(io::ErrorKind::ConnectionReset, "north closed")),
    }
    let (mut tx_half, mut rx_half) = transport.split();
    // North writer: procedures are encoded here; forwarded indication
    // frames go out as-is on the bulk stream.
    tokio::spawn(async move {
        while let Some(nb) = north_rx.recv().await {
            let msg = match nb {
                NorthBound::Pdu(pdu) => {
                    WireMsg::e2ap_on(flexric::stream_for(&pdu), Bytes::from(codec.encode(&pdu)))
                }
                NorthBound::Frame(frame) => WireMsg::e2ap_on(WireMsg::STREAM_BULK, frame),
            };
            if tx_half.send(msg).await.is_err() {
                break;
            }
        }
    });
    // North reader → relay iApp.
    let h = handle.clone();
    tokio::spawn(async move {
        while let Ok(Some(msg)) = rx_half.recv().await {
            if let Ok(pdu) = codec.decode(&msg.payload) {
                h.to_iapp("relay", Box::new(NorthMsg::Pdu(pdu)));
            }
        }
    });
    Ok(handle)
}

/// Builds the advertisement for a relay fronting an HW-SM agent, from the
/// registry's HW descriptor.
pub fn hw_advertisement(sm_codec: flexric_sm::SmCodec) -> Vec<RanFunctionItem> {
    let desc = flexric_sm::registry::global()
        .latest(flexric_sm::oid::HW)
        .expect("HW SM is a builtin descriptor");
    vec![desc.advertisement(sm_codec)]
}

/// Pinger utility: an upstream controller iApp that pings through
/// control requests and records RTTs; used by the Fig. 7a and 9a
/// experiments.
pub struct PingApp {
    sm_codec: flexric_sm::SmCodec,
    payload_size: usize,
    /// RTT samples in nanoseconds.
    pub rtts: std::sync::Arc<parking_lot::Mutex<Vec<u64>>>,
    /// Ping interval in ms.
    interval_ms: u64,
    next_ping: u64,
    seq: u32,
    outstanding: Option<(AgentId, u64)>,
    outstanding_since_ms: u64,
    target: Option<(AgentId, RanFunctionId)>,
}

impl PingApp {
    /// Creates a pinger sending `payload_size`-byte pings every
    /// `interval_ms`.
    pub fn new(
        sm_codec: flexric_sm::SmCodec,
        payload_size: usize,
        interval_ms: u64,
    ) -> (Self, std::sync::Arc<parking_lot::Mutex<Vec<u64>>>) {
        let rtts = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        (
            PingApp {
                sm_codec,
                payload_size,
                rtts: rtts.clone(),
                interval_ms,
                next_ping: 0,
                seq: 0,
                outstanding: None,
                outstanding_since_ms: 0,
                target: None,
            },
            rtts,
        )
    }

    fn send_ping(&mut self, api: &mut ServerApi) {
        use flexric_sm::SmPayload;
        let Some((agent, rf_id)) = self.target else { return };
        self.seq += 1;
        let t0 = flexric::mono_ns();
        let ping = flexric_sm::hw::HwPing::sized(self.seq, t0, self.payload_size);
        let msg = Bytes::from(ping.encode(self.sm_codec));
        let req_id = api.control(agent, rf_id, Bytes::new(), msg, None);
        api.claim_request_id(agent, req_id);
        self.outstanding = Some((agent, t0));
    }

    /// Drops a ping that was lost in flight (e.g. the relay had no south
    /// agent yet) so the pinger does not wedge; the sample is discarded.
    fn expire_outstanding(&mut self, now_ms: u64) {
        if self.outstanding.is_some() && now_ms.saturating_sub(self.outstanding_since_ms) > 200 {
            self.outstanding = None;
        }
    }
}

impl IApp for PingApp {
    fn name(&self) -> &str {
        "ping"
    }

    fn on_agent_connected(&mut self, _api: &mut ServerApi, agent: &flexric::server::AgentInfo) {
        if let Some(f) = agent.function_by_oid(flexric_sm::oid::HW) {
            self.target = Some((agent.id, f.id));
        }
    }

    fn on_indication(&mut self, _api: &mut ServerApi, _agent: AgentId, _ind: &IndicationRef) {
        if let Some((_, t0)) = self.outstanding.take() {
            self.rtts.lock().push(flexric::mono_ns() - t0);
        }
    }

    fn on_tick(&mut self, api: &mut ServerApi, now_ms: u64) {
        self.expire_outstanding(now_ms);
        if self.target.is_some() && now_ms >= self.next_ping {
            self.next_ping = now_ms + self.interval_ms;
            if self.outstanding.is_none() {
                self.outstanding_since_ms = now_ms;
                self.send_ping(api);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexric::agent::{Agent, AgentConfig};
    use flexric_sm::SmCodec;
    use std::time::Duration;

    #[tokio::test]
    async fn two_hop_ping_through_relay() {
        let codec = flexric_codec::E2apCodec::Flatb;
        let sm_codec = SmCodec::Flatb;
        // Upstream controller with the pinger.
        let (ping_app, rtts) = PingApp::new(sm_codec, 100, 1);
        let mut up_cfg = ServerConfig::new(
            GlobalRicId::new(Plmn::TEST, 1),
            TransportAddr::Mem("relay-up".into()),
        );
        up_cfg.codec = codec;
        up_cfg.tick_ms = Some(1);
        let _up = Server::spawn(up_cfg, vec![Box::new(ping_app)]).await.unwrap();

        // The relay in the middle.
        let mut south_cfg = ServerConfig::new(
            GlobalRicId::new(Plmn::TEST, 2),
            TransportAddr::Mem("relay-south".into()),
        );
        south_cfg.codec = codec;
        south_cfg.tick_ms = None;
        let _relay = spawn_relay(
            south_cfg,
            TransportAddr::Mem("relay-up".into()),
            GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 99),
            hw_advertisement(sm_codec),
        )
        .await
        .unwrap();

        // The agent at the bottom.
        let mut acfg = AgentConfig::new(
            GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
            TransportAddr::Mem("relay-south".into()),
        );
        acfg.codec = codec;
        acfg.tick_ms = None;
        let _agent =
            Agent::spawn(acfg, vec![Box::new(crate::ranfun::HwFn::new(sm_codec))]).await.unwrap();

        for _ in 0..300 {
            if rtts.lock().len() >= 5 {
                break;
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        let samples = rtts.lock();
        assert!(samples.len() >= 5, "pings flowed through two hops: {}", samples.len());
        for rtt in samples.iter() {
            assert!(*rtt < 1_000_000_000, "sane RTT: {rtt} ns");
        }
    }
}
