//! The recursive network-virtualization controller (paper §6.2, Fig. 14a,
//! Appendix B).
//!
//! Multiplexes the virtual RANs of multiple tenants (operators) onto a
//! shared infrastructure: southbound it is a normal FlexRIC controller
//! terminating the real agents; northbound it *reuses the agent library*
//! to expose an E2 interface to each tenant's own controller — the
//! "recursive" property.  A virtualization layer of iApps/RAN functions
//! sits in between:
//!
//! * **SC SM virtualization** — tenant slice configurations are expressed
//!   over a virtual resource of 100 % and mapped to physical resources by
//!   the tenant's SLA share `q` (Appendix B): a virtual capacity `c` maps
//!   to physical `c·q`; a virtual rate slice keeps its physical rate while
//!   its reference rate is scaled by `1/q`.  Admission control on the
//!   virtual representation guarantees no tenant can exceed its SLA,
//!   "effectively avoiding any conflicts".
//! * **Slice-ID remapping** — virtual ids (0–9) map into disjoint physical
//!   ranges per tenant, so tenants choose ids freely.
//! * **MAC statistics partitioning** — a tenant only sees UEs of its own
//!   PLMN, with physical slice ids translated back to virtual ones.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use tokio::sync::mpsc;

use flexric::agent::{
    Agent, AgentConfig, AgentCtx, AgentHandle, CtrlId, PeriodicSubs, RanFunction, SubscriptionInfo,
};
use flexric::server::{
    AgentId, AgentInfo, IApp, IndicationRef, Server, ServerApi, ServerConfig, ServerHandle,
};
use flexric_e2ap::*;
use flexric_sm::mac::MacStatsInd;
use flexric_sm::slice::{
    SliceAlgo, SliceConf, SliceCtrl, SliceParams, SliceStatsInd, SliceStatus, UeSchedAlgo,
};
use flexric_sm::{oid, rf, RanFuncDef, ReportTrigger, SmCodec, SmPayload};
use flexric_transport::TransportAddr;

/// Highest virtual slice id a tenant may use.
pub const MAX_VIRT_SLICE_ID: u32 = 9;
/// Physical id space per tenant.
const TENANT_ID_SPACE: u32 = 100;
/// Virtual id of the implicit tenant default slice.
const DEFAULT_VID: u32 = 99;

/// Configuration of one tenant.
#[derive(Debug, Clone)]
pub struct TenantConf {
    /// Display name.
    pub name: String,
    /// The tenant's PLMN: its UEs are identified by it.
    pub plmn: (u16, u16),
    /// SLA: share of physical resources in milli-units (500 = 50 %).
    pub sla_milli: u32,
    /// The tenant controller's E2 listen address.
    pub ctrl_addr: TransportAddr,
}

/// Maps a tenant's virtual slice id to the physical id.
pub fn phys_slice_id(tenant: usize, vid: u32) -> u32 {
    tenant as u32 * TENANT_ID_SPACE + vid
}

/// Maps a physical slice id back to `(tenant, virtual id)`.
pub fn virt_slice_id(pid: u32) -> (usize, u32) {
    ((pid / TENANT_ID_SPACE) as usize, pid % TENANT_ID_SPACE)
}

/// Translates a tenant's virtual slice parameters into physical ones
/// according to the tenant's SLA `q` (Appendix B).
pub fn virt_to_phys_params(params: &SliceParams, sla_milli: u32) -> SliceParams {
    match params {
        SliceParams::NvsCapacity { share_milli } => SliceParams::NvsCapacity {
            share_milli: (*share_milli as u64 * sla_milli as u64 / 1000) as u32,
        },
        SliceParams::NvsRate { rate_kbps, ref_kbps } => SliceParams::NvsRate {
            rate_kbps: *rate_kbps,
            ref_kbps: (*ref_kbps as u64 * 1000 / sla_milli.max(1) as u64) as u32,
        },
        // Static ranges scale by the SLA fraction (coarse, PRB-granular).
        SliceParams::StaticRb { lo, hi } => SliceParams::StaticRb {
            lo: (*lo as u64 * sla_milli as u64 / 1000) as u16,
            hi: (*hi as u64 * sla_milli as u64 / 1000) as u16,
        },
    }
}

/// Translates physical parameters back into the tenant's virtual view.
pub fn phys_to_virt_params(params: &SliceParams, sla_milli: u32) -> SliceParams {
    match params {
        SliceParams::NvsCapacity { share_milli } => SliceParams::NvsCapacity {
            share_milli: (*share_milli as u64 * 1000 / sla_milli.max(1) as u64) as u32,
        },
        SliceParams::NvsRate { rate_kbps, ref_kbps } => SliceParams::NvsRate {
            rate_kbps: *rate_kbps,
            ref_kbps: (*ref_kbps as u64 * sla_milli as u64 / 1000) as u32,
        },
        SliceParams::StaticRb { lo, hi } => SliceParams::StaticRb {
            lo: (*lo as u64 * 1000 / sla_milli.max(1) as u64) as u16,
            hi: (*hi as u64 * 1000 / sla_milli.max(1) as u64) as u16,
        },
    }
}

/// Shared state between the south iApp and the north RAN functions.
struct VirtShared {
    tenants: Vec<TenantConf>,
    /// Latest MAC snapshot from the (single) south agent.
    latest_mac: Option<MacStatsInd>,
    /// Latest slice stats from the south agent.
    latest_slice: Option<SliceStatsInd>,
    /// Virtual slice configurations per tenant.
    virt_slices: Vec<HashMap<u32, SliceConf>>,
    /// UEs already auto-associated.
    auto_assoc: std::collections::HashSet<u16>,
}

impl VirtShared {
    fn tenant_of_plmn(&self, mcc: u16, mnc: u16) -> Option<usize> {
        self.tenants.iter().position(|t| t.plmn == (mcc, mnc))
    }
}

/// Commands flowing from the virtualization layer to the south iApp.
enum SouthCmd {
    Apply(SliceCtrl),
}

/// Builds the full southbound slice batch of one tenant: every sub-slice
/// translated per Appendix B, plus the tenant default slice holding the
/// *remaining* SLA budget, so physical admission always balances.
fn tenant_south_batch(shared: &VirtShared, tenant: usize) -> Vec<SliceConf> {
    let conf = &shared.tenants[tenant];
    let mut out: Vec<SliceConf> = shared.virt_slices[tenant]
        .values()
        .map(|s| SliceConf {
            id: phys_slice_id(tenant, s.id),
            label: format!("{}:{}", conf.name, s.label),
            params: virt_to_phys_params(&s.params, conf.sla_milli),
            ue_sched: s.ue_sched,
        })
        .collect();
    out.sort_by_key(|s| s.id);
    let used: f64 = shared.virt_slices[tenant].values().map(|s| s.params.share(0)).sum();
    let remaining_milli = ((1.0 - used).max(0.0) * conf.sla_milli as f64).round() as u32;
    out.push(SliceConf {
        id: phys_slice_id(tenant, DEFAULT_VID),
        label: format!("{}-default", conf.name),
        params: SliceParams::NvsCapacity { share_milli: remaining_milli },
        ue_sched: UeSchedAlgo::PropFair,
    });
    out
}

// ---------------------------------------------------------------------------
// South side: iApp terminating the real agent
// ---------------------------------------------------------------------------

struct VirtSouthApp {
    sm_codec: SmCodec,
    stats_period_ms: u32,
    shared: Arc<Mutex<VirtShared>>,
    target: Option<AgentId>,
    kinds: HashMap<(AgentId, RicRequestId), u16>,
}

impl VirtSouthApp {
    fn apply(&self, api: &mut ServerApi, ctrl: &SliceCtrl) {
        let Some(agent) = self.target else { return };
        let Some(rf_id) =
            api.randb().agent(agent).and_then(|a| a.function_by_oid(oid::SLICE_CTRL)).map(|f| f.id)
        else {
            return;
        };
        let msg = Bytes::from(ctrl.encode(self.sm_codec));
        api.control(agent, rf_id, Bytes::new(), msg, Some(ControlAckRequest::NAck));
    }
}

impl IApp for VirtSouthApp {
    fn name(&self) -> &str {
        "virt-south"
    }

    fn on_agent_connected(&mut self, api: &mut ServerApi, agent: &AgentInfo) {
        if self.target.is_some() {
            return; // single-infrastructure virtualization
        }
        self.target = Some(agent.id);
        // Subscriptions: MAC stats + slice stats.
        let trigger =
            Bytes::from(ReportTrigger::every_ms(self.stats_period_ms).encode(self.sm_codec));
        if let Some(f) = agent.function_by_oid(oid::MAC_STATS) {
            let req = api.subscribe_report(agent.id, f.id, trigger.clone());
            self.kinds.insert((agent.id, req), rf::MAC_STATS);
        }
        if let Some(f) = agent.function_by_oid(oid::SLICE_CTRL) {
            let req = api.subscribe_report(agent.id, f.id, trigger);
            self.kinds.insert((agent.id, req), rf::SLICE_CTRL);
        }
        // Install NVS with one default slice per tenant at its SLA share.
        let defaults: Vec<SliceConf> = {
            let shared = self.shared.lock();
            shared
                .tenants
                .iter()
                .enumerate()
                .map(|(t, conf)| SliceConf {
                    id: phys_slice_id(t, DEFAULT_VID),
                    label: format!("{}-default", conf.name),
                    params: SliceParams::NvsCapacity { share_milli: conf.sla_milli },
                    ue_sched: UeSchedAlgo::PropFair,
                })
                .collect()
        };
        self.apply(api, &SliceCtrl::SetAlgo { algo: SliceAlgo::Nvs });
        self.apply(api, &SliceCtrl::AddModSlices { slices: defaults });
    }

    fn on_agent_disconnected(&mut self, _api: &mut ServerApi, agent: AgentId) {
        if self.target == Some(agent) {
            self.target = None;
        }
    }

    fn on_indication(&mut self, api: &mut ServerApi, agent: AgentId, ind: &IndicationRef) {
        let Ok((_, msg)) = ind.sm_payload() else { return };
        let kind = self.kinds.get(&(agent, ind.req_id())).copied();
        match kind {
            Some(k) if k == rf::MAC_STATS => {
                let Ok(stats) = MacStatsInd::decode(self.sm_codec, msg) else { return };
                // Auto-associate newly seen tenant UEs to the tenant
                // default slice (the virtualization layer's counterpart of
                // the Fig. 4 UE-to-controller configuration).
                let mut assoc = Vec::new();
                {
                    let mut shared = self.shared.lock();
                    for ue in &stats.ues {
                        if shared.auto_assoc.contains(&ue.rnti) {
                            continue;
                        }
                        if let Some(t) = shared.tenant_of_plmn(ue.plmn_mcc, ue.plmn_mnc) {
                            shared.auto_assoc.insert(ue.rnti);
                            assoc.push((ue.rnti, phys_slice_id(t, DEFAULT_VID)));
                        }
                    }
                    shared.latest_mac = Some(stats);
                }
                if !assoc.is_empty() {
                    self.apply(api, &SliceCtrl::AssocUeSlice { assoc });
                }
            }
            Some(k) if k == rf::SLICE_CTRL => {
                if let Ok(stats) = SliceStatsInd::decode(self.sm_codec, msg) {
                    self.shared.lock().latest_slice = Some(stats);
                }
            }
            _ => {}
        }
    }

    fn on_custom(&mut self, api: &mut ServerApi, msg: Box<dyn std::any::Any + Send>) {
        if let Ok(cmd) = msg.downcast::<SouthCmd>() {
            let SouthCmd::Apply(ctrl) = *cmd;
            self.apply(api, &ctrl);
        }
    }
}

// ---------------------------------------------------------------------------
// North side: virtual RAN functions exposed through the agent library
// ---------------------------------------------------------------------------

/// Virtual MAC statistics: partitioned per tenant.
struct VirtMacFn {
    sm_codec: SmCodec,
    shared: Arc<Mutex<VirtShared>>,
    subs: PeriodicSubs,
}

impl RanFunction for VirtMacFn {
    fn id(&self) -> RanFunctionId {
        RanFunctionId::new(rf::MAC_STATS)
    }
    fn oid(&self) -> String {
        oid::MAC_STATS.to_owned()
    }
    fn definition(&self) -> Bytes {
        Bytes::from(
            RanFuncDef::simple("V-MAC-STATS", "tenant-partitioned MAC statistics")
                .encode(self.sm_codec),
        )
    }
    fn on_subscription(
        &mut self,
        ctx: &mut AgentCtx,
        sub: &SubscriptionInfo,
        _req: &RicSubscriptionRequest,
    ) -> Result<(), Cause> {
        self.subs.admit(sub, self.sm_codec, ctx.now_ms)
    }
    fn on_subscription_delete(&mut self, _ctx: &mut AgentCtx, ctrl: CtrlId, req_id: RicRequestId) {
        self.subs.remove(ctrl, req_id);
    }
    fn on_control(
        &mut self,
        _ctx: &mut AgentCtx,
        _ctrl: CtrlId,
        _req: &RicControlRequest,
    ) -> Result<Option<Bytes>, Cause> {
        Err(Cause::Ric(RicCause::ActionNotSupported))
    }
    fn on_tick(&mut self, ctx: &mut AgentCtx) {
        if self.subs.is_empty() {
            return;
        }
        let mut due: Vec<SubscriptionInfo> = Vec::new();
        self.subs.for_due(ctx.now_ms, |sub, _| due.push(sub.clone()));
        if due.is_empty() {
            return;
        }
        let shared = self.shared.lock();
        let Some(stats) = shared.latest_mac.clone() else { return };
        for sub in due {
            let tenant = sub.ctrl; // controller i is tenant i
            let Some(tconf) = shared.tenants.get(tenant) else { continue };
            let filtered = MacStatsInd {
                tstamp_ms: stats.tstamp_ms,
                cell_prbs: stats.cell_prbs,
                ues: stats
                    .ues
                    .iter()
                    .filter(|u| (u.plmn_mcc, u.plmn_mnc) == tconf.plmn)
                    .map(|u| {
                        let mut v = *u;
                        let (t, vid) = virt_slice_id(u.slice_id);
                        v.slice_id = if t == tenant { vid } else { u32::MAX };
                        v
                    })
                    .collect(),
            };
            let msg = Bytes::from(filtered.encode(self.sm_codec));
            ctx.send_indication(&sub, None, Bytes::new(), msg);
        }
    }
}

/// Virtual slice control: Appendix-B translation + admission control.
struct VirtSliceFn {
    sm_codec: SmCodec,
    shared: Arc<Mutex<VirtShared>>,
    south: mpsc::UnboundedSender<SliceCtrl>,
    subs: PeriodicSubs,
}

impl VirtSliceFn {
    /// Validates and translates one tenant command into the southbound
    /// commands to apply.  Kept free-standing for unit testing.
    fn translate(
        shared: &mut VirtShared,
        tenant: usize,
        ctrl: &SliceCtrl,
    ) -> Result<Vec<SliceCtrl>, Cause> {
        let sla = shared.tenants[tenant].sla_milli;
        let _ = sla;
        match ctrl {
            SliceCtrl::SetAlgo { algo } => {
                // The virtual network is always NVS; accept a tenant's NVS
                // request as a no-op and reject anything else.
                if matches!(algo, SliceAlgo::Nvs | SliceAlgo::NvsNoSharing) {
                    Ok(vec![])
                } else {
                    Err(Cause::Ric(RicCause::ActionNotSupported))
                }
            }
            SliceCtrl::AddModSlices { slices } => {
                // Admission on the *virtual* representation: Σ ≤ 100 %.
                let mut budget: HashMap<u32, f64> = shared.virt_slices[tenant]
                    .values()
                    .map(|s| (s.id, s.params.share(0)))
                    .collect();
                for s in slices {
                    if s.id > MAX_VIRT_SLICE_ID {
                        return Err(Cause::Ric(RicCause::ControlMessageInvalid));
                    }
                    budget.insert(s.id, s.params.share(0));
                }
                let total: f64 = budget.values().sum();
                if total > 1.0 + 1e-9 {
                    return Err(Cause::Ric(RicCause::FunctionResourceLimit));
                }
                for s in slices {
                    shared.virt_slices[tenant].insert(s.id, s.clone());
                }
                // Re-emit the tenant's full physical batch (sub-slices +
                // shrunken default) so south admission stays balanced.
                Ok(vec![SliceCtrl::AddModSlices { slices: tenant_south_batch(shared, tenant) }])
            }
            SliceCtrl::DelSlices { ids } => {
                for vid in ids {
                    if shared.virt_slices[tenant].remove(vid).is_none() {
                        return Err(Cause::Ric(RicCause::RequestIdUnknown));
                    }
                }
                Ok(vec![
                    SliceCtrl::DelSlices {
                        ids: ids.iter().map(|v| phys_slice_id(tenant, *v)).collect(),
                    },
                    // Return the freed budget to the tenant default.
                    SliceCtrl::AddModSlices { slices: tenant_south_batch(shared, tenant) },
                ])
            }
            SliceCtrl::AssocUeSlice { assoc } => {
                // Verify the UEs belong to the tenant; remap ids.
                let tplmn = shared.tenants[tenant].plmn;
                let mut phys = Vec::new();
                for (rnti, vid) in assoc {
                    let owned = shared.latest_mac.as_ref().is_some_and(|m| {
                        m.ues.iter().any(|u| u.rnti == *rnti && (u.plmn_mcc, u.plmn_mnc) == tplmn)
                    });
                    if !owned {
                        return Err(Cause::Ric(RicCause::RequestIdUnknown));
                    }
                    let pid = if *vid == DEFAULT_VID || shared.virt_slices[tenant].contains_key(vid)
                    {
                        phys_slice_id(tenant, *vid)
                    } else {
                        return Err(Cause::Ric(RicCause::ControlMessageInvalid));
                    };
                    phys.push((*rnti, pid));
                }
                Ok(vec![SliceCtrl::AssocUeSlice { assoc: phys }])
            }
        }
    }
}

impl RanFunction for VirtSliceFn {
    fn id(&self) -> RanFunctionId {
        RanFunctionId::new(rf::SLICE_CTRL)
    }
    fn oid(&self) -> String {
        oid::SLICE_CTRL.to_owned()
    }
    fn definition(&self) -> Bytes {
        Bytes::from(
            RanFuncDef::simple("V-SLICE-CTRL", "virtualized slice control (Appendix B)")
                .encode(self.sm_codec),
        )
    }
    fn on_subscription(
        &mut self,
        ctx: &mut AgentCtx,
        sub: &SubscriptionInfo,
        _req: &RicSubscriptionRequest,
    ) -> Result<(), Cause> {
        self.subs.admit(sub, self.sm_codec, ctx.now_ms)
    }
    fn on_subscription_delete(&mut self, _ctx: &mut AgentCtx, ctrl: CtrlId, req_id: RicRequestId) {
        self.subs.remove(ctrl, req_id);
    }
    fn on_control(
        &mut self,
        _ctx: &mut AgentCtx,
        ctrl: CtrlId,
        req: &RicControlRequest,
    ) -> Result<Option<Bytes>, Cause> {
        let cmd = SliceCtrl::decode(self.sm_codec, &req.message)
            .map_err(|_| Cause::Ric(RicCause::ControlMessageInvalid))?;
        let mut shared = self.shared.lock();
        if ctrl >= shared.tenants.len() {
            return Err(Cause::Ric(RicCause::RequestIdUnknown));
        }
        let south_cmds = Self::translate(&mut shared, ctrl, &cmd)?;
        drop(shared);
        if south_cmds.is_empty() {
            return Ok(Some(Bytes::from_static(b"noop")));
        }
        for c in south_cmds {
            let _ = self.south.send(c);
        }
        Ok(Some(Bytes::from_static(b"ok")))
    }
    fn on_tick(&mut self, ctx: &mut AgentCtx) {
        if self.subs.is_empty() {
            return;
        }
        let mut due: Vec<SubscriptionInfo> = Vec::new();
        self.subs.for_due(ctx.now_ms, |sub, _| due.push(sub.clone()));
        if due.is_empty() {
            return;
        }
        let shared = self.shared.lock();
        let Some(south) = shared.latest_slice.clone() else { return };
        for sub in due {
            let tenant = sub.ctrl;
            let Some(tconf) = shared.tenants.get(tenant) else { continue };
            // Virtualized view: only the tenant's slices, shares scaled to
            // the tenant's 100 % virtual resource.
            let slices: Vec<SliceStatus> = south
                .slices
                .iter()
                .filter(|s| virt_slice_id(s.conf.id).0 == tenant)
                .map(|s| {
                    let (_, vid) = virt_slice_id(s.conf.id);
                    SliceStatus {
                        conf: SliceConf {
                            id: vid,
                            label: s.conf.label.clone(),
                            params: phys_to_virt_params(&s.conf.params, tconf.sla_milli),
                            ue_sched: s.conf.ue_sched,
                        },
                        alloc_prbs: s.alloc_prbs,
                        thr_kbps: s.thr_kbps,
                        num_ues: s.num_ues,
                    }
                })
                .collect();
            let ue_assoc: Vec<(u16, u32)> = south
                .ue_assoc
                .iter()
                .filter(|(_, pid)| virt_slice_id(*pid).0 == tenant)
                .map(|(rnti, pid)| (*rnti, virt_slice_id(*pid).1))
                .collect();
            let ind = SliceStatsInd {
                tstamp_ms: south.tstamp_ms,
                algo: SliceAlgo::Nvs,
                slices,
                ue_assoc,
            };
            let msg = Bytes::from(ind.encode(self.sm_codec));
            ctx.send_indication(&sub, None, Bytes::new(), msg);
        }
    }
}

// ---------------------------------------------------------------------------
// Assembly
// ---------------------------------------------------------------------------

/// A running virtualization controller.
pub struct VirtController {
    /// South server handle (terminates the real agents).
    pub south: ServerHandle,
    /// North agent handle (connected to the tenant controllers).
    pub north: AgentHandle,
}

impl VirtController {
    /// Spawns the virtualization controller.
    ///
    /// * `south_cfg` — where the real agents connect;
    /// * `node` — the E2 node identity exposed to tenants (the abstracted
    ///   topology of Fig. 14b: the whole deployment appears as one node);
    /// * `tenants` — the tenant controllers to connect to, in order
    ///   (tenant *i* becomes controller *i* of the north agent);
    /// * `tick_ms` — `None` for virtual-time experiments.
    pub async fn spawn(
        south_cfg: ServerConfig,
        node: GlobalE2NodeId,
        tenants: Vec<TenantConf>,
        sm_codec: SmCodec,
        stats_period_ms: u32,
        tick_ms: Option<u64>,
    ) -> io::Result<VirtController> {
        let shared = Arc::new(Mutex::new(VirtShared {
            virt_slices: vec![HashMap::new(); tenants.len()],
            tenants,
            latest_mac: None,
            latest_slice: None,
            auto_assoc: std::collections::HashSet::new(),
        }));
        let (south_tx, mut south_rx) = mpsc::unbounded_channel::<SliceCtrl>();

        let south_app = VirtSouthApp {
            sm_codec,
            stats_period_ms,
            shared: shared.clone(),
            target: None,
            kinds: HashMap::new(),
        };
        let codec = south_cfg.codec;
        let south = Server::spawn(south_cfg, vec![Box::new(south_app)]).await?;

        // Bridge: virtualization layer → south iApp.
        let south_handle = south.clone();
        tokio::spawn(async move {
            while let Some(cmd) = south_rx.recv().await {
                south_handle.to_iapp("virt-south", Box::new(SouthCmd::Apply(cmd)));
            }
        });

        // North agent: one connection per tenant controller.
        let ctrl_addrs: Vec<TransportAddr> =
            shared.lock().tenants.iter().map(|t| t.ctrl_addr.clone()).collect();
        let mut acfg = AgentConfig::new(node, ctrl_addrs[0].clone());
        acfg.controllers = ctrl_addrs;
        acfg.codec = codec;
        acfg.tick_ms = tick_ms;
        let functions: Vec<Box<dyn RanFunction>> = vec![
            Box::new(VirtMacFn { sm_codec, shared: shared.clone(), subs: PeriodicSubs::new() }),
            Box::new(VirtSliceFn {
                sm_codec,
                shared: shared.clone(),
                south: south_tx,
                subs: PeriodicSubs::new(),
            }),
        ];
        let north = Agent::spawn(acfg, functions).await?;
        Ok(VirtController { south, north })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_with(tenants: Vec<TenantConf>) -> VirtShared {
        VirtShared {
            virt_slices: vec![HashMap::new(); tenants.len()],
            tenants,
            latest_mac: None,
            latest_slice: None,
            auto_assoc: Default::default(),
        }
    }

    fn tenant(name: &str, mcc: u16, sla: u32) -> TenantConf {
        TenantConf {
            name: name.into(),
            plmn: (mcc, 1),
            sla_milli: sla,
            ctrl_addr: TransportAddr::Mem("unused".into()),
        }
    }

    #[test]
    fn id_mapping_is_bijective_per_tenant() {
        for t in 0..4usize {
            for vid in 0..=MAX_VIRT_SLICE_ID {
                let pid = phys_slice_id(t, vid);
                assert_eq!(virt_slice_id(pid), (t, vid));
            }
        }
        // Disjoint ranges.
        assert_ne!(phys_slice_id(0, 9), phys_slice_id(1, 9));
    }

    #[test]
    fn appendix_b_capacity_scaling() {
        // 66 % virtual of a 50 % SLA = 33 % physical.
        let p = virt_to_phys_params(&SliceParams::NvsCapacity { share_milli: 660 }, 500);
        assert_eq!(p, SliceParams::NvsCapacity { share_milli: 330 });
        // Round trip back to virtual.
        assert_eq!(phys_to_virt_params(&p, 500), SliceParams::NvsCapacity { share_milli: 660 });
    }

    #[test]
    fn appendix_b_rate_scaling_matches_paper_example() {
        // Paper Appendix B: 100 Mbps BS shared 50/50; a tenant's 5 Mbps
        // slice over reference 50 Mbps (10 %) maps to 5 Mbps over
        // reference 100 Mbps (5 % physical).
        let virt = SliceParams::NvsRate { rate_kbps: 5_000, ref_kbps: 50_000 };
        let phys = virt_to_phys_params(&virt, 500);
        assert_eq!(phys, SliceParams::NvsRate { rate_kbps: 5_000, ref_kbps: 100_000 });
        assert!((phys.share(0) - 0.05).abs() < 1e-9);
        assert_eq!(phys_to_virt_params(&phys, 500), virt);
    }

    #[test]
    fn admission_on_virtual_representation() {
        let mut shared = shared_with(vec![tenant("a", 1, 500)]);
        let ok = SliceCtrl::AddModSlices {
            slices: vec![
                SliceConf {
                    id: 0,
                    label: "x".into(),
                    params: SliceParams::NvsCapacity { share_milli: 660 },
                    ue_sched: UeSchedAlgo::PropFair,
                },
                SliceConf {
                    id: 1,
                    label: "y".into(),
                    params: SliceParams::NvsCapacity { share_milli: 340 },
                    ue_sched: UeSchedAlgo::PropFair,
                },
            ],
        };
        let south = VirtSliceFn::translate(&mut shared, 0, &ok).unwrap();
        assert_eq!(south.len(), 1);
        match &south[0] {
            SliceCtrl::AddModSlices { slices } => {
                // Two sub-slices plus the (now empty) tenant default.
                assert_eq!(slices.len(), 3);
                assert_eq!(slices[0].id, phys_slice_id(0, 0));
                // Physical shares: 33 % and 17 % of the cell.
                assert_eq!(slices[0].params, SliceParams::NvsCapacity { share_milli: 330 });
                assert_eq!(slices[1].params, SliceParams::NvsCapacity { share_milli: 170 });
                // Default absorbed the remaining 0 % of the 50 % SLA.
                assert_eq!(slices[2].id, phys_slice_id(0, DEFAULT_VID));
                assert_eq!(slices[2].params, SliceParams::NvsCapacity { share_milli: 0 });
            }
            _ => panic!("wrong translation"),
        }
        // Tenant cannot exceed its virtual 100 %.
        let over = SliceCtrl::AddModSlices {
            slices: vec![SliceConf {
                id: 2,
                label: "z".into(),
                params: SliceParams::NvsCapacity { share_milli: 100 },
                ue_sched: UeSchedAlgo::PropFair,
            }],
        };
        assert_eq!(
            VirtSliceFn::translate(&mut shared, 0, &over),
            Err(Cause::Ric(RicCause::FunctionResourceLimit))
        );
    }

    #[test]
    fn virtual_id_range_enforced() {
        let mut shared = shared_with(vec![tenant("a", 1, 500)]);
        let bad = SliceCtrl::AddModSlices {
            slices: vec![SliceConf {
                id: 10,
                label: "out of range".into(),
                params: SliceParams::NvsCapacity { share_milli: 100 },
                ue_sched: UeSchedAlgo::PropFair,
            }],
        };
        assert_eq!(
            VirtSliceFn::translate(&mut shared, 0, &bad),
            Err(Cause::Ric(RicCause::ControlMessageInvalid))
        );
    }

    #[test]
    fn assoc_requires_tenant_ownership() {
        let mut shared = shared_with(vec![tenant("a", 1, 500), tenant("b", 2, 500)]);
        shared.latest_mac = Some(MacStatsInd {
            tstamp_ms: 0,
            cell_prbs: 50,
            ues: vec![
                flexric_sm::mac::MacUeStats {
                    rnti: 0x10,
                    plmn_mcc: 1,
                    plmn_mnc: 1,
                    ..Default::default()
                },
                flexric_sm::mac::MacUeStats {
                    rnti: 0x20,
                    plmn_mcc: 2,
                    plmn_mnc: 1,
                    ..Default::default()
                },
            ],
        });
        // Tenant 0 may move its own UE to its default slice…
        let ok = SliceCtrl::AssocUeSlice { assoc: vec![(0x10, DEFAULT_VID)] };
        let south = VirtSliceFn::translate(&mut shared, 0, &ok).unwrap();
        assert_eq!(
            south,
            vec![SliceCtrl::AssocUeSlice { assoc: vec![(0x10, phys_slice_id(0, DEFAULT_VID))] }]
        );
        // …but not tenant 1's UE.
        let bad = SliceCtrl::AssocUeSlice { assoc: vec![(0x20, DEFAULT_VID)] };
        assert!(VirtSliceFn::translate(&mut shared, 0, &bad).is_err());
        // Nor an association to a slice it never created.
        let bad2 = SliceCtrl::AssocUeSlice { assoc: vec![(0x10, 3)] };
        assert!(VirtSliceFn::translate(&mut shared, 0, &bad2).is_err());
    }

    #[test]
    fn set_algo_is_noop_or_rejected() {
        let mut shared = shared_with(vec![tenant("a", 1, 500)]);
        assert_eq!(
            VirtSliceFn::translate(&mut shared, 0, &SliceCtrl::SetAlgo { algo: SliceAlgo::Nvs }),
            Ok(vec![])
        );
        assert!(VirtSliceFn::translate(
            &mut shared,
            0,
            &SliceCtrl::SetAlgo { algo: SliceAlgo::Static }
        )
        .is_err());
    }

    #[test]
    fn delete_unknown_slice_rejected() {
        let mut shared = shared_with(vec![tenant("a", 1, 500)]);
        assert!(
            VirtSliceFn::translate(&mut shared, 0, &SliceCtrl::DelSlices { ids: vec![0] }).is_err()
        );
    }
}
