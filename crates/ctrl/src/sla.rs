//! Closed-loop SLA enforcement: an xApp that keeps per-slice service
//! levels by continuously re-solving NVS capacity shares.
//!
//! The loop closes through existing machinery only — it reads per-slice
//! throughput from the monitoring store's `SliceStatsInd` rows and
//! per-bearer delay from the RLC rows ([`crate::monitoring::StatsDb`]),
//! re-solves the share vector with [`crate::sla_solver`], and pushes
//! `SliceCtrl::AddModSlices` through the same SC SM control path the
//! REST slicing controller uses (§6.1.2).  The SM is resolved through
//! the plugin registry, so the iApp touches zero core code and keeps
//! working across SC SM versions.
//!
//! Indications are dispatched to the iApp that owns the subscription —
//! the monitor — so this iApp never sees them directly: it samples the
//! shared store from the server tick (and on [`SlaPoll`], which benches
//! send at a fixed virtual cadence).  Evaluation cadence is keyed on
//! the *virtual* `tstamp_ms` carried by the slice indication, not the
//! wall clock: under the scenario engine a 60 s run executes in
//! milliseconds, and violation-seconds accounting must follow simulated
//! time for open-loop vs closed-loop comparisons to be fair.

use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use tokio::sync::oneshot;

use flexric::server::{AgentId, AgentInfo, CtrlOutcome, IApp, ServerApi};
use flexric_e2ap::{ControlAckRequest, RicRequestId};
use flexric_sm::registry::SmDescriptor;
use flexric_sm::rlc::RlcStatsInd;
use flexric_sm::slice::{SliceCtrl, SliceParams, SliceStatsInd};
use flexric_sm::{oid, SmCodec, SmPayload};

use crate::monitoring::StatsDb;
use crate::sla_solver::{self, SlaTarget, SliceObs, SolverCfg};

/// Configuration of the SLA enforcement iApp.
pub struct SlaConfig {
    /// SM codec for control encoding.
    pub sm_codec: SmCodec,
    /// The service-level objectives to enforce.
    pub targets: Vec<SlaTarget>,
    /// Minimum virtual-time distance between evaluations per agent, ms.
    pub eval_every_ms: u64,
    /// Solver knobs.
    pub solver: SolverCfg,
    /// `true` closes the loop (re-solve + push); `false` runs open-loop:
    /// violations are accounted but shares are left alone — the A/B
    /// baseline of the `fig_sla_scenario` experiment.
    pub enabled: bool,
    /// The monitoring store to read KPIs from (share it with a
    /// [`crate::monitoring::MonitorApp`] configured with `slice: true`).
    pub store: Arc<Mutex<StatsDb>>,
}

impl SlaConfig {
    /// Open-/closed-loop config over `store` with the given targets.
    pub fn new(store: Arc<Mutex<StatsDb>>, targets: Vec<SlaTarget>, enabled: bool) -> Self {
        SlaConfig {
            sm_codec: SmCodec::Flatb,
            targets,
            eval_every_ms: 100,
            solver: SolverCfg::default(),
            enabled,
            store,
        }
    }
}

/// Running totals of the SLA loop, shared with benches and tests.
#[derive(Debug, Default)]
pub struct SlaLedger {
    /// Violation time per slice id, *virtual* milliseconds.
    pub violation_ms: BTreeMap<u32, u64>,
    /// Evaluations performed.
    pub evals: u64,
    /// Share vectors pushed (closed loop only).
    pub pushes: u64,
    /// Control acknowledgements received.
    pub acks: u64,
    /// Control failures (nack / timeout / connection lost).
    pub failures: u64,
}

impl SlaLedger {
    /// Total violation time across slices, virtual milliseconds.
    pub fn total_violation_ms(&self) -> u64 {
        self.violation_ms.values().sum()
    }
}

/// Custom message: force an evaluation pass over every tracked agent and
/// reply with a ledger snapshot.  Benches use it to flush accounting at
/// a deterministic point instead of waiting for the next indication.
pub struct SlaPoll {
    /// Reply channel carrying the ledger snapshot.
    pub reply: oneshot::Sender<SlaLedger>,
}

/// Per-agent loop state.
#[derive(Debug, Default)]
struct AgentSla {
    /// Virtual timestamp of the last evaluated slice indication.
    last_eval_ms: u64,
    /// Request ids of in-flight share pushes.
    inflight: u32,
}

/// Obs series of the SLA loop.
struct SlaObs {
    resolve_ns: flexric_obs::Histogram,
    violations: Mutex<HashMap<u32, flexric_obs::Counter>>,
}

fn obs() -> &'static SlaObs {
    static OBS: std::sync::OnceLock<SlaObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| SlaObs {
        resolve_ns: flexric_obs::histogram(
            "flexric_sla_resolve_ns",
            "Wall time of one SLA share re-solve",
        ),
        violations: Mutex::new(HashMap::new()),
    })
}

fn violation_counter(slice: u32) -> flexric_obs::Counter {
    let mut map = obs().violations.lock();
    map.entry(slice)
        .or_insert_with(|| {
            let label: &'static str = Box::leak(slice.to_string().into_boxed_str());
            flexric_obs::counter_with(
                "flexric_sla_violations_total",
                &[("slice", label)],
                "Virtual milliseconds a slice spent violating its SLA",
            )
        })
        .clone()
}

/// Builds solver observations from the monitoring rows of one agent:
/// throughput and share from the slice indication, delay from the RLC
/// bearers mapped through the UE association table.  Pure — unit-tested
/// without a server.
pub fn observations(stats: &SliceStatsInd, rlc: Option<&RlcStatsInd>) -> Vec<SliceObs> {
    let slice_of: HashMap<u16, u32> = stats.ue_assoc.iter().copied().collect();
    let mut delay_sum: HashMap<u32, (u64, u64)> = HashMap::new(); // slice -> (Σus, n)
    if let Some(r) = rlc {
        for b in &r.bearers {
            if let Some(&sl) = slice_of.get(&b.rnti) {
                let e = delay_sum.entry(sl).or_default();
                e.0 += b.sojourn_us_avg;
                e.1 += 1;
            }
        }
    }
    stats
        .slices
        .iter()
        .filter_map(|s| {
            let SliceParams::NvsCapacity { share_milli } = s.conf.params else { return None };
            let delay_ms = delay_sum
                .get(&s.conf.id)
                .map(|&(us, n)| us as f64 / n.max(1) as f64 / 1000.0)
                .unwrap_or(0.0);
            Some(SliceObs {
                slice: s.conf.id,
                share_milli,
                thr_kbps: s.thr_kbps as f64,
                delay_ms,
                num_ues: s.num_ues,
            })
        })
        .collect()
}

/// The SLA enforcement iApp.
pub struct SlaApp {
    cfg: SlaConfig,
    desc: Arc<SmDescriptor>,
    agents: HashMap<AgentId, AgentSla>,
    ledger: Arc<Mutex<SlaLedger>>,
}

impl SlaApp {
    /// Creates the iApp; the returned handle reads the running totals.
    pub fn new(cfg: SlaConfig) -> (Self, Arc<Mutex<SlaLedger>>) {
        let desc =
            flexric_sm::registry::global().latest(oid::SLICE_CTRL).expect("bundled SM descriptor");
        let ledger = Arc::new(Mutex::new(SlaLedger::default()));
        (SlaApp { cfg, desc, agents: HashMap::new(), ledger: ledger.clone() }, ledger)
    }

    /// One evaluation pass for `agent` if its slice row advanced far
    /// enough in virtual time.
    fn evaluate(&mut self, api: &mut ServerApi, agent: AgentId) {
        let (stats, rlc) = {
            let db = self.cfg.store.lock();
            let Some(any) = db.snapshot_any(agent, oid::SLICE_CTRL) else { return };
            let Ok(stats) = any.downcast::<SliceStatsInd>() else { return };
            (*stats, db.rlc(agent))
        };
        let st = self.agents.entry(agent).or_default();
        if stats.tstamp_ms < st.last_eval_ms + self.cfg.eval_every_ms {
            return;
        }
        let covered_ms = if st.last_eval_ms == 0 {
            self.cfg.eval_every_ms
        } else {
            stats.tstamp_ms - st.last_eval_ms
        };
        st.last_eval_ms = stats.tstamp_ms;

        let observed = observations(&stats, rlc.as_ref());
        {
            let mut led = self.ledger.lock();
            led.evals += 1;
            for t in &self.cfg.targets {
                if let Some(o) = observed.iter().find(|o| o.slice == t.slice) {
                    if sla_solver::violated(t, o) {
                        *led.violation_ms.entry(t.slice).or_default() += covered_ms;
                        violation_counter(t.slice).add(covered_ms);
                    }
                }
            }
        }
        if !self.cfg.enabled {
            return;
        }

        let start = std::time::Instant::now();
        let solved = sla_solver::resolve(&self.cfg.targets, &observed, &self.cfg.solver);
        obs().resolve_ns.record(start.elapsed().as_nanos() as u64);
        let Some(shares) = solved else { return };

        // Re-issue the observed configs with the new shares through the
        // registry-resolved SC SM.
        let Some(rf_id) = api
            .randb()
            .agent(agent)
            .and_then(|a| a.function_by_oid_compat(&self.desc.oid, self.desc.version.into()))
            .map(|f| f.id)
        else {
            return;
        };
        let slices = stats
            .slices
            .iter()
            .filter_map(|s| {
                let (_, share) = shares.iter().find(|&&(id, _)| id == s.conf.id)?;
                let mut conf = s.conf.clone();
                conf.params = SliceParams::NvsCapacity { share_milli: *share };
                Some(conf)
            })
            .collect::<Vec<_>>();
        if slices.is_empty() {
            return;
        }
        let msg = Bytes::from(SliceCtrl::AddModSlices { slices }.encode(self.cfg.sm_codec));
        let _req: RicRequestId =
            api.control(agent, rf_id, Bytes::new(), msg, Some(ControlAckRequest::Ack));
        let st = self.agents.entry(agent).or_default();
        st.inflight += 1;
        self.ledger.lock().pushes += 1;
    }
}

impl IApp for SlaApp {
    fn name(&self) -> &str {
        "sla"
    }

    fn on_agent_connected(&mut self, _api: &mut ServerApi, agent: &AgentInfo) {
        // Monitoring owns the subscriptions; we only track loop state.
        self.agents.entry(agent.id).or_default();
    }

    fn on_agent_disconnected(&mut self, _api: &mut ServerApi, agent: AgentId) {
        // Keep `last_eval_ms` across outages: the agent resumes with the
        // same virtual clock, and replayed subscriptions refill the
        // store — accounting continues where it stopped.
        if let Some(st) = self.agents.get_mut(&agent) {
            st.inflight = 0;
        }
    }

    fn on_tick(&mut self, api: &mut ServerApi, _now_ms: u64) {
        // Indications route to the subscription's owner (the monitor),
        // so the loop samples the shared store here; the virtual-time
        // cadence check in `evaluate` sets the effective rate.
        let ids: Vec<AgentId> = self.agents.keys().copied().collect();
        for id in ids {
            self.evaluate(api, id);
        }
    }

    fn on_control_outcome(&mut self, _api: &mut ServerApi, agent: AgentId, out: &CtrlOutcome) {
        let ok = matches!(out, CtrlOutcome::Ack(_));
        let mut led = self.ledger.lock();
        if ok {
            led.acks += 1;
        } else {
            led.failures += 1;
        }
        drop(led);
        if let Some(st) = self.agents.get_mut(&agent) {
            st.inflight = st.inflight.saturating_sub(1);
        }
    }

    fn on_custom(&mut self, api: &mut ServerApi, msg: Box<dyn Any + Send>) {
        let Ok(poll) = msg.downcast::<SlaPoll>() else { return };
        let ids: Vec<AgentId> = self.agents.keys().copied().collect();
        for id in ids {
            self.evaluate(api, id);
        }
        let snap = {
            let led = self.ledger.lock();
            SlaLedger {
                violation_ms: led.violation_ms.clone(),
                evals: led.evals,
                pushes: led.pushes,
                acks: led.acks,
                failures: led.failures,
            }
        };
        let _ = poll.reply.send(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexric_sm::rlc::RlcBearerStats;
    use flexric_sm::slice::{SliceAlgo, SliceConf, SliceStatus, UeSchedAlgo};

    fn stats() -> SliceStatsInd {
        let mk = |id: u32, share: u32, thr: u64, ues: u32| SliceStatus {
            conf: SliceConf {
                id,
                label: format!("s{id}"),
                params: SliceParams::NvsCapacity { share_milli: share },
                ue_sched: UeSchedAlgo::PropFair,
            },
            alloc_prbs: 50,
            thr_kbps: thr,
            num_ues: ues,
        };
        SliceStatsInd {
            tstamp_ms: 5_000,
            algo: SliceAlgo::Nvs,
            slices: vec![mk(0, 150, 400, 2), mk(1, 850, 30_000, 1)],
            ue_assoc: vec![(1, 0), (2, 0), (3, 1)],
        }
    }

    #[test]
    fn observations_join_slice_and_rlc_rows() {
        let rlc = RlcStatsInd {
            tstamp_ms: 5_000,
            bearers: vec![
                RlcBearerStats { rnti: 1, drb_id: 1, sojourn_us_avg: 30_000, ..Default::default() },
                RlcBearerStats { rnti: 2, drb_id: 1, sojourn_us_avg: 10_000, ..Default::default() },
                RlcBearerStats { rnti: 3, drb_id: 1, sojourn_us_avg: 2_000, ..Default::default() },
            ],
        };
        let obs = observations(&stats(), Some(&rlc));
        assert_eq!(obs.len(), 2);
        let s0 = obs.iter().find(|o| o.slice == 0).unwrap();
        assert_eq!(s0.share_milli, 150);
        assert!((s0.delay_ms - 20.0).abs() < 1e-9, "avg of 30ms and 10ms");
        assert_eq!(s0.num_ues, 2);
        let s1 = obs.iter().find(|o| o.slice == 1).unwrap();
        assert!((s1.delay_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn observations_without_rlc_default_delay_zero() {
        let obs = observations(&stats(), None);
        assert!(obs.iter().all(|o| o.delay_ms == 0.0));
    }

    #[test]
    fn solver_reallocates_from_observed_rows() {
        let targets =
            vec![SlaTarget { slice: 0, thr_kbps_min: 2_000.0, delay_ms_max: 0.0, floor_milli: 50 }];
        let obs = observations(&stats(), None);
        let next = sla_solver::resolve(&targets, &obs, &SolverCfg::default())
            .expect("slice 0 misses its floor");
        assert!(next.iter().find(|&&(id, _)| id == 0).unwrap().1 > 150);
    }
}
