//! The flow-based traffic controller (paper §6.1.1, Table 3).
//!
//! Components, mirroring the paper's Table 3: the xApp is a custom program
//! speaking the broker protocol (libhiredis in the paper) and REST
//! (libcurl); the communication interface is the message broker for
//! statistics push plus REST POST for commands; the iApps are an RLC/TC
//! statistics forwarder and a TC SM manager relaying commands.
//!
//! [`BloatGuardXapp`] is the paper's example xApp: it watches the sojourn
//! time of the low-latency flow's bearer and, once it exceeds a limit,
//! performs the three actions of §6.1.1 — create a second FIFO queue,
//! install a 5-tuple filter segregating the low-latency flow, and load the
//! 5G-BDP pacer (the scheduler stays round-robin).

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use tokio::sync::oneshot;

use flexric::server::{
    AgentId, AgentInfo, CtrlOutcome, IApp, IndicationRef, ServerApi, ServerHandle,
};
use flexric_e2ap::{ControlAckRequest, RicRequestId};
use flexric_sm::registry::SmDescriptor;
use flexric_sm::tc::{FiveTupleRule, PacerConf, QueueKind, TcCtrl, TcStatsInd};
use flexric_sm::{oid, rlc::RlcStatsInd, ReportTrigger, SmCodec, SmPayload};
use flexric_xapp::broker::BrokerClient;
use flexric_xapp::http::{HttpClient, HttpServer, Request, Response, Router};

use crate::ranfun::BearerAddr;
use crate::slicing::CtrlReply;

/// Broker channel carrying RLC statistics (JSON).
pub const CHAN_RLC: &str = "stats.rlc";
/// Broker channel carrying TC statistics (JSON).
pub const CHAN_TC: &str = "stats.tc";

/// JSON form of an RLC bearer snapshot pushed on the broker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RlcStatsDto {
    /// Source agent.
    pub agent: AgentId,
    /// Snapshot time (ms).
    pub tstamp_ms: u64,
    /// UE.
    pub rnti: u16,
    /// Bearer.
    pub drb: u8,
    /// Buffer occupancy in bytes.
    pub buffer_bytes: u64,
    /// Average sojourn (µs).
    pub sojourn_us_avg: u64,
    /// Maximum sojourn (µs).
    pub sojourn_us_max: u64,
    /// Drops in the window.
    pub dropped_pdus: u64,
}

/// JSON form of a TC snapshot pushed on the broker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TcStatsDto {
    /// Source agent.
    pub agent: AgentId,
    /// Snapshot time (ms).
    pub tstamp_ms: u64,
    /// UE.
    pub rnti: u16,
    /// Bearer.
    pub drb: u8,
    /// Per-queue `(id, backlog bytes, avg sojourn µs, drops)`.
    pub queues: Vec<(u32, u64, u64, u64)>,
    /// Pacer release rate (kbit/s).
    pub pacer_rate_kbps: u64,
}

// ---------------------------------------------------------------------------
// iApp 1: statistics forwarder (RLC + TC → broker)
// ---------------------------------------------------------------------------

/// Forwards RLC and TC statistics to the message broker, as the paper's
/// "RLC, TC stats forwarder (Redis)" iApp.
pub struct StatsForwarderApp {
    sm_codec: SmCodec,
    period_ms: u32,
    broker_addr: String,
    publisher: Arc<tokio::sync::Mutex<Option<BrokerClient>>>,
    /// The SM descriptor behind each of our request ids.
    subs: HashMap<(AgentId, RicRequestId), Arc<SmDescriptor>>,
    /// Bearers to watch with the TC SM, configured by the experiment.
    tc_watch: Vec<BearerAddr>,
}

impl StatsForwarderApp {
    /// Creates the forwarder; `tc_watch` lists bearers whose TC stats to
    /// subscribe to.
    pub fn new(
        sm_codec: SmCodec,
        period_ms: u32,
        broker_addr: String,
        tc_watch: Vec<BearerAddr>,
    ) -> Self {
        StatsForwarderApp {
            sm_codec,
            period_ms,
            broker_addr,
            publisher: Arc::new(tokio::sync::Mutex::new(None)),
            subs: HashMap::new(),
            tc_watch,
        }
    }

    fn publish(&self, channel: &'static str, payload: Vec<u8>) {
        let publisher = self.publisher.clone();
        let addr = self.broker_addr.clone();
        tokio::spawn(async move {
            let mut guard = publisher.lock().await;
            if guard.is_none() {
                *guard = BrokerClient::connect(&addr).await.ok();
            }
            if let Some(client) = guard.as_mut() {
                if client.publish(channel, &payload).await.is_err() {
                    *guard = None; // reconnect next time
                }
            }
        });
    }
}

impl IApp for StatsForwarderApp {
    fn name(&self) -> &str {
        "stats-forwarder"
    }

    fn on_agent_connected(&mut self, api: &mut ServerApi, agent: &AgentInfo) {
        let registry = flexric_sm::registry::global();
        let trigger = Bytes::from(ReportTrigger::every_ms(self.period_ms).encode(self.sm_codec));
        if let Some(desc) = registry.latest(oid::RLC_STATS) {
            if let Some(f) = agent.function_by_oid_compat(&desc.oid, desc.version.into()) {
                let req = api.subscribe_report(agent.id, f.id, trigger.clone());
                self.subs.insert((agent.id, req), desc);
            }
        }
        if let Some(desc) = registry.latest(oid::TC_CTRL) {
            if let Some(f) = agent.function_by_oid_compat(&desc.oid, desc.version.into()) {
                for bearer in &self.tc_watch {
                    let req = api.subscribe(
                        agent.id,
                        f.id,
                        trigger.clone(),
                        vec![flexric_e2ap::RicActionToBeSetup {
                            id: flexric_e2ap::RicActionId(0),
                            action_type: flexric_e2ap::RicActionType::Report,
                            definition: Some(bearer.encode()),
                            subsequent: None,
                        }],
                    );
                    self.subs.insert((agent.id, req), desc.clone());
                }
            }
        }
    }

    fn on_indication(&mut self, _api: &mut ServerApi, agent: AgentId, ind: &IndicationRef) {
        let Ok((_, msg)) = ind.sm_payload() else { return };
        let Some(desc) = self.subs.get(&(agent, ind.req_id())) else { return };
        // Decode through the subscription's registry vtable; the concrete
        // type picks the broker channel.
        let Ok(any) = desc.decode_indication(self.sm_codec, msg) else { return };
        if let Some(stats) = any.downcast_ref::<RlcStatsInd>() {
            for b in &stats.bearers {
                let dto = RlcStatsDto {
                    agent,
                    tstamp_ms: stats.tstamp_ms,
                    rnti: b.rnti,
                    drb: b.drb_id,
                    buffer_bytes: b.buffer_bytes,
                    sojourn_us_avg: b.sojourn_us_avg,
                    sojourn_us_max: b.sojourn_us_max,
                    dropped_pdus: b.dropped_pdus,
                };
                if let Ok(json) = serde_json::to_vec(&dto) {
                    self.publish(CHAN_RLC, json);
                }
            }
        } else if let Some(stats) = any.downcast_ref::<TcStatsInd>() {
            let dto = TcStatsDto {
                agent,
                tstamp_ms: stats.tstamp_ms,
                rnti: stats.rnti,
                drb: stats.drb_id,
                queues: stats
                    .queues
                    .iter()
                    .map(|q| (q.id, q.backlog_bytes, q.sojourn_us_avg, q.drops))
                    .collect(),
                pacer_rate_kbps: stats.pacer_rate_kbps,
            };
            if let Ok(json) = serde_json::to_vec(&dto) {
                self.publish(CHAN_TC, json);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// iApp 2: TC SM manager (REST command relay)
// ---------------------------------------------------------------------------

/// Custom message: relay a TC command to a bearer.
pub struct ApplyTcCtrl {
    /// Target agent.
    pub agent: AgentId,
    /// Target bearer.
    pub bearer: BearerAddr,
    /// The command.
    pub ctrl: TcCtrl,
    /// Reply channel.
    pub reply: oneshot::Sender<CtrlReply>,
}

/// Relays TC SM commands arriving over REST into control requests.
pub struct TcManagerApp {
    sm_codec: SmCodec,
    pending: HashMap<(AgentId, RicRequestId), oneshot::Sender<CtrlReply>>,
}

impl TcManagerApp {
    /// Creates the manager.
    pub fn new(sm_codec: SmCodec) -> Self {
        TcManagerApp { sm_codec, pending: HashMap::new() }
    }
}

impl IApp for TcManagerApp {
    fn name(&self) -> &str {
        "tc-manager"
    }

    fn on_control_outcome(&mut self, _api: &mut ServerApi, agent: AgentId, out: &CtrlOutcome) {
        let (req_id, reply) = match out {
            CtrlOutcome::Ack(ack) => (ack.req_id, CtrlReply { ok: true, detail: String::new() }),
            CtrlOutcome::Failed(f) => {
                (f.req_id, CtrlReply { ok: false, detail: format!("{:?}", f.cause) })
            }
            CtrlOutcome::TimedOut { req_id, .. } => {
                (*req_id, CtrlReply { ok: false, detail: "control timed out".into() })
            }
            CtrlOutcome::ConnectionLost { req_id, .. } => {
                (*req_id, CtrlReply { ok: false, detail: "agent connection lost".into() })
            }
        };
        if let Some(tx) = self.pending.remove(&(agent, req_id)) {
            let _ = tx.send(reply);
        }
    }

    fn on_custom(&mut self, api: &mut ServerApi, msg: Box<dyn Any + Send>) {
        let Ok(cmd) = msg.downcast::<ApplyTcCtrl>() else { return };
        let ApplyTcCtrl { agent, bearer, ctrl, reply } = *cmd;
        let want = flexric_sm::registry::global()
            .latest(oid::TC_CTRL)
            .map(|d| d.version.into())
            .unwrap_or(flexric_e2ap::FnVersion::V1);
        let Some(rf_id) = api
            .randb()
            .agent(agent)
            .and_then(|a| a.function_by_oid_compat(oid::TC_CTRL, want))
            .map(|f| f.id)
        else {
            let _ =
                reply.send(CtrlReply { ok: false, detail: format!("agent {agent} has no TC SM") });
            return;
        };
        let msg = Bytes::from(ctrl.encode(self.sm_codec));
        let req_id = api.control(agent, rf_id, bearer.encode(), msg, Some(ControlAckRequest::Ack));
        self.pending.insert((agent, req_id), reply);
    }
}

// ---------------------------------------------------------------------------
// REST northbound
// ---------------------------------------------------------------------------

/// POST /tc/cmd body.
#[derive(Debug, Serialize, Deserialize)]
pub struct TcCmdReq {
    /// Target agent.
    pub agent: AgentId,
    /// Target UE.
    pub rnti: u16,
    /// Target bearer.
    pub drb: u8,
    /// The command.
    pub cmd: TcCmdDto,
}

/// JSON form of TC commands.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum TcCmdDto {
    /// Add a FIFO queue.
    AddQueue {
        /// Queue id.
        id: u32,
        /// Capacity in bytes (0 = unbounded).
        #[serde(default)]
        cap_bytes: u32,
    },
    /// Delete a queue.
    DelQueue {
        /// Queue id.
        id: u32,
    },
    /// Add a 5-tuple rule.
    AddRule {
        /// Rule id.
        id: u32,
        /// Target queue.
        queue: u32,
        /// Destination port match.
        #[serde(default)]
        dst_port: Option<u16>,
        /// Protocol match.
        #[serde(default)]
        proto: Option<u8>,
        /// Source IP match.
        #[serde(default)]
        src_ip: Option<u32>,
        /// Destination IP match.
        #[serde(default)]
        dst_ip: Option<u32>,
        /// Source port match.
        #[serde(default)]
        src_port: Option<u16>,
    },
    /// Delete a rule.
    DelRule {
        /// Rule id.
        id: u32,
    },
    /// Load the 5G-BDP pacer.
    SetBdpPacer {
        /// Target RLC sojourn (µs).
        target_delay_us: u32,
    },
    /// Remove the pacer (transparent mode).
    ClearPacer,
}

impl TcCmdDto {
    /// Converts to the SM representation.
    pub fn to_sm(&self) -> TcCtrl {
        match self {
            TcCmdDto::AddQueue { id, cap_bytes } => {
                TcCtrl::AddQueue { id: *id, kind: QueueKind::Fifo { cap_bytes: *cap_bytes } }
            }
            TcCmdDto::DelQueue { id } => TcCtrl::DelQueue { id: *id },
            TcCmdDto::AddRule { id, queue, dst_port, proto, src_ip, dst_ip, src_port } => {
                TcCtrl::AddRule {
                    rule: FiveTupleRule {
                        id: *id,
                        src_ip: *src_ip,
                        dst_ip: *dst_ip,
                        src_port: *src_port,
                        dst_port: *dst_port,
                        proto: *proto,
                    },
                    queue: *queue,
                    precedence: *id,
                }
            }
            TcCmdDto::DelRule { id } => TcCtrl::DelRule { rule_id: *id },
            TcCmdDto::SetBdpPacer { target_delay_us } => {
                TcCtrl::SetPacer { pacer: PacerConf::Bdp { target_delay_us: *target_delay_us } }
            }
            TcCmdDto::ClearPacer => TcCtrl::SetPacer { pacer: PacerConf::None },
        }
    }
}

/// Binds the TC controller's REST northbound (`POST /tc/cmd`, plus
/// `GET /sm/registry` from [`flexric_xapp::introspect`]).
pub async fn spawn_rest(listen: &str, server: ServerHandle) -> std::io::Result<HttpServer> {
    let router = Router::new().route("POST", "/tc/cmd", move |req: Request| {
        let server = server.clone();
        async move {
            let Ok(body) = req.json::<TcCmdReq>() else {
                return Response::error(400, "bad body");
            };
            let (tx, rx) = oneshot::channel();
            server.to_iapp(
                "tc-manager",
                Box::new(ApplyTcCtrl {
                    agent: body.agent,
                    bearer: BearerAddr { rnti: body.rnti, drb: body.drb },
                    ctrl: body.cmd.to_sm(),
                    reply: tx,
                }),
            );
            match tokio::time::timeout(std::time::Duration::from_secs(5), rx).await {
                Ok(Ok(reply)) if reply.ok => Response::json(&reply),
                Ok(Ok(reply)) => Response { status: 400, ..Response::json(&reply) },
                _ => Response::error(500, "control relay timed out"),
            }
        }
    });
    HttpServer::spawn(listen, flexric_xapp::introspect::mount(router)).await
}

// ---------------------------------------------------------------------------
// The example xApp
// ---------------------------------------------------------------------------

/// Configuration of the bufferbloat-guard xApp.
#[derive(Debug, Clone)]
pub struct BloatGuardConfig {
    /// Broker address to subscribe to.
    pub broker_addr: String,
    /// REST address of the TC controller.
    pub rest_addr: String,
    /// Sojourn limit (µs) above which the xApp intervenes.
    pub sojourn_limit_us: u64,
    /// The low-latency flow to protect: destination port.
    pub protect_dst_port: u16,
    /// The low-latency flow's protocol.
    pub protect_proto: u8,
    /// BDP pacer target (µs).
    pub pacer_target_us: u32,
}

/// Runs the xApp until it has intervened once; returns the bearer it
/// reconfigured.  The logic is exactly the paper's: on sustained sojourn
/// above the limit, create queue 1, install the 5-tuple filter for the
/// low-latency flow, and load the 5G-BDP pacer.
pub async fn run_bloat_guard(cfg: BloatGuardConfig) -> std::io::Result<(AgentId, u16, u8)> {
    let mut sub = BrokerClient::connect(&cfg.broker_addr).await?;
    sub.subscribe(CHAN_RLC).await?;
    loop {
        let Some((_chan, msg)) = sub.recv().await else {
            return Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "broker closed"));
        };
        let Ok(dto) = serde_json::from_slice::<RlcStatsDto>(&msg) else { continue };
        if dto.sojourn_us_avg < cfg.sojourn_limit_us {
            continue;
        }
        // Intervene: the three actions of §6.1.1.
        let cmds = [
            TcCmdDto::AddQueue { id: 1, cap_bytes: 0 },
            TcCmdDto::AddRule {
                id: 1,
                queue: 1,
                dst_port: Some(cfg.protect_dst_port),
                proto: Some(cfg.protect_proto),
                src_ip: None,
                dst_ip: None,
                src_port: None,
            },
            TcCmdDto::SetBdpPacer { target_delay_us: cfg.pacer_target_us },
        ];
        for cmd in cmds {
            let body = TcCmdReq { agent: dto.agent, rnti: dto.rnti, drb: dto.drb, cmd };
            let (status, resp) = HttpClient::post_json(&cfg.rest_addr, "/tc/cmd", &body).await?;
            if status != 200 {
                return Err(std::io::Error::other(format!(
                    "tc command rejected: {status} {}",
                    String::from_utf8_lossy(&resp)
                )));
            }
        }
        return Ok((dto.agent, dto.rnti, dto.drb));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tc_cmd_dto_conversion() {
        assert_eq!(
            TcCmdDto::AddQueue { id: 1, cap_bytes: 0 }.to_sm(),
            TcCtrl::AddQueue { id: 1, kind: QueueKind::Fifo { cap_bytes: 0 } }
        );
        assert_eq!(
            TcCmdDto::SetBdpPacer { target_delay_us: 10_000 }.to_sm(),
            TcCtrl::SetPacer { pacer: PacerConf::Bdp { target_delay_us: 10_000 } }
        );
        assert_eq!(TcCmdDto::ClearPacer.to_sm(), TcCtrl::SetPacer { pacer: PacerConf::None });
        let rule = TcCmdDto::AddRule {
            id: 7,
            queue: 1,
            dst_port: Some(5004),
            proto: Some(17),
            src_ip: None,
            dst_ip: None,
            src_port: None,
        }
        .to_sm();
        match rule {
            TcCtrl::AddRule { rule, queue, .. } => {
                assert_eq!(queue, 1);
                assert_eq!(rule.dst_port, Some(5004));
                assert_eq!(rule.proto, Some(17));
                assert_eq!(rule.src_ip, None);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn dto_json_shapes() {
        let req: TcCmdReq = serde_json::from_str(
            r#"{"agent":0,"rnti":17921,"drb":1,
                "cmd":{"op":"add_rule","id":1,"queue":1,"dst_port":5004,"proto":17}}"#,
        )
        .unwrap();
        assert_eq!(req.rnti, 17921);
        match req.cmd {
            TcCmdDto::AddRule { queue, .. } => assert_eq!(queue, 1),
            _ => panic!("wrong op"),
        }
    }
}
