//! The RAT-unaware slicing controller (paper §6.1.2, Table 4).
//!
//! Components, mirroring the paper's Table 4: the xApp is any HTTP client
//! (`curl` in the paper); the communication interface is REST (GET/POST);
//! the iApps are an internal DB for RAN statistics and an SC SM manager
//! relaying REST commands; the support is the server library.
//!
//! The xApp is oblivious of the RAT: the same REST calls drive 4G and 5G
//! cells, which is what lets the recursive experiment (§6.2) reuse this
//! controller over an LTE deployment.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use tokio::sync::oneshot;

use flexric::server::{
    AgentId, AgentInfo, CtrlOutcome, IApp, IndicationRef, ServerApi, ServerHandle,
};
use flexric_e2ap::{ControlAckRequest, RicRequestId};
use flexric_sm::registry::SmDescriptor;
use flexric_sm::slice::{SliceAlgo, SliceConf, SliceCtrl, SliceParams, SliceStatsInd, UeSchedAlgo};
use flexric_sm::{oid, ReportTrigger, SmCodec, SmPayload};
use flexric_xapp::http::{HttpServer, Request, Response, Router};
use flexric_xapp::introspect;

// ---------------------------------------------------------------------------
// REST DTOs
// ---------------------------------------------------------------------------

/// JSON form of slice parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum SliceParamsDto {
    /// NVS capacity slice.
    NvsCapacity {
        /// Share in percent (0–100).
        share_pct: f64,
    },
    /// NVS rate slice.
    NvsRate {
        /// Reserved rate, Mbit/s.
        rate_mbps: f64,
        /// Reference rate, Mbit/s.
        ref_mbps: f64,
    },
    /// Static PRB range.
    StaticRb {
        /// First PRB.
        lo: u16,
        /// Last PRB.
        hi: u16,
    },
}

impl SliceParamsDto {
    /// Converts to the SM representation.
    pub fn to_sm(&self) -> SliceParams {
        match self {
            SliceParamsDto::NvsCapacity { share_pct } => SliceParams::NvsCapacity {
                share_milli: (share_pct * 10.0).round().clamp(0.0, 1000.0) as u32,
            },
            SliceParamsDto::NvsRate { rate_mbps, ref_mbps } => SliceParams::NvsRate {
                rate_kbps: (rate_mbps * 1000.0).round().max(0.0) as u32,
                ref_kbps: (ref_mbps * 1000.0).round().max(0.0) as u32,
            },
            SliceParamsDto::StaticRb { lo, hi } => SliceParams::StaticRb { lo: *lo, hi: *hi },
        }
    }

    /// Converts from the SM representation.
    pub fn from_sm(p: &SliceParams) -> Self {
        match p {
            SliceParams::NvsCapacity { share_milli } => {
                SliceParamsDto::NvsCapacity { share_pct: *share_milli as f64 / 10.0 }
            }
            SliceParams::NvsRate { rate_kbps, ref_kbps } => SliceParamsDto::NvsRate {
                rate_mbps: *rate_kbps as f64 / 1000.0,
                ref_mbps: *ref_kbps as f64 / 1000.0,
            },
            SliceParams::StaticRb { lo, hi } => SliceParamsDto::StaticRb { lo: *lo, hi: *hi },
        }
    }
}

/// JSON form of one slice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceDto {
    /// Slice id.
    pub id: u32,
    /// Label.
    #[serde(default)]
    pub label: String,
    /// Parameters.
    pub params: SliceParamsDto,
    /// UE scheduler (`"rr"`, `"pf"`, `"mt"`).
    #[serde(default = "default_sched")]
    pub sched: String,
}

fn default_sched() -> String {
    "pf".to_owned()
}

impl SliceDto {
    /// Converts to the SM representation.
    pub fn to_sm(&self) -> SliceConf {
        SliceConf {
            id: self.id,
            label: self.label.clone(),
            params: self.params.to_sm(),
            ue_sched: match self.sched.as_str() {
                "rr" => UeSchedAlgo::RoundRobin,
                "mt" => UeSchedAlgo::MaxThroughput,
                _ => UeSchedAlgo::PropFair,
            },
        }
    }
}

/// POST /slice/algo body.
#[derive(Debug, Serialize, Deserialize)]
pub struct AlgoReq {
    /// Target agent.
    pub agent: AgentId,
    /// `"none"`, `"static"`, `"nvs"` or `"nvs_nosharing"`.
    pub algo: String,
}

/// POST /slice/conf body.
#[derive(Debug, Serialize, Deserialize)]
pub struct ConfReq {
    /// Target agent.
    pub agent: AgentId,
    /// Slices to add/modify.
    pub slices: Vec<SliceDto>,
}

/// POST /slice/assoc body.
#[derive(Debug, Serialize, Deserialize)]
pub struct AssocReq {
    /// Target agent.
    pub agent: AgentId,
    /// `(rnti, slice id)` pairs.
    pub assoc: Vec<(u16, u32)>,
}

/// POST /slice/del body.
#[derive(Debug, Serialize, Deserialize)]
pub struct DelReq {
    /// Target agent.
    pub agent: AgentId,
    /// Slice ids to delete.
    pub ids: Vec<u32>,
}

/// Outcome of a relayed control command.
#[derive(Debug, Serialize, Deserialize)]
pub struct CtrlReply {
    /// Whether the agent acknowledged.
    pub ok: bool,
    /// Failure detail, if any.
    #[serde(default)]
    pub detail: String,
}

// ---------------------------------------------------------------------------
// The SC SM manager iApp
// ---------------------------------------------------------------------------

/// Custom message: relay a slice-control command and reply when the agent
/// acknowledges.
pub struct ApplySliceCtrl {
    /// Target agent.
    pub agent: AgentId,
    /// The command.
    pub ctrl: SliceCtrl,
    /// Reply channel.
    pub reply: oneshot::Sender<CtrlReply>,
}

/// The SC SM manager iApp: subscribes to slice statistics on every agent
/// exposing the SC SM and relays commands from the REST northbound.
pub struct SliceApp {
    sm_codec: SmCodec,
    stats_period_ms: u32,
    /// The SC SM's registry descriptor: version-aware function lookup and
    /// indication decoding go through it.
    desc: Arc<SmDescriptor>,
    latest: Arc<Mutex<HashMap<AgentId, SliceStatsInd>>>,
    pending: HashMap<(AgentId, RicRequestId), oneshot::Sender<CtrlReply>>,
}

impl SliceApp {
    /// Creates the iApp; the returned handle reads the latest stats.
    pub fn new(
        sm_codec: SmCodec,
        stats_period_ms: u32,
    ) -> (Self, Arc<Mutex<HashMap<AgentId, SliceStatsInd>>>) {
        let latest = Arc::new(Mutex::new(HashMap::new()));
        let desc =
            flexric_sm::registry::global().latest(oid::SLICE_CTRL).expect("bundled SM descriptor");
        (
            SliceApp {
                sm_codec,
                stats_period_ms,
                desc,
                latest: latest.clone(),
                pending: HashMap::new(),
            },
            latest,
        )
    }
}

impl IApp for SliceApp {
    fn name(&self) -> &str {
        "slice"
    }

    fn on_agent_connected(&mut self, api: &mut ServerApi, agent: &AgentInfo) {
        if let Some(f) = agent.function_by_oid_compat(&self.desc.oid, self.desc.version.into()) {
            let trigger =
                Bytes::from(ReportTrigger::every_ms(self.stats_period_ms).encode(self.sm_codec));
            api.subscribe_report(agent.id, f.id, trigger);
        }
    }

    fn on_agent_disconnected(&mut self, _api: &mut ServerApi, agent: AgentId) {
        self.latest.lock().remove(&agent);
        self.pending.retain(|(a, _), _| *a != agent);
    }

    fn on_indication(&mut self, _api: &mut ServerApi, agent: AgentId, ind: &IndicationRef) {
        let Ok((_, msg)) = ind.sm_payload() else { return };
        // Decode through the registry vtable and downcast to the stats
        // type this iApp renders.
        let Ok(any) = self.desc.decode_indication(self.sm_codec, msg) else { return };
        if let Ok(stats) = any.downcast::<SliceStatsInd>() {
            self.latest.lock().insert(agent, *stats);
        }
    }

    fn on_control_outcome(&mut self, _api: &mut ServerApi, agent: AgentId, out: &CtrlOutcome) {
        let (req_id, reply) = match out {
            CtrlOutcome::Ack(ack) => (ack.req_id, CtrlReply { ok: true, detail: String::new() }),
            CtrlOutcome::Failed(f) => {
                (f.req_id, CtrlReply { ok: false, detail: format!("{:?}", f.cause) })
            }
            CtrlOutcome::TimedOut { req_id, .. } => {
                (*req_id, CtrlReply { ok: false, detail: "control timed out".into() })
            }
            CtrlOutcome::ConnectionLost { req_id, .. } => {
                (*req_id, CtrlReply { ok: false, detail: "agent connection lost".into() })
            }
        };
        if let Some(tx) = self.pending.remove(&(agent, req_id)) {
            let _ = tx.send(reply);
        }
    }

    fn on_custom(&mut self, api: &mut ServerApi, msg: Box<dyn Any + Send>) {
        let Ok(cmd) = msg.downcast::<ApplySliceCtrl>() else { return };
        let ApplySliceCtrl { agent, ctrl, reply } = *cmd;
        let Some(rf_id) = api
            .randb()
            .agent(agent)
            .and_then(|a| a.function_by_oid_compat(&self.desc.oid, self.desc.version.into()))
            .map(|f| f.id)
        else {
            let _ =
                reply.send(CtrlReply { ok: false, detail: format!("agent {agent} has no SC SM") });
            return;
        };
        let msg = Bytes::from(ctrl.encode(self.sm_codec));
        let req_id = api.control(agent, rf_id, Bytes::new(), msg, Some(ControlAckRequest::Ack));
        self.pending.insert((agent, req_id), reply);
    }
}

// ---------------------------------------------------------------------------
// REST northbound
// ---------------------------------------------------------------------------

async fn relay(server: &ServerHandle, agent: AgentId, ctrl: SliceCtrl) -> Response {
    let (tx, rx) = oneshot::channel();
    server.to_iapp("slice", Box::new(ApplySliceCtrl { agent, ctrl, reply: tx }));
    match tokio::time::timeout(std::time::Duration::from_secs(5), rx).await {
        Ok(Ok(reply)) if reply.ok => Response::json(&reply),
        Ok(Ok(reply)) => Response { status: 400, ..Response::json(&reply) },
        _ => Response::error(500, "control relay timed out"),
    }
}

/// Builds the REST router of the slicing controller and binds it.
///
/// Routes:
/// * `GET  /slices` — latest slice statistics per agent,
/// * `GET  /agents` — connected agents,
/// * `POST /slice/algo` — select the slice algorithm ([`AlgoReq`]),
/// * `POST /slice/conf` — add/modify slices ([`ConfReq`]),
/// * `POST /slice/assoc` — associate UEs ([`AssocReq`]),
/// * `POST /slice/del` — delete slices ([`DelReq`]),
/// * `GET  /sm/registry` — registered service models
///   ([`flexric_xapp::introspect`]).
pub async fn spawn_rest(
    listen: &str,
    server: ServerHandle,
    latest: Arc<Mutex<HashMap<AgentId, SliceStatsInd>>>,
) -> std::io::Result<HttpServer> {
    let s1 = server.clone();
    let s2 = server.clone();
    let s3 = server.clone();
    let s4 = server.clone();
    let s5 = server.clone();
    let router = Router::new()
        .route("GET", "/slices", move |_req| {
            let latest = latest.clone();
            async move {
                #[derive(Serialize)]
                struct Entry {
                    agent: AgentId,
                    algo: String,
                    slices: Vec<serde_json::Value>,
                    ue_assoc: Vec<(u16, u32)>,
                }
                let table = latest.lock();
                let entries: Vec<Entry> = table
                    .iter()
                    .map(|(agent, st)| Entry {
                        agent: *agent,
                        algo: format!("{:?}", st.algo),
                        slices: st
                            .slices
                            .iter()
                            .map(|s| {
                                serde_json::json!({
                                    "id": s.conf.id,
                                    "label": s.conf.label,
                                    "params": SliceParamsDto::from_sm(&s.conf.params),
                                    "alloc_prbs": s.alloc_prbs,
                                    "thr_kbps": s.thr_kbps,
                                    "num_ues": s.num_ues,
                                })
                            })
                            .collect(),
                        ue_assoc: st.ue_assoc.clone(),
                    })
                    .collect();
                Response::json(&entries)
            }
        })
        .route("GET", "/agents", move |_req| {
            let server = s5.clone();
            async move {
                match server.agents().await {
                    Ok(agents) => {
                        let list: Vec<serde_json::Value> = agents
                            .iter()
                            .map(|a| {
                                serde_json::json!({
                                    "id": a.id,
                                    "node": a.node.to_string(),
                                    "functions": a.functions.iter()
                                        .map(|f| f.oid.clone()).collect::<Vec<_>>(),
                                })
                            })
                            .collect();
                        Response::json(&list)
                    }
                    Err(_) => Response::error(500, "server gone"),
                }
            }
        })
        .route("POST", "/slice/algo", move |req: Request| {
            let server = s1.clone();
            async move {
                let Ok(body) = req.json::<AlgoReq>() else {
                    return Response::error(400, "bad body");
                };
                let algo = match body.algo.as_str() {
                    "none" => SliceAlgo::None,
                    "static" => SliceAlgo::Static,
                    "nvs" => SliceAlgo::Nvs,
                    "nvs_nosharing" => SliceAlgo::NvsNoSharing,
                    other => return Response::error(400, format!("unknown algo {other}")),
                };
                relay(&server, body.agent, SliceCtrl::SetAlgo { algo }).await
            }
        })
        .route("POST", "/slice/conf", move |req: Request| {
            let server = s2.clone();
            async move {
                let Ok(body) = req.json::<ConfReq>() else {
                    return Response::error(400, "bad body");
                };
                let slices = body.slices.iter().map(|s| s.to_sm()).collect();
                relay(&server, body.agent, SliceCtrl::AddModSlices { slices }).await
            }
        })
        .route("POST", "/slice/assoc", move |req: Request| {
            let server = s3.clone();
            async move {
                let Ok(body) = req.json::<AssocReq>() else {
                    return Response::error(400, "bad body");
                };
                relay(&server, body.agent, SliceCtrl::AssocUeSlice { assoc: body.assoc }).await
            }
        })
        .route("POST", "/slice/del", move |req: Request| {
            let server = s4.clone();
            async move {
                let Ok(body) = req.json::<DelReq>() else {
                    return Response::error(400, "bad body");
                };
                relay(&server, body.agent, SliceCtrl::DelSlices { ids: body.ids }).await
            }
        });
    HttpServer::spawn(listen, introspect::mount(router)).await
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dto_conversion_roundtrip() {
        let dto = SliceDto {
            id: 3,
            label: "op-a".into(),
            params: SliceParamsDto::NvsCapacity { share_pct: 66.0 },
            sched: "rr".into(),
        };
        let sm = dto.to_sm();
        assert_eq!(sm.id, 3);
        assert_eq!(sm.params, SliceParams::NvsCapacity { share_milli: 660 });
        assert_eq!(sm.ue_sched, UeSchedAlgo::RoundRobin);

        let back = SliceParamsDto::from_sm(&sm.params);
        match back {
            SliceParamsDto::NvsCapacity { share_pct } => assert!((share_pct - 66.0).abs() < 1e-9),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn rate_dto_conversion() {
        let dto = SliceParamsDto::NvsRate { rate_mbps: 5.0, ref_mbps: 50.0 };
        assert_eq!(dto.to_sm(), SliceParams::NvsRate { rate_kbps: 5_000, ref_kbps: 50_000 });
        let stat = SliceParamsDto::StaticRb { lo: 0, hi: 24 };
        assert_eq!(stat.to_sm(), SliceParams::StaticRb { lo: 0, hi: 24 });
    }

    #[test]
    fn share_clamped() {
        let dto = SliceParamsDto::NvsCapacity { share_pct: 250.0 };
        assert_eq!(dto.to_sm(), SliceParams::NvsCapacity { share_milli: 1000 });
    }
}
