//! FlexRAN baseline emulation (paper §2, §5).
//!
//! FlexRAN (Foukas et al., CoNEXT'16) was the first real-time SD-RAN
//! platform.  Architecturally it differs from FlexRIC in the three ways the
//! paper measures:
//!
//! 1. **Protobuf encoding** — a single-layer custom protocol (no double
//!    E2AP/E2SM encapsulation), placing its wire size below and its
//!    decode cost between the FB and ASN.1 variants (Fig. 7);
//! 2. **Polling** — "FlexRAN adds overhead by requiring applications to
//!    poll for new messages": applications scan the RIB every millisecond
//!    instead of being invoked on arrival (Fig. 8a CPU);
//! 3. **RIB organization** — statistics are retained as decoded protobuf
//!    object trees per UE (string-keyed maps, per-message allocations),
//!    the "less efficiently organized internal data structure" behind the
//!    ~3× memory footprint of Fig. 8a.
//!
//! The emulation implements that architecture from scratch with the
//! [`flexric_codec::pb`] wire format.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use tokio::sync::mpsc;

use flexric_codec::pb::{PbReader, PbWriter};
use flexric_sm::mac::{MacStatsInd, MacUeStats};
use flexric_transport::{connect, listen, Transport, TransportAddr, WireMsg};

/// FlexRAN-protocol message types (the `ppid` of the framing layer).
pub mod msg_type {
    /// Agent hello (BS id).
    pub const HELLO: u32 = 1;
    /// Controller enables statistics at a given period.
    pub const STATS_REQUEST: u32 = 2;
    /// Full statistics report.
    pub const STATS_REPORT: u32 = 3;
    /// Echo request (RTT measurement).
    pub const ECHO_REQUEST: u32 = 4;
    /// Echo reply.
    pub const ECHO_REPLY: u32 = 5;
    /// RLC statistics report.
    pub const STATS_REPORT_RLC: u32 = 6;
    /// PDCP statistics report.
    pub const STATS_REPORT_PDCP: u32 = 7;
}

/// Encodes a MAC statistics snapshot in the FlexRAN protobuf-style format.
pub fn encode_stats_pb(ind: &MacStatsInd) -> Vec<u8> {
    let mut w = PbWriter::new();
    w.uint(1, ind.tstamp_ms);
    w.uint(2, ind.cell_prbs as u64);
    for ue in &ind.ues {
        let mut uw = PbWriter::new();
        uw.uint(1, ue.rnti as u64)
            .uint(2, ue.cqi as u64)
            .uint(3, ue.mcs as u64)
            .uint(4, ue.prbs_dl as u64)
            .uint(5, ue.prbs_ul as u64)
            .uint(6, ue.tbs_dl_bytes)
            .uint(7, ue.tbs_ul_bytes)
            .uint(8, ue.dl_aggr_bytes)
            .uint(9, ue.ul_aggr_bytes)
            .uint(10, ue.bsr as u64)
            .uint(11, ue.dl_backlog_bytes)
            .uint(12, ue.slice_id as u64)
            .uint(13, ue.plmn_mcc as u64)
            .uint(14, ue.plmn_mnc as u64);
        w.message(3, &uw);
    }
    w.finish()
}

/// Decodes a FlexRAN protobuf-style statistics report.
pub fn decode_stats_pb(buf: &[u8]) -> flexric_codec::Result<MacStatsInd> {
    let mut r = PbReader::new(buf);
    let mut ind = MacStatsInd::default();
    while let Some((field, value)) = r.next_field()? {
        match field {
            1 => ind.tstamp_ms = value.as_uint()?,
            2 => ind.cell_prbs = value.as_uint()? as u32,
            3 => {
                let mut ue = MacUeStats::default();
                let mut ur = PbReader::new(value.as_bytes()?);
                while let Some((f, v)) = ur.next_field()? {
                    let u = v.as_uint()?;
                    match f {
                        1 => ue.rnti = u as u16,
                        2 => ue.cqi = u as u8,
                        3 => ue.mcs = u as u8,
                        4 => ue.prbs_dl = u as u32,
                        5 => ue.prbs_ul = u as u32,
                        6 => ue.tbs_dl_bytes = u,
                        7 => ue.tbs_ul_bytes = u,
                        8 => ue.dl_aggr_bytes = u,
                        9 => ue.ul_aggr_bytes = u,
                        10 => ue.bsr = u as u32,
                        11 => ue.dl_backlog_bytes = u,
                        12 => ue.slice_id = u as u32,
                        13 => ue.plmn_mcc = u as u16,
                        14 => ue.plmn_mnc = u as u16,
                        _ => {}
                    }
                }
                ind.ues.push(ue);
            }
            _ => {}
        }
    }
    Ok(ind)
}

/// Encodes an RLC statistics snapshot in the protobuf-style format.
pub fn encode_rlc_pb(ind: &flexric_sm::rlc::RlcStatsInd) -> Vec<u8> {
    let mut w = PbWriter::new();
    w.uint(1, ind.tstamp_ms);
    for b in &ind.bearers {
        let mut bw = PbWriter::new();
        bw.uint(1, b.rnti as u64)
            .uint(2, b.drb_id as u64)
            .uint(3, b.tx_pdus)
            .uint(4, b.tx_bytes)
            .uint(5, b.retx_pdus)
            .uint(6, b.dropped_pdus)
            .uint(7, b.buffer_bytes)
            .uint(8, b.buffer_pkts as u64)
            .uint(9, b.sojourn_us_avg)
            .uint(10, b.sojourn_us_max);
        w.message(2, &bw);
    }
    w.finish()
}

/// Decodes an RLC statistics report.
pub fn decode_rlc_pb(buf: &[u8]) -> flexric_codec::Result<flexric_sm::rlc::RlcStatsInd> {
    let mut r = PbReader::new(buf);
    let mut ind = flexric_sm::rlc::RlcStatsInd::default();
    while let Some((field, value)) = r.next_field()? {
        match field {
            1 => ind.tstamp_ms = value.as_uint()?,
            2 => {
                let mut b = flexric_sm::rlc::RlcBearerStats::default();
                let mut br = PbReader::new(value.as_bytes()?);
                while let Some((f, v)) = br.next_field()? {
                    let u = v.as_uint()?;
                    match f {
                        1 => b.rnti = u as u16,
                        2 => b.drb_id = u as u8,
                        3 => b.tx_pdus = u,
                        4 => b.tx_bytes = u,
                        5 => b.retx_pdus = u,
                        6 => b.dropped_pdus = u,
                        7 => b.buffer_bytes = u,
                        8 => b.buffer_pkts = u as u32,
                        9 => b.sojourn_us_avg = u,
                        10 => b.sojourn_us_max = u,
                        _ => {}
                    }
                }
                ind.bearers.push(b);
            }
            _ => {}
        }
    }
    Ok(ind)
}

/// Encodes a PDCP statistics snapshot in the protobuf-style format.
pub fn encode_pdcp_pb(ind: &flexric_sm::pdcp::PdcpStatsInd) -> Vec<u8> {
    let mut w = PbWriter::new();
    w.uint(1, ind.tstamp_ms);
    for b in &ind.bearers {
        let mut bw = PbWriter::new();
        bw.uint(1, b.rnti as u64)
            .uint(2, b.drb_id as u64)
            .uint(3, b.tx_pdus)
            .uint(4, b.tx_bytes)
            .uint(5, b.rx_pdus)
            .uint(6, b.rx_bytes)
            .uint(7, b.tx_aggr_bytes)
            .uint(8, b.rx_aggr_bytes)
            .uint(9, b.rx_discards);
        w.message(2, &bw);
    }
    w.finish()
}

/// Decodes a PDCP statistics report.
pub fn decode_pdcp_pb(buf: &[u8]) -> flexric_codec::Result<flexric_sm::pdcp::PdcpStatsInd> {
    let mut r = PbReader::new(buf);
    let mut ind = flexric_sm::pdcp::PdcpStatsInd::default();
    while let Some((field, value)) = r.next_field()? {
        match field {
            1 => ind.tstamp_ms = value.as_uint()?,
            2 => {
                let mut b = flexric_sm::pdcp::PdcpBearerStats::default();
                let mut br = PbReader::new(value.as_bytes()?);
                while let Some((f, v)) = br.next_field()? {
                    let u = v.as_uint()?;
                    match f {
                        1 => b.rnti = u as u16,
                        2 => b.drb_id = u as u8,
                        3 => b.tx_pdus = u,
                        4 => b.tx_bytes = u,
                        5 => b.rx_pdus = u,
                        6 => b.rx_bytes = u,
                        7 => b.tx_aggr_bytes = u,
                        8 => b.rx_aggr_bytes = u,
                        9 => b.rx_discards = u,
                        _ => {}
                    }
                }
                ind.bearers.push(b);
            }
            _ => {}
        }
    }
    Ok(ind)
}

/// The FlexRAN-style RIB: decoded protobuf object trees retained per base
/// station and UE, with string-keyed attribute maps — deliberately the
/// allocation-heavy organization the paper measures.
#[derive(Debug, Default)]
pub struct Rib {
    /// Per-BS, per-UE attribute maps.
    pub bs: HashMap<u64, HashMap<u16, HashMap<String, u64>>>,
    /// History ring of raw reports (FlexRAN keeps recent reports for its
    /// northbound).
    pub history: std::collections::VecDeque<Vec<u8>>,
    /// Updates applied.
    pub updates: u64,
}

impl Rib {
    /// History ring depth.
    pub const HISTORY: usize = 8192;

    /// Ingests one decoded report (plus its raw bytes for the history).
    pub fn ingest(&mut self, bs_id: u64, raw: &[u8], ind: &MacStatsInd) {
        let bs = self.bs.entry(bs_id).or_default();
        for ue in &ind.ues {
            let attrs = bs.entry(ue.rnti).or_default();
            attrs.insert("cqi".to_owned(), ue.cqi as u64);
            attrs.insert("mcs".to_owned(), ue.mcs as u64);
            attrs.insert("prbs_dl".to_owned(), ue.prbs_dl as u64);
            attrs.insert("tbs_dl_bytes".to_owned(), ue.tbs_dl_bytes);
            attrs.insert("dl_aggr_bytes".to_owned(), ue.dl_aggr_bytes);
            attrs.insert("bsr".to_owned(), ue.bsr as u64);
            attrs.insert("backlog".to_owned(), ue.dl_backlog_bytes);
            attrs.insert("slice".to_owned(), ue.slice_id as u64);
        }
        self.history.push_back(raw.to_vec());
        if self.history.len() > Self::HISTORY {
            self.history.pop_front();
        }
        self.updates += 1;
    }
}

/// Counters of a running FlexRAN-style controller.
#[derive(Debug, Default)]
pub struct FlexranCounters {
    /// Reports received.
    pub reports: AtomicU64,
    /// Echo replies received.
    pub echos: AtomicU64,
    /// Polls performed by the application task.
    pub polls: AtomicU64,
    /// Wire bytes received.
    pub rx_bytes: AtomicU64,
}

/// Handle to a running FlexRAN-style controller.
pub struct FlexranController {
    /// Address agents connect to.
    pub addr: TransportAddr,
    /// The RIB.
    pub rib: Arc<Mutex<Rib>>,
    /// Counters.
    pub counters: Arc<FlexranCounters>,
    stop: Arc<AtomicBool>,
}

impl FlexranController {
    /// Binds the south-bound listener and starts the controller: a
    /// connection handler per agent plus the 1 ms polling application.
    pub async fn spawn(addr: &TransportAddr, stats_period_ms: u32) -> io::Result<Self> {
        let mut listener = listen(addr).await?;
        let bound = listener.local_addr()?;
        let rib = Arc::new(Mutex::new(Rib::default()));
        let counters = Arc::new(FlexranCounters::default());
        let stop = Arc::new(AtomicBool::new(false));

        // Accept loop.
        {
            let rib = rib.clone();
            let counters = counters.clone();
            tokio::spawn(async move {
                let mut next_bs = 0u64;
                loop {
                    let Ok(conn) = listener.accept().await else { break };
                    let bs_id = next_bs;
                    next_bs += 1;
                    let rib = rib.clone();
                    let counters = counters.clone();
                    tokio::spawn(async move {
                        let _ = serve_agent(conn, bs_id, stats_period_ms, rib, counters).await;
                    });
                }
            });
        }

        // The polling application: scans the RIB every millisecond —
        // FlexRAN's documented overhead pattern.
        {
            let rib = rib.clone();
            let counters = counters.clone();
            let stop = stop.clone();
            tokio::spawn(async move {
                let mut iv = tokio::time::interval(std::time::Duration::from_millis(1));
                iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
                let mut last_update = 0u64;
                loop {
                    iv.tick().await;
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let table = rib.lock();
                    // Poll: walk every UE of every BS looking for news.
                    let mut sum = 0u64;
                    for bs in table.bs.values() {
                        for attrs in bs.values() {
                            sum = sum.wrapping_add(*attrs.get("tbs_dl_bytes").unwrap_or(&0));
                        }
                    }
                    std::hint::black_box(sum);
                    let _changed = table.updates != last_update;
                    last_update = table.updates;
                    counters.polls.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        Ok(FlexranController { addr: bound, rib, counters, stop })
    }

    /// Stops the polling application.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

async fn serve_agent(
    conn: Transport,
    bs_id: u64,
    stats_period_ms: u32,
    rib: Arc<Mutex<Rib>>,
    counters: Arc<FlexranCounters>,
) -> io::Result<()> {
    let (mut tx, mut rx) = conn.split();
    // Ask for statistics immediately (FlexRAN's stats request config).
    let mut req = PbWriter::new();
    req.uint(1, stats_period_ms as u64);
    tx.send(WireMsg { stream: 0, ppid: msg_type::STATS_REQUEST, payload: req.finish().into() })
        .await?;
    while let Some(msg) = rx.recv().await? {
        counters.rx_bytes.fetch_add(msg.payload.len() as u64, Ordering::Relaxed);
        match msg.ppid {
            msg_type::STATS_REPORT => {
                counters.reports.fetch_add(1, Ordering::Relaxed);
                if let Ok(ind) = decode_stats_pb(&msg.payload) {
                    rib.lock().ingest(bs_id, &msg.payload, &ind);
                }
            }
            msg_type::STATS_REPORT_RLC => {
                counters.reports.fetch_add(1, Ordering::Relaxed);
                if let Ok(ind) = decode_rlc_pb(&msg.payload) {
                    let mut table = rib.lock();
                    let bs = table.bs.entry(bs_id).or_default();
                    for b in &ind.bearers {
                        let attrs = bs.entry(b.rnti).or_default();
                        attrs.insert("rlc_buffer".to_owned(), b.buffer_bytes);
                        attrs.insert("rlc_sojourn".to_owned(), b.sojourn_us_avg);
                        attrs.insert("rlc_tx_bytes".to_owned(), b.tx_bytes);
                    }
                    table.history.push_back(msg.payload.to_vec());
                    if table.history.len() > Rib::HISTORY {
                        table.history.pop_front();
                    }
                    table.updates += 1;
                }
            }
            msg_type::STATS_REPORT_PDCP => {
                counters.reports.fetch_add(1, Ordering::Relaxed);
                if let Ok(ind) = decode_pdcp_pb(&msg.payload) {
                    let mut table = rib.lock();
                    let bs = table.bs.entry(bs_id).or_default();
                    for b in &ind.bearers {
                        let attrs = bs.entry(b.rnti).or_default();
                        attrs.insert("pdcp_tx_bytes".to_owned(), b.tx_bytes);
                        attrs.insert("pdcp_tx_aggr".to_owned(), b.tx_aggr_bytes);
                    }
                    table.history.push_back(msg.payload.to_vec());
                    if table.history.len() > Rib::HISTORY {
                        table.history.pop_front();
                    }
                    table.updates += 1;
                }
            }
            msg_type::ECHO_REQUEST => {
                tx.send(WireMsg {
                    stream: msg.stream,
                    ppid: msg_type::ECHO_REPLY,
                    payload: msg.payload,
                })
                .await?;
            }
            msg_type::HELLO => {}
            _ => {}
        }
    }
    Ok(())
}

/// Commands accepted by a running FlexRAN-style agent.
pub enum FlexranAgentCmd {
    /// Advance time; due statistics are pushed.
    Tick(u64),
    /// Send an echo request with the given payload.
    Echo(Bytes),
    /// Stop.
    Stop,
}

/// One full statistics snapshot pushed by the agent.
#[derive(Debug, Default, Clone)]
pub struct FlexranSnapshot {
    /// MAC statistics.
    pub mac: MacStatsInd,
    /// RLC statistics (empty = not sent).
    pub rlc: flexric_sm::rlc::RlcStatsInd,
    /// PDCP statistics (empty = not sent).
    pub pdcp: flexric_sm::pdcp::PdcpStatsInd,
}

/// Handle to a running FlexRAN-style agent.
pub struct FlexranAgent {
    cmd: mpsc::UnboundedSender<FlexranAgentCmd>,
    /// Echo replies observed `(payload, receive mono ns)`.
    pub echo_rx: Arc<Mutex<Vec<(Bytes, u64)>>>,
    /// Bytes sent on the wire.
    pub tx_bytes: Arc<AtomicU64>,
}

impl FlexranAgent {
    /// Connects to the controller; statistics snapshots come from
    /// `snapshot` on each due tick.
    pub async fn spawn(
        addr: &TransportAddr,
        mut snapshot: impl FnMut(u64) -> FlexranSnapshot + Send + 'static,
    ) -> io::Result<Self> {
        let conn = connect(addr).await?;
        let (tx_half, mut rx_half) = conn.split();
        let (cmd_tx, mut cmd_rx) = mpsc::unbounded_channel();
        let echo_rx = Arc::new(Mutex::new(Vec::new()));
        let tx_bytes = Arc::new(AtomicU64::new(0));

        let echo_rx2 = echo_rx.clone();
        let tx_bytes2 = tx_bytes.clone();
        tokio::spawn(async move {
            let mut tx = tx_half;
            let mut hello = PbWriter::new();
            hello.uint(1, 1);
            let _ = tx
                .send(WireMsg { stream: 0, ppid: msg_type::HELLO, payload: hello.finish().into() })
                .await;
            let mut period_ms: Option<u64> = None;
            let mut next_due = 0u64;
            loop {
                tokio::select! {
                    cmd = cmd_rx.recv() => match cmd {
                        Some(FlexranAgentCmd::Tick(now)) => {
                            if let Some(p) = period_ms {
                                if now >= next_due {
                                    next_due = now + p;
                                    let snap = snapshot(now);
                                    let mut parts: Vec<(u32, Bytes)> =
                                        vec![(msg_type::STATS_REPORT, encode_stats_pb(&snap.mac).into())];
                                    if !snap.rlc.bearers.is_empty() {
                                        parts.push((msg_type::STATS_REPORT_RLC, encode_rlc_pb(&snap.rlc).into()));
                                    }
                                    if !snap.pdcp.bearers.is_empty() {
                                        parts.push((msg_type::STATS_REPORT_PDCP, encode_pdcp_pb(&snap.pdcp).into()));
                                    }
                                    let mut failed = false;
                                    for (ppid, payload) in parts {
                                        tx_bytes2.fetch_add(payload.len() as u64, Ordering::Relaxed);
                                        if tx.send(WireMsg { stream: 0, ppid, payload }).await.is_err() {
                                            failed = true;
                                            break;
                                        }
                                    }
                                    if failed {
                                        break;
                                    }
                                }
                            }
                        }
                        Some(FlexranAgentCmd::Echo(payload)) => {
                            tx_bytes2.fetch_add(payload.len() as u64, Ordering::Relaxed);
                            if tx.send(WireMsg { stream: 0, ppid: msg_type::ECHO_REQUEST, payload }).await.is_err() {
                                break;
                            }
                        }
                        Some(FlexranAgentCmd::Stop) | None => break,
                    },
                    inbound = rx_half.recv() => match inbound {
                        Ok(Some(msg)) => match msg.ppid {
                            msg_type::STATS_REQUEST => {
                                let mut r = PbReader::new(&msg.payload);
                                if let Ok(Some((1, v))) = r.next_field() {
                                    if let Ok(p) = v.as_uint() {
                                        period_ms = Some(p.max(1));
                                    }
                                }
                            }
                            msg_type::ECHO_REPLY => {
                                echo_rx2.lock().push((msg.payload, now_ns()));
                            }
                            _ => {}
                        },
                        Ok(None) | Err(_) => break,
                    },
                }
            }
        });
        Ok(FlexranAgent { cmd: cmd_tx, echo_rx, tx_bytes })
    }

    /// Advances agent time.
    pub fn tick(&self, now_ms: u64) {
        let _ = self.cmd.send(FlexranAgentCmd::Tick(now_ms));
    }

    /// Sends an echo request.
    pub fn echo(&self, payload: Bytes) {
        let _ = self.cmd.send(FlexranAgentCmd::Echo(payload));
    }

    /// Stops the agent.
    pub fn stop(&self) {
        let _ = self.cmd.send(FlexranAgentCmd::Stop);
    }
}

fn now_ns() -> u64 {
    flexric::mono_ns()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample(ues: u16) -> MacStatsInd {
        MacStatsInd {
            tstamp_ms: 42,
            cell_prbs: 25,
            ues: (0..ues)
                .map(|i| MacUeStats {
                    rnti: 0x4601 + i,
                    cqi: 15,
                    mcs: 28,
                    tbs_dl_bytes: 2_000,
                    ..Default::default()
                })
                .collect(),
        }
    }

    #[test]
    fn pb_stats_roundtrip() {
        let ind = sample(32);
        let buf = encode_stats_pb(&ind);
        let back = decode_stats_pb(&buf).unwrap();
        assert_eq!(back.tstamp_ms, 42);
        assert_eq!(back.ues.len(), 32);
        assert_eq!(back.ues[0].rnti, 0x4601);
        assert_eq!(back.ues[0].tbs_dl_bytes, 2_000);
    }

    #[test]
    fn pb_is_compact() {
        // FlexRAN's single-layer protobuf is the smallest wire format in
        // the paper's Fig. 7b.
        let ind = sample(32);
        let pb = encode_stats_pb(&ind);
        let fb = flexric_sm::SmPayload::encode(&ind, flexric_sm::SmCodec::Flatb);
        assert!(pb.len() < fb.len(), "pb={} fb={}", pb.len(), fb.len());
    }

    #[tokio::test]
    async fn controller_ingests_reports_and_echo() {
        let ctrl =
            FlexranController::spawn(&TransportAddr::Mem("fxr-test".into()), 1).await.unwrap();
        let agent = FlexranAgent::spawn(&ctrl.addr, |now| {
            let mut s = sample(4);
            s.tstamp_ms = now;
            FlexranSnapshot { mac: s, ..Default::default() }
        })
        .await
        .unwrap();
        // Drive ticks until reports land.
        for t in 0..50u64 {
            agent.tick(t);
            tokio::time::sleep(Duration::from_millis(1)).await;
            if ctrl.counters.reports.load(Ordering::Relaxed) >= 10 {
                break;
            }
        }
        assert!(ctrl.counters.reports.load(Ordering::Relaxed) >= 10);
        {
            let rib = ctrl.rib.lock();
            let bs = rib.bs.get(&0).expect("bs 0 present");
            assert_eq!(bs.len(), 4, "four UEs in RIB");
            assert!(rib.updates >= 10);
        }
        // Echo round-trip.
        agent.echo(Bytes::from(vec![0u8; 100]));
        for _ in 0..100 {
            if !agent.echo_rx.lock().is_empty() {
                break;
            }
            tokio::time::sleep(Duration::from_millis(2)).await;
        }
        assert_eq!(agent.echo_rx.lock().len(), 1);
        assert_eq!(agent.echo_rx.lock()[0].0.len(), 100);
        ctrl.stop();
        agent.stop();
    }
}
