//! The monitoring controller specialization: a statistics iApp "that saves
//! incoming messages to an in-memory data structure, similar to FlexRAN"
//! (paper §5.3).  This is the controller measured in Figs. 8 and 9b.
//!
//! Beyond the paper's full-snapshot baseline, the iApp speaks the adaptive
//! monitoring pipeline: delta-encoded indications (reconstructed here from
//! keyframe + deltas, [`flexric_sm::delta`]), and — in
//! [`MonitorMode::Adaptive`] — server-driven report retuning that backs
//! off quiescent cells and tightens the period when a reconstructed KPI
//! crosses an anomaly threshold.  Retunes ride the regular subscription
//! procedure ([`ServerApi::retune_subscription`]), so they inherit
//! deadlines and retransmits from the endpoint layer.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use flexric::server::{AgentId, AgentInfo, IApp, IndicationRef, ServerApi};
use flexric_e2ap::{RanFunctionId, RicRequestId};
use flexric_sm::registry::{AnyDeltaDecoder, AnyDeltaEvent, AnyPayload, SmDescriptor};
use flexric_sm::{
    mac::MacStatsInd, oid, pdcp::PdcpStatsInd, rlc::RlcStatsInd, ReportTrigger, SmCodec, SmPayload,
};

/// The in-memory statistics store.
///
/// Unlike FlexRAN's RIB (decoded object trees), the FlexRIC store keeps
/// the *encoded* SM payloads and decodes on access — with the FB encoding
/// the write path is a reference-counted byte copy and reads are lazy,
/// which is the "more efficiently organized internal data structure" of
/// the paper's §5.3.  Under delta monitoring the stored payload is the
/// re-encoded reconstruction, so readers are oblivious to the wire mode.
///
/// Payloads are keyed by SM OID, not by a hard-coded per-layer slot, so
/// the store holds any registered SM — including third-party ones — and
/// [`StatsDb::snapshot_any`] decodes them through the registry vtable.
#[derive(Debug, Default)]
pub struct StatsDb {
    sm_codec: SmCodec,
    /// Latest raw payload per SM OID per agent, with its store time.
    raw: std::collections::HashMap<String, std::collections::HashMap<AgentId, DbEntry>>,
}

/// One stored payload plus the time it was last refreshed — the TTL
/// eviction of [`StatsDb::evict_stale`] keys off `updated_ms`.
#[derive(Debug)]
struct DbEntry {
    raw: bytes::Bytes,
    updated_ms: u64,
}

impl StatsDb {
    /// The latest raw payload `agent` reported for the SM `oid`.
    pub fn raw(&self, agent: AgentId, oid: &str) -> Option<&bytes::Bytes> {
        self.raw.get(oid)?.get(&agent).map(|e| &e.raw)
    }

    /// Decodes the latest snapshot of `agent` for `oid` through the
    /// registry vtable; downcast the result when the concrete type is
    /// known, or hand it to generic consumers.
    pub fn snapshot_any(&self, agent: AgentId, oid: &str) -> Option<AnyPayload> {
        let desc = flexric_sm::registry::global().latest(oid)?;
        desc.decode_indication(self.sm_codec, self.raw(agent, oid)?).ok()
    }

    fn decode_as<T: SmPayload>(&self, agent: AgentId, oid: &str) -> Option<T> {
        T::decode(self.sm_codec, self.raw(agent, oid)?).ok()
    }

    /// Decodes the latest MAC snapshot of an agent.
    pub fn mac(&self, agent: AgentId) -> Option<MacStatsInd> {
        self.decode_as(agent, oid::MAC_STATS)
    }

    /// Decodes the latest RLC snapshot of an agent.
    pub fn rlc(&self, agent: AgentId) -> Option<RlcStatsInd> {
        self.decode_as(agent, oid::RLC_STATS)
    }

    /// Decodes the latest PDCP snapshot of an agent.
    pub fn pdcp(&self, agent: AgentId) -> Option<PdcpStatsInd> {
        self.decode_as(agent, oid::PDCP_STATS)
    }

    /// Agents with any stored statistics.
    pub fn agents(&self) -> Vec<AgentId> {
        let mut ids: Vec<AgentId> = self.raw.values().flat_map(|m| m.keys().copied()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn store(&mut self, agent: AgentId, oid: &str, raw: bytes::Bytes, now_ms: u64) {
        let entry = DbEntry { raw, updated_ms: now_ms };
        match self.raw.get_mut(oid) {
            Some(m) => {
                m.insert(agent, entry);
            }
            None => {
                self.raw.entry(oid.to_owned()).or_default().insert(agent, entry);
            }
        }
    }

    fn remove_agent(&mut self, agent: AgentId) {
        for m in self.raw.values_mut() {
            m.remove(&agent);
        }
    }

    /// Evicts entries not refreshed within `ttl_ms` of `now_ms` and
    /// returns how many were dropped.  Before this existed, rows of
    /// departed reporters (agents whose subscription died without a
    /// disconnect, churned-out dummy UE agents, cells in a long outage)
    /// accumulated forever; churn scenarios made the leak structural.
    pub fn evict_stale(&mut self, now_ms: u64, ttl_ms: u64) -> u64 {
        let mut evicted = 0;
        for m in self.raw.values_mut() {
            let before = m.len();
            m.retain(|_, e| now_ms.saturating_sub(e.updated_ms) < ttl_ms.max(1));
            evicted += (before - m.len()) as u64;
        }
        self.raw.retain(|_, m| !m.is_empty());
        if evicted > 0 {
            obs().evicted.add(evicted);
        }
        evicted
    }
}

/// Global obs counters mirroring [`MonitorCounters`], registered once.
struct MonitorObs {
    indications: flexric_obs::Counter,
    bytes: flexric_obs::Counter,
    retunes_backoff: flexric_obs::Counter,
    retunes_tighten: flexric_obs::Counter,
    retunes_resync: flexric_obs::Counter,
    evicted: flexric_obs::Counter,
}

fn obs() -> &'static MonitorObs {
    static OBS: std::sync::OnceLock<MonitorObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let retunes = "Server-driven report retunes issued by the monitoring iApp, by reason";
        MonitorObs {
            indications: flexric_obs::counter(
                "flexric_ctrl_indications_total",
                "Indications processed by the monitoring iApp",
            ),
            bytes: flexric_obs::counter(
                "flexric_ctrl_indication_bytes_total",
                "SM payload bytes of indications processed by the monitoring iApp",
            ),
            retunes_backoff: flexric_obs::counter_with(
                "flexric_ctrl_retunes_total",
                &[("dir", "backoff")],
                retunes,
            ),
            retunes_tighten: flexric_obs::counter_with(
                "flexric_ctrl_retunes_total",
                &[("dir", "tighten")],
                retunes,
            ),
            retunes_resync: flexric_obs::counter_with(
                "flexric_ctrl_retunes_total",
                &[("dir", "resync")],
                retunes,
            ),
            evicted: flexric_obs::counter(
                "flexric_ctrl_statsdb_evicted_total",
                "StatsDb entries dropped by TTL eviction (stale reporters)",
            ),
        }
    })
}

/// Counters for throughput accounting in the scaling experiments.
#[derive(Debug, Default)]
pub struct MonitorCounters {
    /// Indications processed.
    pub indications: AtomicU64,
    /// Wire bytes of processed indications.
    pub bytes: AtomicU64,
    /// Delta frames that failed to decode (wire-level).
    pub decode_errors: AtomicU64,
    /// Delta-stream resyncs (keyframe requested via retune).
    pub resyncs: AtomicU64,
    /// Retunes issued (all reasons).
    pub retunes: AtomicU64,
}

/// How the iApp subscribes to reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MonitorMode {
    /// Full snapshot every period (the paper's baseline).
    #[default]
    Full,
    /// Delta-encoded indications at a fixed period.
    Delta,
    /// Delta-encoded indications plus server-driven period retuning:
    /// back off quiescent agents, tighten on anomaly.
    Adaptive,
}

/// Thresholds and bounds of the adaptive retune state machine.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Tightest period (used under anomaly); the subscription starts at
    /// [`MonitorConfig::period_ms`].
    pub min_period_ms: u32,
    /// Loosest period the backoff may reach.
    pub max_period_ms: u32,
    /// Back off after this many periods without a content change.
    pub quiet_periods: u32,
    /// MAC anomaly: any UE's `dl_backlog_bytes` above this.
    pub backlog_bytes_thr: u64,
    /// RLC anomaly: any bearer's `sojourn_us_avg` above this.
    pub sojourn_us_thr: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_period_ms: 1,
            max_period_ms: 1_000,
            quiet_periods: 8,
            backlog_bytes_thr: 500_000,
            sojourn_us_thr: 300_000,
        }
    }
}

/// Configuration of the monitoring iApp.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Reporting period requested from agents.
    pub period_ms: u32,
    /// SM encoding used by the agents.
    pub sm_codec: SmCodec,
    /// Subscribe to MAC statistics.
    pub mac: bool,
    /// Subscribe to RLC statistics.
    pub rlc: bool,
    /// Subscribe to PDCP statistics.
    pub pdcp: bool,
    /// Subscribe to SC SM slice statistics (per-slice throughput — the
    /// feed of the SLA xApp).
    pub slice: bool,
    /// Decode payloads into the store.  Disabled for pure-throughput
    /// scaling runs where only the dispatch cost is being measured.
    pub store: bool,
    /// TTL for stored entries: rows a reporter stops refreshing for this
    /// long are evicted on the iApp tick (`None` disables eviction).
    pub stale_ttl_ms: Option<u64>,
    /// Full, delta, or adaptive reporting.
    pub mode: MonitorMode,
    /// Keyframe cadence of delta subscriptions (report opportunities
    /// per full keyframe).
    pub keyframe_every: u32,
    /// Retune state machine (only read in [`MonitorMode::Adaptive`]).
    pub adaptive: AdaptiveConfig,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            period_ms: 1,
            sm_codec: SmCodec::Flatb,
            mac: true,
            rlc: true,
            pdcp: true,
            slice: false,
            store: true,
            stale_ttl_ms: Some(60_000),
            mode: MonitorMode::Full,
            keyframe_every: 16,
            adaptive: AdaptiveConfig::default(),
        }
    }
}

impl MonitorConfig {
    fn trigger_bytes(&self, period_ms: u32) -> Bytes {
        let trigger = match self.mode {
            MonitorMode::Full => ReportTrigger::every_ms(period_ms),
            MonitorMode::Delta | MonitorMode::Adaptive => {
                ReportTrigger::delta_every_ms(period_ms, self.keyframe_every)
            }
        };
        Bytes::from(trigger.encode(self.sm_codec))
    }
}

/// Per-subscription delta reconstruction state.  The decoder comes from
/// the SM's registry vtable ([`SmDescriptor::delta_decoder`]), so the
/// iApp reconstructs any delta-capable SM without naming its types.
struct DecEntry {
    dec: Box<dyn AnyDeltaDecoder>,
    /// Storm guard: last time this stream asked the agent for a keyframe.
    last_resync_ms: u64,
}

/// Per-agent adaptive retune state.
struct AdaptState {
    /// Currently requested period.
    period_ms: u32,
    /// Last time any subscription of this agent reported changed content
    /// (or was (re)tuned — retunes reset the quiet clock).
    last_change_ms: u64,
}

/// Minimum spacing of keyframe-resync retunes per subscription.
const RESYNC_GUARD_MS: u64 = 1_000;

/// The statistics iApp.
pub struct MonitorApp {
    cfg: MonitorConfig,
    db: Arc<Mutex<StatsDb>>,
    counters: Arc<MonitorCounters>,
    /// The SM descriptor behind each of our request ids.
    subs: std::collections::HashMap<(AgentId, RicRequestId), Arc<SmDescriptor>>,
    /// Delta reconstruction per subscription (delta/adaptive modes).
    decoders: std::collections::HashMap<(AgentId, RicRequestId), DecEntry>,
    /// Adaptive period state per agent.
    adapt: std::collections::HashMap<AgentId, AdaptState>,
    /// Per-shard reconstruct-time histogram, bound in `on_start`.
    reconstruct_ns: Option<flexric_obs::Histogram>,
}

impl MonitorApp {
    /// Creates the iApp; the returned handles read the store and counters.
    pub fn new(cfg: MonitorConfig) -> (Self, Arc<Mutex<StatsDb>>, Arc<MonitorCounters>) {
        let db = Arc::new(Mutex::new(StatsDb { sm_codec: cfg.sm_codec, ..Default::default() }));
        let counters = Arc::new(MonitorCounters::default());
        (Self::replica(cfg, db.clone(), counters.clone()), db, counters)
    }

    /// Creates another instance feeding the same store and counters — one
    /// per shard on a sharded controller ([`flexric::server::Server::spawn_sharded`]):
    /// each replica subscribes to the agents its shard owns, and the shared
    /// `Arc`s aggregate the combined view.
    pub fn replica(
        cfg: MonitorConfig,
        db: Arc<Mutex<StatsDb>>,
        counters: Arc<MonitorCounters>,
    ) -> Self {
        MonitorApp {
            cfg,
            db,
            counters,
            subs: std::collections::HashMap::new(),
            decoders: std::collections::HashMap::new(),
            adapt: std::collections::HashMap::new(),
            reconstruct_ns: None,
        }
    }

    fn delta_mode(&self) -> bool {
        self.cfg.mode != MonitorMode::Full
    }

    /// Issues a retune of every subscription of `agent` to `period_ms`.
    fn retune_agent(&mut self, api: &mut ServerApi, agent: AgentId, period_ms: u32) {
        let trigger = self.cfg.trigger_bytes(period_ms);
        for (&(a, req_id), _) in self.subs.iter() {
            if a == agent {
                api.retune_subscription(a, req_id, trigger.clone());
            }
        }
        self.counters.retunes.fetch_add(1, Ordering::Relaxed);
    }

    /// Anomaly predicates on reconstructed KPIs — iApp policy, applied to
    /// the SMs this iApp understands via downcast.  SMs without a rule
    /// (including third-party ones) are simply never anomalous.
    fn is_anomalous(snap: &(dyn Any + Send), thr: AdaptiveConfig) -> bool {
        if let Some(m) = snap.downcast_ref::<MacStatsInd>() {
            return m.ues.iter().any(|u| u.dl_backlog_bytes > thr.backlog_bytes_thr);
        }
        if let Some(r) = snap.downcast_ref::<RlcStatsInd>() {
            return r.bearers.iter().any(|b| b.sojourn_us_avg > thr.sojourn_us_thr);
        }
        false
    }

    /// Re-encodes and stores one reconstructed snapshot through the SM's
    /// vtable, timing the reconstruction (decode + re-encode) into the
    /// per-shard histogram.
    fn store_reconstruction(
        &self,
        agent: AgentId,
        desc: &SmDescriptor,
        snap: &(dyn Any + Send),
        now_ms: u64,
    ) {
        let t0 = flexric::mono_ns();
        let Some(raw) = desc.encode_indication(snap, self.cfg.sm_codec) else { return };
        self.db.lock().store(agent, &desc.oid, bytes::Bytes::from(raw), now_ms);
        if let Some(h) = &self.reconstruct_ns {
            h.record(flexric::mono_ns().saturating_sub(t0));
        }
    }
}

impl IApp for MonitorApp {
    fn name(&self) -> &str {
        "monitor"
    }

    fn on_start(&mut self, api: &mut ServerApi) {
        // PR 5 convention: every series this iApp can emit is registered
        // at zero from startup, idle or not — including the SM delta
        // series owned by flexric-sm.
        flexric_sm::delta::register_metrics();
        let _ = obs();
        let shard = api.shard().to_string();
        self.reconstruct_ns = Some(flexric_obs::histogram_with(
            "flexric_sm_reconstruct_ns",
            &[("shard", &shard)],
            "Time to reconstruct + re-encode one delta-mode snapshot",
        ));
    }

    fn on_agent_connected(&mut self, api: &mut ServerApi, agent: &AgentInfo) {
        let trigger = self.cfg.trigger_bytes(self.cfg.period_ms);
        let registry = flexric_sm::registry::global();
        let mut want = Vec::new();
        if self.cfg.mac {
            want.push(oid::MAC_STATS);
        }
        if self.cfg.rlc {
            want.push(oid::RLC_STATS);
        }
        if self.cfg.pdcp {
            want.push(oid::PDCP_STATS);
        }
        if self.cfg.slice {
            want.push(oid::SLICE_CTRL);
        }
        for oid in want {
            let Some(desc) = registry.latest(oid) else { continue };
            // Prefer the advertised, version-compatible function id; fall
            // back to the descriptor's well-known id for agents with terse
            // definitions.
            let rf_id = agent
                .function_by_oid_compat(&desc.oid, desc.version.into())
                .map(|f| f.id)
                .unwrap_or(RanFunctionId::new(desc.ran_function_id));
            if agent.function(rf_id).is_none() {
                continue;
            }
            let req = api.subscribe_report(agent.id, rf_id, trigger.clone());
            self.subs.insert((agent.id, req), desc.clone());
        }
        if self.cfg.mode == MonitorMode::Adaptive {
            self.adapt.insert(
                agent.id,
                AdaptState { period_ms: self.cfg.period_ms, last_change_ms: api.now_ms() },
            );
        }
    }

    fn on_agent_disconnected(&mut self, _api: &mut ServerApi, agent: AgentId) {
        self.subs.retain(|(a, _), _| *a != agent);
        self.decoders.retain(|(a, _), _| *a != agent);
        self.adapt.remove(&agent);
        self.db.lock().remove_agent(agent);
    }

    fn on_indication(&mut self, api: &mut ServerApi, agent: AgentId, ind: &IndicationRef) {
        self.counters.indications.fetch_add(1, Ordering::Relaxed);
        obs().indications.inc();
        let Ok((_, msg)) = ind.sm_payload() else { return };
        self.counters.bytes.fetch_add(msg.len() as u64, Ordering::Relaxed);
        obs().bytes.add(msg.len() as u64);
        let req_id = ind.req_id();
        let Some(desc) = self.subs.get(&(agent, req_id)).cloned() else { return };

        if !self.delta_mode() {
            if !self.cfg.store {
                return;
            }
            // Write path: store the encoded payload under the SM's OID;
            // decoding happens lazily on read.  `Bytes::copy_from_slice`
            // is the only copy.
            let raw = bytes::Bytes::copy_from_slice(msg);
            self.db.lock().store(agent, &desc.oid, raw, api.now_ms());
            return;
        }

        // Delta path: reconstruct the snapshot from the frame with the
        // SM's own delta decoder, obtained from its registry vtable.
        let codec = self.cfg.sm_codec;
        let entry = match self.decoders.entry((agent, req_id)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => match desc.delta_decoder() {
                Some(dec) => v.insert(DecEntry { dec, last_resync_ms: 0 }),
                None => {
                    // The SM has no delta hooks, so its agent side can only
                    // have sent full snapshots: store them as-is.
                    if self.cfg.store {
                        let raw = bytes::Bytes::copy_from_slice(msg);
                        self.db.lock().store(agent, &desc.oid, raw, api.now_ms());
                    }
                    return;
                }
            },
        };
        let mut changed = false;
        let mut anomaly = false;
        let mut need_keyframe = false;
        let thr = self.cfg.adaptive;
        let last_resync_ms = entry.last_resync_ms;
        match entry.dec.apply(msg, codec) {
            Ok(AnyDeltaEvent::Snapshot { snap, changed: ch }) => {
                changed = ch;
                anomaly = Self::is_anomalous(&*snap, thr);
                if self.cfg.store {
                    self.store_reconstruction(agent, &desc, &*snap, api.now_ms());
                }
            }
            Ok(AnyDeltaEvent::NeedKeyframe) => need_keyframe = true,
            Err(_) => {
                self.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let now = api.now_ms();
        if need_keyframe {
            // The stream lost sync (restart, loss, divergence): re-issue
            // the subscription so the agent bumps the epoch and keyframes.
            // Rate-limited per subscription to survive pathological peers.
            self.counters.resyncs.fetch_add(1, Ordering::Relaxed);
            let guard_ok = now.saturating_sub(last_resync_ms) >= RESYNC_GUARD_MS;
            if guard_ok {
                if let Some(e) = self.decoders.get_mut(&(agent, req_id)) {
                    e.last_resync_ms = now;
                }
                let period =
                    self.adapt.get(&agent).map(|s| s.period_ms).unwrap_or(self.cfg.period_ms);
                let trigger = self.cfg.trigger_bytes(period);
                api.retune_subscription(agent, req_id, trigger);
                self.counters.retunes.fetch_add(1, Ordering::Relaxed);
                obs().retunes_resync.inc();
            }
            return;
        }
        if self.cfg.mode != MonitorMode::Adaptive {
            return;
        }
        // Adaptive state machine, tighten half: an anomaly on the
        // reconstructed KPIs snaps the period to the configured minimum.
        let Some(state) = self.adapt.get_mut(&agent) else { return };
        if changed || anomaly {
            state.last_change_ms = now;
        }
        if anomaly && state.period_ms > thr.min_period_ms {
            state.period_ms = thr.min_period_ms;
            state.last_change_ms = now;
            obs().retunes_tighten.inc();
            self.retune_agent(api, agent, thr.min_period_ms);
        }
    }

    fn on_tick(&mut self, api: &mut ServerApi, now_ms: u64) {
        if let Some(ttl) = self.cfg.stale_ttl_ms {
            self.db.lock().evict_stale(now_ms, ttl);
        }
        if self.cfg.mode != MonitorMode::Adaptive {
            return;
        }
        // Backoff half: agents whose content has not changed for
        // `quiet_periods` report periods get their period doubled (up to
        // the cap); any change or anomaly resets the quiet clock, and the
        // tighten half snaps them back to the minimum immediately.
        let thr = self.cfg.adaptive;
        let mut backoffs = Vec::new();
        for (&agent, state) in self.adapt.iter_mut() {
            if state.period_ms >= thr.max_period_ms {
                continue;
            }
            let quiet_ms = thr.quiet_periods.max(1) as u64 * state.period_ms.max(1) as u64;
            if now_ms.saturating_sub(state.last_change_ms) >= quiet_ms {
                state.period_ms = (state.period_ms.saturating_mul(2)).min(thr.max_period_ms);
                // Space successive backoffs by a fresh quiet interval.
                state.last_change_ms = now_ms;
                backoffs.push((agent, state.period_ms));
            }
        }
        for (agent, period) in backoffs {
            obs().retunes_backoff.inc();
            self.retune_agent(api, agent, period);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: departed reporters' rows used to live forever — only a
    /// clean agent disconnect pruned them.  TTL eviction must drop rows
    /// that stop being refreshed while keeping live ones untouched.
    #[test]
    fn statsdb_ttl_evicts_stale_rows() {
        let mut db = StatsDb::default();
        db.store(1, oid::MAC_STATS, bytes::Bytes::from_static(b"a"), 1_000);
        db.store(2, oid::MAC_STATS, bytes::Bytes::from_static(b"b"), 1_000);
        db.store(2, oid::RLC_STATS, bytes::Bytes::from_static(b"c"), 1_000);
        // Agent 2 keeps reporting; agent 1 churns out silently.
        db.store(2, oid::MAC_STATS, bytes::Bytes::from_static(b"b2"), 30_000);
        db.store(2, oid::RLC_STATS, bytes::Bytes::from_static(b"c2"), 30_000);
        assert_eq!(db.evict_stale(31_000, 60_000), 0, "nothing stale yet");
        let evicted = db.evict_stale(62_000, 60_000);
        assert_eq!(evicted, 1, "agent 1's abandoned row evicted");
        assert!(db.raw(1, oid::MAC_STATS).is_none());
        assert_eq!(db.raw(2, oid::MAC_STATS).unwrap().as_ref(), b"b2");
        assert_eq!(db.agents(), vec![2]);
        // A refresh resurrects the TTL clock.
        db.store(2, oid::MAC_STATS, bytes::Bytes::from_static(b"b3"), 100_000);
        assert_eq!(db.evict_stale(120_000, 60_000), 1, "only the RLC row aged out");
        assert!(db.raw(2, oid::MAC_STATS).is_some());
    }

    #[test]
    fn statsdb_eviction_disabled_with_long_ttl() {
        let mut db = StatsDb::default();
        db.store(7, oid::PDCP_STATS, bytes::Bytes::from_static(b"x"), 0);
        assert_eq!(db.evict_stale(u64::MAX / 2, u64::MAX / 2), 0);
        assert!(db.raw(7, oid::PDCP_STATS).is_some());
    }
}
