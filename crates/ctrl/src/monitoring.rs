//! The monitoring controller specialization: a statistics iApp "that saves
//! incoming messages to an in-memory data structure, similar to FlexRAN"
//! (paper §5.3).  This is the controller measured in Figs. 8 and 9b.
//!
//! Beyond the paper's full-snapshot baseline, the iApp speaks the adaptive
//! monitoring pipeline: delta-encoded indications (reconstructed here from
//! keyframe + deltas, [`flexric_sm::delta`]), and — in
//! [`MonitorMode::Adaptive`] — server-driven report retuning that backs
//! off quiescent cells and tightens the period when a reconstructed KPI
//! crosses an anomaly threshold.  Retunes ride the regular subscription
//! procedure ([`ServerApi::retune_subscription`]), so they inherit
//! deadlines and retransmits from the endpoint layer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use flexric::server::{AgentId, AgentInfo, IApp, IndicationRef, ServerApi};
use flexric_e2ap::{RanFunctionId, RicRequestId};
use flexric_sm::delta::{DeltaDecoder, DeltaEvent};
use flexric_sm::{
    mac::MacStatsInd, oid, pdcp::PdcpStatsInd, rf, rlc::RlcStatsInd, ReportTrigger, SmCodec,
    SmPayload,
};

/// The in-memory statistics store.
///
/// Unlike FlexRAN's RIB (decoded object trees), the FlexRIC store keeps
/// the *encoded* SM payloads and decodes on access — with the FB encoding
/// the write path is a reference-counted byte copy and reads are lazy,
/// which is the "more efficiently organized internal data structure" of
/// the paper's §5.3.  Under delta monitoring the stored payload is the
/// re-encoded reconstruction, so readers are oblivious to the wire mode.
#[derive(Debug, Default)]
pub struct StatsDb {
    sm_codec: SmCodec,
    /// Latest raw MAC payload per agent.
    pub raw_mac: std::collections::HashMap<AgentId, bytes::Bytes>,
    /// Latest raw RLC payload per agent.
    pub raw_rlc: std::collections::HashMap<AgentId, bytes::Bytes>,
    /// Latest raw PDCP payload per agent.
    pub raw_pdcp: std::collections::HashMap<AgentId, bytes::Bytes>,
}

impl StatsDb {
    /// Decodes the latest MAC snapshot of an agent.
    pub fn mac(&self, agent: AgentId) -> Option<MacStatsInd> {
        MacStatsInd::decode(self.sm_codec, self.raw_mac.get(&agent)?).ok()
    }

    /// Decodes the latest RLC snapshot of an agent.
    pub fn rlc(&self, agent: AgentId) -> Option<RlcStatsInd> {
        RlcStatsInd::decode(self.sm_codec, self.raw_rlc.get(&agent)?).ok()
    }

    /// Decodes the latest PDCP snapshot of an agent.
    pub fn pdcp(&self, agent: AgentId) -> Option<PdcpStatsInd> {
        PdcpStatsInd::decode(self.sm_codec, self.raw_pdcp.get(&agent)?).ok()
    }

    /// Agents with any stored statistics.
    pub fn agents(&self) -> Vec<AgentId> {
        let mut ids: Vec<AgentId> = self.raw_mac.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

/// Global obs counters mirroring [`MonitorCounters`], registered once.
struct MonitorObs {
    indications: flexric_obs::Counter,
    bytes: flexric_obs::Counter,
    retunes_backoff: flexric_obs::Counter,
    retunes_tighten: flexric_obs::Counter,
    retunes_resync: flexric_obs::Counter,
}

fn obs() -> &'static MonitorObs {
    static OBS: std::sync::OnceLock<MonitorObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let retunes = "Server-driven report retunes issued by the monitoring iApp, by reason";
        MonitorObs {
            indications: flexric_obs::counter(
                "flexric_ctrl_indications_total",
                "Indications processed by the monitoring iApp",
            ),
            bytes: flexric_obs::counter(
                "flexric_ctrl_indication_bytes_total",
                "SM payload bytes of indications processed by the monitoring iApp",
            ),
            retunes_backoff: flexric_obs::counter_with(
                "flexric_ctrl_retunes_total",
                &[("dir", "backoff")],
                retunes,
            ),
            retunes_tighten: flexric_obs::counter_with(
                "flexric_ctrl_retunes_total",
                &[("dir", "tighten")],
                retunes,
            ),
            retunes_resync: flexric_obs::counter_with(
                "flexric_ctrl_retunes_total",
                &[("dir", "resync")],
                retunes,
            ),
        }
    })
}

/// Counters for throughput accounting in the scaling experiments.
#[derive(Debug, Default)]
pub struct MonitorCounters {
    /// Indications processed.
    pub indications: AtomicU64,
    /// Wire bytes of processed indications.
    pub bytes: AtomicU64,
    /// Delta frames that failed to decode (wire-level).
    pub decode_errors: AtomicU64,
    /// Delta-stream resyncs (keyframe requested via retune).
    pub resyncs: AtomicU64,
    /// Retunes issued (all reasons).
    pub retunes: AtomicU64,
}

/// How the iApp subscribes to reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MonitorMode {
    /// Full snapshot every period (the paper's baseline).
    #[default]
    Full,
    /// Delta-encoded indications at a fixed period.
    Delta,
    /// Delta-encoded indications plus server-driven period retuning:
    /// back off quiescent agents, tighten on anomaly.
    Adaptive,
}

/// Thresholds and bounds of the adaptive retune state machine.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Tightest period (used under anomaly); the subscription starts at
    /// [`MonitorConfig::period_ms`].
    pub min_period_ms: u32,
    /// Loosest period the backoff may reach.
    pub max_period_ms: u32,
    /// Back off after this many periods without a content change.
    pub quiet_periods: u32,
    /// MAC anomaly: any UE's `dl_backlog_bytes` above this.
    pub backlog_bytes_thr: u64,
    /// RLC anomaly: any bearer's `sojourn_us_avg` above this.
    pub sojourn_us_thr: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_period_ms: 1,
            max_period_ms: 1_000,
            quiet_periods: 8,
            backlog_bytes_thr: 500_000,
            sojourn_us_thr: 300_000,
        }
    }
}

/// Configuration of the monitoring iApp.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Reporting period requested from agents.
    pub period_ms: u32,
    /// SM encoding used by the agents.
    pub sm_codec: SmCodec,
    /// Subscribe to MAC statistics.
    pub mac: bool,
    /// Subscribe to RLC statistics.
    pub rlc: bool,
    /// Subscribe to PDCP statistics.
    pub pdcp: bool,
    /// Decode payloads into the store.  Disabled for pure-throughput
    /// scaling runs where only the dispatch cost is being measured.
    pub store: bool,
    /// Full, delta, or adaptive reporting.
    pub mode: MonitorMode,
    /// Keyframe cadence of delta subscriptions (report opportunities
    /// per full keyframe).
    pub keyframe_every: u32,
    /// Retune state machine (only read in [`MonitorMode::Adaptive`]).
    pub adaptive: AdaptiveConfig,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            period_ms: 1,
            sm_codec: SmCodec::Flatb,
            mac: true,
            rlc: true,
            pdcp: true,
            store: true,
            mode: MonitorMode::Full,
            keyframe_every: 16,
            adaptive: AdaptiveConfig::default(),
        }
    }
}

impl MonitorConfig {
    fn trigger_bytes(&self, period_ms: u32) -> Bytes {
        let trigger = match self.mode {
            MonitorMode::Full => ReportTrigger::every_ms(period_ms),
            MonitorMode::Delta | MonitorMode::Adaptive => {
                ReportTrigger::delta_every_ms(period_ms, self.keyframe_every)
            }
        };
        Bytes::from(trigger.encode(self.sm_codec))
    }
}

/// Per-subscription delta reconstruction state.
enum AnyDecoder {
    Mac(DeltaDecoder<MacStatsInd>),
    Rlc(DeltaDecoder<RlcStatsInd>),
    Pdcp(DeltaDecoder<PdcpStatsInd>),
}

struct DecEntry {
    dec: AnyDecoder,
    /// Storm guard: last time this stream asked the agent for a keyframe.
    last_resync_ms: u64,
}

/// Per-agent adaptive retune state.
struct AdaptState {
    /// Currently requested period.
    period_ms: u32,
    /// Last time any subscription of this agent reported changed content
    /// (or was (re)tuned — retunes reset the quiet clock).
    last_change_ms: u64,
}

/// Minimum spacing of keyframe-resync retunes per subscription.
const RESYNC_GUARD_MS: u64 = 1_000;

/// The statistics iApp.
pub struct MonitorApp {
    cfg: MonitorConfig,
    db: Arc<Mutex<StatsDb>>,
    counters: Arc<MonitorCounters>,
    /// Which SM each of our request ids belongs to.
    req_kind: std::collections::HashMap<(AgentId, RicRequestId), u16>,
    /// Delta reconstruction per subscription (delta/adaptive modes).
    decoders: std::collections::HashMap<(AgentId, RicRequestId), DecEntry>,
    /// Adaptive period state per agent.
    adapt: std::collections::HashMap<AgentId, AdaptState>,
    /// Per-shard reconstruct-time histogram, bound in `on_start`.
    reconstruct_ns: Option<flexric_obs::Histogram>,
}

impl MonitorApp {
    /// Creates the iApp; the returned handles read the store and counters.
    pub fn new(cfg: MonitorConfig) -> (Self, Arc<Mutex<StatsDb>>, Arc<MonitorCounters>) {
        let db = Arc::new(Mutex::new(StatsDb { sm_codec: cfg.sm_codec, ..Default::default() }));
        let counters = Arc::new(MonitorCounters::default());
        (Self::replica(cfg, db.clone(), counters.clone()), db, counters)
    }

    /// Creates another instance feeding the same store and counters — one
    /// per shard on a sharded controller ([`flexric::server::Server::spawn_sharded`]):
    /// each replica subscribes to the agents its shard owns, and the shared
    /// `Arc`s aggregate the combined view.
    pub fn replica(
        cfg: MonitorConfig,
        db: Arc<Mutex<StatsDb>>,
        counters: Arc<MonitorCounters>,
    ) -> Self {
        MonitorApp {
            cfg,
            db,
            counters,
            req_kind: std::collections::HashMap::new(),
            decoders: std::collections::HashMap::new(),
            adapt: std::collections::HashMap::new(),
            reconstruct_ns: None,
        }
    }

    fn delta_mode(&self) -> bool {
        self.cfg.mode != MonitorMode::Full
    }

    /// Issues a retune of every subscription of `agent` to `period_ms`.
    fn retune_agent(&mut self, api: &mut ServerApi, agent: AgentId, period_ms: u32) {
        let trigger = self.cfg.trigger_bytes(period_ms);
        for (&(a, req_id), _) in self.req_kind.iter() {
            if a == agent {
                api.retune_subscription(a, req_id, trigger.clone());
            }
        }
        self.counters.retunes.fetch_add(1, Ordering::Relaxed);
    }
}

/// Re-encodes and stores one reconstructed snapshot, timing the
/// reconstruction (decode + re-encode) into the per-shard histogram.
macro_rules! store_snapshot {
    ($self:ident, $agent:ident, $snap:expr, $slot:ident) => {{
        let t0 = flexric::mono_ns();
        let raw = bytes::Bytes::from($snap.encode($self.cfg.sm_codec));
        $self.db.lock().$slot.insert($agent, raw);
        if let Some(h) = &$self.reconstruct_ns {
            h.record(flexric::mono_ns().saturating_sub(t0));
        }
    }};
}

impl IApp for MonitorApp {
    fn name(&self) -> &str {
        "monitor"
    }

    fn on_start(&mut self, api: &mut ServerApi) {
        // PR 5 convention: every series this iApp can emit is registered
        // at zero from startup, idle or not — including the SM delta
        // series owned by flexric-sm.
        flexric_sm::delta::register_metrics();
        let _ = obs();
        let shard = api.shard().to_string();
        self.reconstruct_ns = Some(flexric_obs::histogram_with(
            "flexric_sm_reconstruct_ns",
            &[("shard", &shard)],
            "Time to reconstruct + re-encode one delta-mode snapshot",
        ));
    }

    fn on_agent_connected(&mut self, api: &mut ServerApi, agent: &AgentInfo) {
        let trigger = self.cfg.trigger_bytes(self.cfg.period_ms);
        let mut want = Vec::new();
        if self.cfg.mac {
            want.push((oid::MAC_STATS, rf::MAC_STATS));
        }
        if self.cfg.rlc {
            want.push((oid::RLC_STATS, rf::RLC_STATS));
        }
        if self.cfg.pdcp {
            want.push((oid::PDCP_STATS, rf::PDCP_STATS));
        }
        for (oid, default_rf) in want {
            // Prefer the advertised function id; fall back to the
            // well-known id for agents with terse definitions.
            let rf_id =
                agent.function_by_oid(oid).map(|f| f.id).unwrap_or(RanFunctionId::new(default_rf));
            if agent.function(rf_id).is_none() {
                continue;
            }
            let req = api.subscribe_report(agent.id, rf_id, trigger.clone());
            self.req_kind.insert((agent.id, req), rf_id.0);
        }
        if self.cfg.mode == MonitorMode::Adaptive {
            self.adapt.insert(
                agent.id,
                AdaptState { period_ms: self.cfg.period_ms, last_change_ms: api.now_ms() },
            );
        }
    }

    fn on_agent_disconnected(&mut self, _api: &mut ServerApi, agent: AgentId) {
        self.req_kind.retain(|(a, _), _| *a != agent);
        self.decoders.retain(|(a, _), _| *a != agent);
        self.adapt.remove(&agent);
        let mut db = self.db.lock();
        db.raw_mac.remove(&agent);
        db.raw_rlc.remove(&agent);
        db.raw_pdcp.remove(&agent);
    }

    fn on_indication(&mut self, api: &mut ServerApi, agent: AgentId, ind: &IndicationRef) {
        self.counters.indications.fetch_add(1, Ordering::Relaxed);
        obs().indications.inc();
        let Ok((_, msg)) = ind.sm_payload() else { return };
        self.counters.bytes.fetch_add(msg.len() as u64, Ordering::Relaxed);
        obs().bytes.add(msg.len() as u64);
        let req_id = ind.req_id();
        let Some(kind) = self.req_kind.get(&(agent, req_id)).copied() else { return };

        if !self.delta_mode() {
            if !self.cfg.store {
                return;
            }
            // Write path: store the encoded payload; decoding happens
            // lazily on read.  `Bytes::copy_from_slice` is the only copy.
            let raw = bytes::Bytes::copy_from_slice(msg);
            match kind {
                k if k == rf::MAC_STATS => {
                    self.db.lock().raw_mac.insert(agent, raw);
                }
                k if k == rf::RLC_STATS => {
                    self.db.lock().raw_rlc.insert(agent, raw);
                }
                k if k == rf::PDCP_STATS => {
                    self.db.lock().raw_pdcp.insert(agent, raw);
                }
                _ => {}
            }
            return;
        }

        // Delta path: reconstruct the snapshot from the frame.
        let codec = self.cfg.sm_codec;
        let entry = self.decoders.entry((agent, req_id)).or_insert_with(|| DecEntry {
            dec: match kind {
                k if k == rf::RLC_STATS => AnyDecoder::Rlc(DeltaDecoder::new()),
                k if k == rf::PDCP_STATS => AnyDecoder::Pdcp(DeltaDecoder::new()),
                _ => AnyDecoder::Mac(DeltaDecoder::new()),
            },
            last_resync_ms: 0,
        });
        let mut changed = false;
        let mut anomaly = false;
        let mut need_keyframe = false;
        let mut decode_err = false;
        let thr = self.cfg.adaptive;
        match &mut entry.dec {
            AnyDecoder::Mac(dec) => match dec.apply(msg, codec) {
                Ok(DeltaEvent::Snapshot { snap, changed: ch, .. }) => {
                    changed = ch;
                    anomaly = snap.ues.iter().any(|u| u.dl_backlog_bytes > thr.backlog_bytes_thr);
                    if self.cfg.store {
                        store_snapshot!(self, agent, snap, raw_mac);
                    }
                }
                Ok(DeltaEvent::NeedKeyframe { .. }) => need_keyframe = true,
                Err(_) => decode_err = true,
            },
            AnyDecoder::Rlc(dec) => match dec.apply(msg, codec) {
                Ok(DeltaEvent::Snapshot { snap, changed: ch, .. }) => {
                    changed = ch;
                    anomaly = snap.bearers.iter().any(|b| b.sojourn_us_avg > thr.sojourn_us_thr);
                    if self.cfg.store {
                        store_snapshot!(self, agent, snap, raw_rlc);
                    }
                }
                Ok(DeltaEvent::NeedKeyframe { .. }) => need_keyframe = true,
                Err(_) => decode_err = true,
            },
            AnyDecoder::Pdcp(dec) => match dec.apply(msg, codec) {
                Ok(DeltaEvent::Snapshot { snap, changed: ch, .. }) => {
                    changed = ch;
                    if self.cfg.store {
                        store_snapshot!(self, agent, snap, raw_pdcp);
                    }
                }
                Ok(DeltaEvent::NeedKeyframe { .. }) => need_keyframe = true,
                Err(_) => decode_err = true,
            },
        }
        if decode_err {
            self.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let now = api.now_ms();
        if need_keyframe {
            // The stream lost sync (restart, loss, divergence): re-issue
            // the subscription so the agent bumps the epoch and keyframes.
            // Rate-limited per subscription to survive pathological peers.
            self.counters.resyncs.fetch_add(1, Ordering::Relaxed);
            let guard_ok = now.saturating_sub(entry.last_resync_ms) >= RESYNC_GUARD_MS;
            if guard_ok {
                if let Some(e) = self.decoders.get_mut(&(agent, req_id)) {
                    e.last_resync_ms = now;
                }
                let period =
                    self.adapt.get(&agent).map(|s| s.period_ms).unwrap_or(self.cfg.period_ms);
                let trigger = self.cfg.trigger_bytes(period);
                api.retune_subscription(agent, req_id, trigger);
                self.counters.retunes.fetch_add(1, Ordering::Relaxed);
                obs().retunes_resync.inc();
            }
            return;
        }
        if self.cfg.mode != MonitorMode::Adaptive {
            return;
        }
        // Adaptive state machine, tighten half: an anomaly on the
        // reconstructed KPIs snaps the period to the configured minimum.
        let Some(state) = self.adapt.get_mut(&agent) else { return };
        if changed || anomaly {
            state.last_change_ms = now;
        }
        if anomaly && state.period_ms > thr.min_period_ms {
            state.period_ms = thr.min_period_ms;
            state.last_change_ms = now;
            obs().retunes_tighten.inc();
            self.retune_agent(api, agent, thr.min_period_ms);
        }
    }

    fn on_tick(&mut self, api: &mut ServerApi, now_ms: u64) {
        if self.cfg.mode != MonitorMode::Adaptive {
            return;
        }
        // Backoff half: agents whose content has not changed for
        // `quiet_periods` report periods get their period doubled (up to
        // the cap); any change or anomaly resets the quiet clock, and the
        // tighten half snaps them back to the minimum immediately.
        let thr = self.cfg.adaptive;
        let mut backoffs = Vec::new();
        for (&agent, state) in self.adapt.iter_mut() {
            if state.period_ms >= thr.max_period_ms {
                continue;
            }
            let quiet_ms = thr.quiet_periods.max(1) as u64 * state.period_ms.max(1) as u64;
            if now_ms.saturating_sub(state.last_change_ms) >= quiet_ms {
                state.period_ms = (state.period_ms.saturating_mul(2)).min(thr.max_period_ms);
                // Space successive backoffs by a fresh quiet interval.
                state.last_change_ms = now_ms;
                backoffs.push((agent, state.period_ms));
            }
        }
        for (agent, period) in backoffs {
            obs().retunes_backoff.inc();
            self.retune_agent(api, agent, period);
        }
    }
}
