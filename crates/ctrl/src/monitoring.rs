//! The monitoring controller specialization: a statistics iApp "that saves
//! incoming messages to an in-memory data structure, similar to FlexRAN"
//! (paper §5.3).  This is the controller measured in Figs. 8 and 9b.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use flexric::server::{AgentId, AgentInfo, IApp, IndicationRef, ServerApi};
use flexric_e2ap::RanFunctionId;
use flexric_sm::{
    mac::MacStatsInd, oid, pdcp::PdcpStatsInd, rf, rlc::RlcStatsInd, ReportTrigger, SmCodec,
    SmPayload,
};

/// The in-memory statistics store.
///
/// Unlike FlexRAN's RIB (decoded object trees), the FlexRIC store keeps
/// the *encoded* SM payloads and decodes on access — with the FB encoding
/// the write path is a reference-counted byte copy and reads are lazy,
/// which is the "more efficiently organized internal data structure" of
/// the paper's §5.3.
#[derive(Debug, Default)]
pub struct StatsDb {
    sm_codec: SmCodec,
    /// Latest raw MAC payload per agent.
    pub raw_mac: std::collections::HashMap<AgentId, bytes::Bytes>,
    /// Latest raw RLC payload per agent.
    pub raw_rlc: std::collections::HashMap<AgentId, bytes::Bytes>,
    /// Latest raw PDCP payload per agent.
    pub raw_pdcp: std::collections::HashMap<AgentId, bytes::Bytes>,
}

impl StatsDb {
    /// Decodes the latest MAC snapshot of an agent.
    pub fn mac(&self, agent: AgentId) -> Option<MacStatsInd> {
        MacStatsInd::decode(self.sm_codec, self.raw_mac.get(&agent)?).ok()
    }

    /// Decodes the latest RLC snapshot of an agent.
    pub fn rlc(&self, agent: AgentId) -> Option<RlcStatsInd> {
        RlcStatsInd::decode(self.sm_codec, self.raw_rlc.get(&agent)?).ok()
    }

    /// Decodes the latest PDCP snapshot of an agent.
    pub fn pdcp(&self, agent: AgentId) -> Option<PdcpStatsInd> {
        PdcpStatsInd::decode(self.sm_codec, self.raw_pdcp.get(&agent)?).ok()
    }

    /// Agents with any stored statistics.
    pub fn agents(&self) -> Vec<AgentId> {
        let mut ids: Vec<AgentId> = self.raw_mac.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

/// Global obs counters mirroring [`MonitorCounters`], registered once.
struct MonitorObs {
    indications: flexric_obs::Counter,
    bytes: flexric_obs::Counter,
}

fn obs() -> &'static MonitorObs {
    static OBS: std::sync::OnceLock<MonitorObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| MonitorObs {
        indications: flexric_obs::counter(
            "flexric_ctrl_indications_total",
            "Indications processed by the monitoring iApp",
        ),
        bytes: flexric_obs::counter(
            "flexric_ctrl_indication_bytes_total",
            "SM payload bytes of indications processed by the monitoring iApp",
        ),
    })
}

/// Counters for throughput accounting in the scaling experiments.
#[derive(Debug, Default)]
pub struct MonitorCounters {
    /// Indications processed.
    pub indications: AtomicU64,
    /// Wire bytes of processed indications.
    pub bytes: AtomicU64,
}

/// Configuration of the monitoring iApp.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Reporting period requested from agents.
    pub period_ms: u32,
    /// SM encoding used by the agents.
    pub sm_codec: SmCodec,
    /// Subscribe to MAC statistics.
    pub mac: bool,
    /// Subscribe to RLC statistics.
    pub rlc: bool,
    /// Subscribe to PDCP statistics.
    pub pdcp: bool,
    /// Decode payloads into the store.  Disabled for pure-throughput
    /// scaling runs where only the dispatch cost is being measured.
    pub store: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            period_ms: 1,
            sm_codec: SmCodec::Flatb,
            mac: true,
            rlc: true,
            pdcp: true,
            store: true,
        }
    }
}

/// The statistics iApp.
pub struct MonitorApp {
    cfg: MonitorConfig,
    db: Arc<Mutex<StatsDb>>,
    counters: Arc<MonitorCounters>,
    /// Which SM each of our request ids belongs to.
    req_kind: std::collections::HashMap<(AgentId, flexric_e2ap::RicRequestId), u16>,
}

impl MonitorApp {
    /// Creates the iApp; the returned handles read the store and counters.
    pub fn new(cfg: MonitorConfig) -> (Self, Arc<Mutex<StatsDb>>, Arc<MonitorCounters>) {
        let db = Arc::new(Mutex::new(StatsDb { sm_codec: cfg.sm_codec, ..Default::default() }));
        let counters = Arc::new(MonitorCounters::default());
        (
            MonitorApp {
                cfg,
                db: db.clone(),
                counters: counters.clone(),
                req_kind: std::collections::HashMap::new(),
            },
            db,
            counters,
        )
    }

    /// Creates another instance feeding the same store and counters — one
    /// per shard on a sharded controller ([`flexric::server::Server::spawn_sharded`]):
    /// each replica subscribes to the agents its shard owns, and the shared
    /// `Arc`s aggregate the combined view.
    pub fn replica(
        cfg: MonitorConfig,
        db: Arc<Mutex<StatsDb>>,
        counters: Arc<MonitorCounters>,
    ) -> Self {
        MonitorApp { cfg, db, counters, req_kind: std::collections::HashMap::new() }
    }
}

impl IApp for MonitorApp {
    fn name(&self) -> &str {
        "monitor"
    }

    fn on_agent_connected(&mut self, api: &mut ServerApi, agent: &AgentInfo) {
        let trigger =
            Bytes::from(ReportTrigger::every_ms(self.cfg.period_ms).encode(self.cfg.sm_codec));
        let mut want = Vec::new();
        if self.cfg.mac {
            want.push((oid::MAC_STATS, rf::MAC_STATS));
        }
        if self.cfg.rlc {
            want.push((oid::RLC_STATS, rf::RLC_STATS));
        }
        if self.cfg.pdcp {
            want.push((oid::PDCP_STATS, rf::PDCP_STATS));
        }
        for (oid, default_rf) in want {
            // Prefer the advertised function id; fall back to the
            // well-known id for agents with terse definitions.
            let rf_id =
                agent.function_by_oid(oid).map(|f| f.id).unwrap_or(RanFunctionId::new(default_rf));
            if agent.function(rf_id).is_none() {
                continue;
            }
            let req = api.subscribe_report(agent.id, rf_id, trigger.clone());
            self.req_kind.insert((agent.id, req), rf_id.0);
        }
    }

    fn on_agent_disconnected(&mut self, _api: &mut ServerApi, agent: AgentId) {
        self.req_kind.retain(|(a, _), _| *a != agent);
        let mut db = self.db.lock();
        db.raw_mac.remove(&agent);
        db.raw_rlc.remove(&agent);
        db.raw_pdcp.remove(&agent);
    }

    fn on_indication(&mut self, _api: &mut ServerApi, agent: AgentId, ind: &IndicationRef) {
        self.counters.indications.fetch_add(1, Ordering::Relaxed);
        obs().indications.inc();
        let Ok((_, msg)) = ind.sm_payload() else { return };
        self.counters.bytes.fetch_add(msg.len() as u64, Ordering::Relaxed);
        obs().bytes.add(msg.len() as u64);
        if !self.cfg.store {
            return;
        }
        let kind = self.req_kind.get(&(agent, ind.req_id())).copied();
        // Write path: store the encoded payload; decoding happens lazily
        // on read.  `Bytes::copy_from_slice` is the only copy.
        let raw = bytes::Bytes::copy_from_slice(msg);
        match kind {
            Some(k) if k == rf::MAC_STATS => {
                self.db.lock().raw_mac.insert(agent, raw);
            }
            Some(k) if k == rf::RLC_STATS => {
                self.db.lock().raw_rlc.insert(agent, raw);
            }
            Some(k) if k == rf::PDCP_STATS => {
                self.db.lock().raw_pdcp.insert(agent, raw);
            }
            _ => {}
        }
    }
}
