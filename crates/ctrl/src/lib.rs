//! Controller specializations and baselines of the FlexRIC reproduction.
//!
//! On top of the SDK (`flexric` core crate) this crate provides:
//!
//! * [`ranfun`] — the "bundle of pre-defined RAN functions" of paper §3:
//!   MAC/RLC/PDCP statistics, slice control, traffic control, RRC events
//!   and hello-world, all bridging to the `flexric-ransim` substrate;
//! * [`monitoring`] — the statistics controller of §5.3 (stats iApp with
//!   an in-memory store);
//! * [`metrics_reader`] — an iApp that periodically publishes snapshots
//!   of the process-wide obs metrics registry;
//! * [`slicing`] — the RAT-unaware slicing controller of §6.1.2 (SC SM +
//!   REST northbound);
//! * [`sla`] / [`sla_solver`] — the closed-loop SLA enforcement xApp:
//!   reads per-slice KPIs from the monitoring store, re-solves NVS
//!   shares against configured targets and pushes them through the SC
//!   SM control path;
//! * [`traffic`] — the flow-based traffic controller of §6.1.1 (TC SM +
//!   broker/REST northbound + the bufferbloat-fighting xApp);
//! * [`recursive`] — the network-virtualization controller of §6.2
//!   (agent-library northbound, Appendix-B NVS virtualization,
//!   MAC-statistics partitioning);
//! * [`relay`] — a relaying controller emulating the two-hop path of the
//!   O-RAN architecture for the Fig. 9a comparison;
//! * [`flexran_emu`] — the FlexRAN baseline (§2): polling controller with
//!   a Protobuf-style single-layer protocol;
//! * [`oran_emu`] — the O-RAN RIC baseline (§5.4): E2 termination with
//!   decode/re-encode, an RMR-style broker hop, and a double-decoding
//!   xApp pipeline;
//! * [`dummy`] — dummy test agents "not connected to any base station"
//!   exporting synthetic statistics (§5.3's scaling experiments).

pub mod dummy;
pub mod flexran_emu;
pub mod metrics_reader;
pub mod monitoring;
pub mod oran_emu;
pub mod ranfun;
pub mod recursive;
pub mod relay;
pub mod sla;
pub mod sla_solver;
pub mod slicing;
pub mod traffic;
