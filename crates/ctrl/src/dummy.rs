//! Dummy test agents: "dummy test agents (not connected to any base
//! station) that export the same statistics as from a real base station,
//! each agent emulating a connection of 32 UEs with a unique default
//! bearer" (paper §5.3).  Used by the controller-scaling experiments
//! (Figs. 8b, 9b) and — in the time-varying configuration — by the
//! adaptive-monitoring cost sweep (Fig. 7b).
//!
//! The functions speak both report modes: full-snapshot subscriptions get
//! one shared encode fanned out to all due controllers, delta-mode
//! subscriptions go through a per-subscription [`ReportSender`]
//! (keyframes, dirty-field deltas, suppression of unchanged snapshots).
//! Server-driven retunes arrive via [`RanFunction::on_subscription_update`]
//! and restart the stream under a fresh epoch.

use std::sync::Arc;

use bytes::Bytes;

use flexric::agent::{AgentCtx, CtrlId, PeriodicSubs, RanFunction, SubscriptionInfo};
use flexric::report::ReportSender;
use flexric_e2ap::{
    Cause, FnVersion, RanFunctionId, RicCause, RicControlRequest, RicRequestId,
    RicSubscriptionRequest,
};
use flexric_ransim::kpi::KpiGen;
use flexric_sm::{
    mac::{MacStatsInd, MacUeStats},
    oid,
    pdcp::{PdcpBearerStats, PdcpStatsInd},
    rlc::{RlcBearerStats, RlcStatsInd},
    ReportMode, ReportTrigger, SmCodec, SmDescriptor, SmPayload,
};

/// Which statistics a dummy function fabricates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DummyKind {
    /// MAC statistics (excluding HARQ, as in the paper).
    Mac,
    /// RLC statistics.
    Rlc,
    /// PDCP statistics.
    Pdcp,
}

/// Typed report path of one dummy function: snapshot + delta streams.
enum Inner {
    Mac(ReportSender<MacStatsInd>),
    Rlc(ReportSender<RlcStatsInd>),
    Pdcp(ReportSender<PdcpStatsInd>),
}

/// A RAN function fabricating statistics for `ue_count` UEs.
pub struct DummyStatsFn {
    kind: DummyKind,
    ue_count: u16,
    sm_codec: SmCodec,
    desc: Arc<SmDescriptor>,
    subs: PeriodicSubs,
    counter: u64,
    /// Time-varying workload; `None` keeps the classic counter-driven
    /// synthetic statistics (every field moves every period).
    kpi: Option<KpiGen>,
    inner: Inner,
}

impl DummyStatsFn {
    /// Creates a dummy function of the given kind (counter-driven
    /// statistics, the Figs. 8b/9b workload).
    pub fn new(kind: DummyKind, ue_count: u16, sm_codec: SmCodec) -> Self {
        let (inner, oid) = match kind {
            DummyKind::Mac => (Inner::Mac(ReportSender::new()), oid::MAC_STATS),
            DummyKind::Rlc => (Inner::Rlc(ReportSender::new()), oid::RLC_STATS),
            DummyKind::Pdcp => (Inner::Pdcp(ReportSender::new()), oid::PDCP_STATS),
        };
        let desc = flexric_sm::registry::global().latest(oid).expect("bundled SM descriptor");
        DummyStatsFn {
            kind,
            ue_count,
            sm_codec,
            desc,
            subs: PeriodicSubs::new(),
            counter: 0,
            kpi: None,
            inner,
        }
    }

    /// Creates a dummy function over the time-varying KPI workload
    /// (quiet/active/burst phases, [`flexric_ransim::kpi::KpiGen`]) — the
    /// Fig. 7b adaptive-monitoring workload.
    pub fn time_varying(kind: DummyKind, ue_count: u16, sm_codec: SmCodec, seed: u64) -> Self {
        let mut f = Self::new(kind, ue_count, sm_codec);
        f.kpi = Some(KpiGen::new(seed, ue_count as usize));
        f
    }

    fn mac_snapshot(&mut self, now_ms: u64) -> MacStatsInd {
        if let Some(g) = &self.kpi {
            return g.mac().clone();
        }
        let c = self.counter;
        let ues = (0..self.ue_count)
            .map(|i| MacUeStats {
                rnti: 0x4601 + i,
                cqi: 15,
                mcs: 20,
                prbs_dl: 3 + (c as u32 + i as u32) % 5,
                prbs_ul: 1,
                tbs_dl_bytes: 1_500 + c % 512,
                tbs_ul_bytes: 300,
                dl_aggr_bytes: c * 1_500,
                ul_aggr_bytes: c * 300,
                bsr: (c % 4_000) as u32,
                dl_backlog_bytes: c % 90_000,
                slice_id: (i % 2) as u32,
                plmn_mcc: 1,
                plmn_mnc: 1,
            })
            .collect();
        MacStatsInd { tstamp_ms: now_ms, cell_prbs: 106, ues }
    }

    fn rlc_snapshot(&mut self, now_ms: u64) -> RlcStatsInd {
        if let Some(g) = &self.kpi {
            return g.rlc().clone();
        }
        let c = self.counter;
        let bearers = (0..self.ue_count)
            .map(|i| RlcBearerStats {
                rnti: 0x4601 + i,
                drb_id: 1,
                tx_pdus: c,
                tx_bytes: c * 1_400,
                retx_pdus: c / 100,
                dropped_pdus: 0,
                buffer_bytes: c % 250_000,
                buffer_pkts: (c % 170) as u32,
                sojourn_us_avg: 1_000 + c % 9_000,
                sojourn_us_max: 2_000 + c % 20_000,
            })
            .collect();
        RlcStatsInd { tstamp_ms: now_ms, bearers }
    }

    fn pdcp_snapshot(&mut self, now_ms: u64) -> PdcpStatsInd {
        if let Some(g) = &self.kpi {
            return g.pdcp().clone();
        }
        let c = self.counter;
        let bearers = (0..self.ue_count)
            .map(|i| PdcpBearerStats {
                rnti: 0x4601 + i,
                drb_id: 1,
                tx_pdus: c,
                tx_bytes: c * 1_400,
                rx_pdus: c / 2,
                rx_bytes: c * 200,
                tx_aggr_bytes: c * 1_400,
                rx_aggr_bytes: c * 200,
                rx_discards: 0,
            })
            .collect();
        PdcpStatsInd { tstamp_ms: now_ms, bearers }
    }

    /// Advances the workload one report period.
    fn advance(&mut self, now_ms: u64) {
        self.counter += 1;
        if let Some(g) = &mut self.kpi {
            g.step(now_ms);
        }
    }

    /// (Re)starts the delta stream of a subscription per its trigger mode.
    fn reset_stream(&mut self, sub: &SubscriptionInfo) {
        let Ok(trigger) = ReportTrigger::decode(self.sm_codec, &sub.trigger) else { return };
        match &mut self.inner {
            Inner::Mac(s) => s.reset(sub, &trigger),
            Inner::Rlc(s) => s.reset(sub, &trigger),
            Inner::Pdcp(s) => s.reset(sub, &trigger),
        }
    }

    /// Retunes the delta stream of a subscription (soft on period-only
    /// changes, keyframe on identical-trigger resyncs and mode changes).
    fn retune_stream(&mut self, sub: &SubscriptionInfo) {
        let Ok(trigger) = ReportTrigger::decode(self.sm_codec, &sub.trigger) else { return };
        match &mut self.inner {
            Inner::Mac(s) => s.retune(sub, &trigger),
            Inner::Rlc(s) => s.retune(sub, &trigger),
            Inner::Pdcp(s) => s.retune(sub, &trigger),
        }
    }
}

impl RanFunction for DummyStatsFn {
    fn id(&self) -> RanFunctionId {
        RanFunctionId::new(self.desc.ran_function_id)
    }
    fn oid(&self) -> String {
        self.desc.oid.clone()
    }
    fn definition(&self) -> Bytes {
        Bytes::from(self.desc.funcdef_bytes(self.sm_codec))
    }
    fn version(&self) -> FnVersion {
        self.desc.version.into()
    }
    fn on_subscription(
        &mut self,
        ctx: &mut AgentCtx,
        sub: &SubscriptionInfo,
        _req: &RicSubscriptionRequest,
    ) -> Result<(), Cause> {
        self.subs.admit(sub, self.sm_codec, ctx.now_ms)?;
        self.reset_stream(sub);
        Ok(())
    }
    fn on_subscription_update(
        &mut self,
        ctx: &mut AgentCtx,
        sub: &SubscriptionInfo,
        _req: &RicSubscriptionRequest,
    ) -> Result<(), Cause> {
        // Retune in place: the period changes without a resubscribe.
        // Period-only changes keep the delta stream alive; an
        // identical-trigger retune is the server asking for a keyframe
        // (it lost or never had a base), as is a mode change.
        self.subs.retune(sub, self.sm_codec, ctx.now_ms)?;
        self.retune_stream(sub);
        Ok(())
    }
    fn on_subscription_delete(&mut self, _ctx: &mut AgentCtx, ctrl: CtrlId, req_id: RicRequestId) {
        self.subs.remove(ctrl, req_id);
        match &mut self.inner {
            Inner::Mac(s) => s.delete(ctrl, req_id),
            Inner::Rlc(s) => s.delete(ctrl, req_id),
            Inner::Pdcp(s) => s.delete(ctrl, req_id),
        }
    }
    fn on_control(
        &mut self,
        _ctx: &mut AgentCtx,
        _ctrl: CtrlId,
        _req: &RicControlRequest,
    ) -> Result<Option<Bytes>, Cause> {
        Err(Cause::Ric(RicCause::ActionNotSupported))
    }
    fn on_tick(&mut self, ctx: &mut AgentCtx) {
        if self.subs.is_empty() {
            return;
        }
        let mut due: Vec<(SubscriptionInfo, ReportTrigger)> = Vec::new();
        self.subs.for_due(ctx.now_ms, |sub, trigger| due.push((sub.clone(), trigger.clone())));
        if due.is_empty() {
            return;
        }
        self.advance(ctx.now_ms);
        let codec = self.sm_codec;
        let now = ctx.now_ms;
        // Full-mode subscriptions share one encode fanned out at flush;
        // delta-mode subscriptions each have their own stream state.
        let fulls: Vec<&SubscriptionInfo> =
            due.iter().filter(|(_, t)| t.mode == ReportMode::Full).map(|(s, _)| s).collect();
        macro_rules! emit {
            ($snap_fn:ident, $sender:ident) => {{
                let snap = self.$snap_fn(now);
                if !fulls.is_empty() {
                    let msg = Bytes::from(snap.encode(codec));
                    ctx.send_indication_multi(fulls.iter().copied(), None, Bytes::new(), msg);
                }
                for (sub, trigger) in &due {
                    if trigger.mode != ReportMode::Full {
                        $sender.send(ctx, sub, trigger, &snap, codec, None, Bytes::new());
                    }
                }
            }};
        }
        // Split the borrow: the sender is moved out of `self.inner` for
        // the duration of the emit so `self.$snap_fn` stays callable.
        let mut inner = std::mem::replace(&mut self.inner, Inner::Mac(ReportSender::new()));
        match &mut inner {
            Inner::Mac(s) => emit!(mac_snapshot, s),
            Inner::Rlc(s) => emit!(rlc_snapshot, s),
            Inner::Pdcp(s) => emit!(pdcp_snapshot, s),
        }
        self.inner = inner;
    }
}

/// The full dummy bundle: MAC + RLC + PDCP with 32 UEs (the paper's
/// configuration).
pub fn dummy_bundle(ue_count: u16, sm_codec: SmCodec) -> Vec<Box<dyn flexric::agent::RanFunction>> {
    vec![
        Box::new(DummyStatsFn::new(DummyKind::Mac, ue_count, sm_codec)),
        Box::new(DummyStatsFn::new(DummyKind::Rlc, ue_count, sm_codec)),
        Box::new(DummyStatsFn::new(DummyKind::Pdcp, ue_count, sm_codec)),
    ]
}

/// The dummy bundle over the time-varying KPI workload (Fig. 7b): same
/// three functions, but quiet/active/burst phases drive the statistics.
pub fn dummy_bundle_time_varying(
    ue_count: u16,
    sm_codec: SmCodec,
    seed: u64,
) -> Vec<Box<dyn flexric::agent::RanFunction>> {
    vec![
        Box::new(DummyStatsFn::time_varying(DummyKind::Mac, ue_count, sm_codec, seed)),
        Box::new(DummyStatsFn::time_varying(DummyKind::Rlc, ue_count, sm_codec, seed)),
        Box::new(DummyStatsFn::time_varying(DummyKind::Pdcp, ue_count, sm_codec, seed)),
    ]
}

/// Only the MAC dummy (the Fig. 9b monitoring workload).
pub fn dummy_mac_only(
    ue_count: u16,
    sm_codec: SmCodec,
) -> Vec<Box<dyn flexric::agent::RanFunction>> {
    vec![Box::new(DummyStatsFn::new(DummyKind::Mac, ue_count, sm_codec))]
}
