//! Dummy test agents: "dummy test agents (not connected to any base
//! station) that export the same statistics as from a real base station,
//! each agent emulating a connection of 32 UEs with a unique default
//! bearer" (paper §5.3).  Used by the controller-scaling experiments
//! (Figs. 8b, 9b).

use bytes::Bytes;

use flexric::agent::{AgentCtx, CtrlId, PeriodicSubs, RanFunction, SubscriptionInfo};
use flexric_e2ap::{
    Cause, RanFunctionId, RicCause, RicControlRequest, RicRequestId, RicSubscriptionRequest,
};
use flexric_sm::{
    mac::{MacStatsInd, MacUeStats},
    oid,
    pdcp::{PdcpBearerStats, PdcpStatsInd},
    rf,
    rlc::{RlcBearerStats, RlcStatsInd},
    RanFuncDef, SmCodec, SmPayload,
};

/// Which statistics a dummy function fabricates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DummyKind {
    /// MAC statistics (excluding HARQ, as in the paper).
    Mac,
    /// RLC statistics.
    Rlc,
    /// PDCP statistics.
    Pdcp,
}

/// A RAN function fabricating statistics for `ue_count` UEs.
pub struct DummyStatsFn {
    kind: DummyKind,
    ue_count: u16,
    sm_codec: SmCodec,
    subs: PeriodicSubs,
    counter: u64,
}

impl DummyStatsFn {
    /// Creates a dummy function of the given kind.
    pub fn new(kind: DummyKind, ue_count: u16, sm_codec: SmCodec) -> Self {
        DummyStatsFn { kind, ue_count, sm_codec, subs: PeriodicSubs::new(), counter: 0 }
    }

    fn payload(&mut self, now_ms: u64) -> Bytes {
        self.counter += 1;
        let c = self.counter;
        match self.kind {
            DummyKind::Mac => {
                let ues = (0..self.ue_count)
                    .map(|i| MacUeStats {
                        rnti: 0x4601 + i,
                        cqi: 15,
                        mcs: 20,
                        prbs_dl: 3 + (c as u32 + i as u32) % 5,
                        prbs_ul: 1,
                        tbs_dl_bytes: 1_500 + c % 512,
                        tbs_ul_bytes: 300,
                        dl_aggr_bytes: c * 1_500,
                        ul_aggr_bytes: c * 300,
                        bsr: (c % 4_000) as u32,
                        dl_backlog_bytes: c % 90_000,
                        slice_id: (i % 2) as u32,
                        plmn_mcc: 1,
                        plmn_mnc: 1,
                    })
                    .collect();
                Bytes::from(
                    MacStatsInd { tstamp_ms: now_ms, cell_prbs: 106, ues }.encode(self.sm_codec),
                )
            }
            DummyKind::Rlc => {
                let bearers = (0..self.ue_count)
                    .map(|i| RlcBearerStats {
                        rnti: 0x4601 + i,
                        drb_id: 1,
                        tx_pdus: c,
                        tx_bytes: c * 1_400,
                        retx_pdus: c / 100,
                        dropped_pdus: 0,
                        buffer_bytes: c % 250_000,
                        buffer_pkts: (c % 170) as u32,
                        sojourn_us_avg: 1_000 + c % 9_000,
                        sojourn_us_max: 2_000 + c % 20_000,
                    })
                    .collect();
                Bytes::from(RlcStatsInd { tstamp_ms: now_ms, bearers }.encode(self.sm_codec))
            }
            DummyKind::Pdcp => {
                let bearers = (0..self.ue_count)
                    .map(|i| PdcpBearerStats {
                        rnti: 0x4601 + i,
                        drb_id: 1,
                        tx_pdus: c,
                        tx_bytes: c * 1_400,
                        rx_pdus: c / 2,
                        rx_bytes: c * 200,
                        tx_aggr_bytes: c * 1_400,
                        rx_aggr_bytes: c * 200,
                        rx_discards: 0,
                    })
                    .collect();
                Bytes::from(PdcpStatsInd { tstamp_ms: now_ms, bearers }.encode(self.sm_codec))
            }
        }
    }
}

impl RanFunction for DummyStatsFn {
    fn id(&self) -> RanFunctionId {
        RanFunctionId::new(match self.kind {
            DummyKind::Mac => rf::MAC_STATS,
            DummyKind::Rlc => rf::RLC_STATS,
            DummyKind::Pdcp => rf::PDCP_STATS,
        })
    }
    fn oid(&self) -> String {
        match self.kind {
            DummyKind::Mac => oid::MAC_STATS.to_owned(),
            DummyKind::Rlc => oid::RLC_STATS.to_owned(),
            DummyKind::Pdcp => oid::PDCP_STATS.to_owned(),
        }
    }
    fn definition(&self) -> Bytes {
        Bytes::from(
            RanFuncDef::simple("DUMMY-STATS", "synthetic statistics for scaling tests")
                .encode(self.sm_codec),
        )
    }
    fn on_subscription(
        &mut self,
        ctx: &mut AgentCtx,
        sub: &SubscriptionInfo,
        _req: &RicSubscriptionRequest,
    ) -> Result<(), Cause> {
        self.subs.admit(sub, self.sm_codec, ctx.now_ms)
    }
    fn on_subscription_delete(&mut self, _ctx: &mut AgentCtx, ctrl: CtrlId, req_id: RicRequestId) {
        self.subs.remove(ctrl, req_id);
    }
    fn on_control(
        &mut self,
        _ctx: &mut AgentCtx,
        _ctrl: CtrlId,
        _req: &RicControlRequest,
    ) -> Result<Option<Bytes>, Cause> {
        Err(Cause::Ric(RicCause::ActionNotSupported))
    }
    fn on_tick(&mut self, ctx: &mut AgentCtx) {
        if self.subs.is_empty() {
            return;
        }
        let mut due: Vec<SubscriptionInfo> = Vec::new();
        self.subs.for_due(ctx.now_ms, |sub, _| due.push(sub.clone()));
        if due.is_empty() {
            return;
        }
        let msg = self.payload(ctx.now_ms);
        // All due subscriptions carry the same payload: subscriptions with
        // identical request ids fan out from a single encode at flush.
        ctx.send_indication_multi(due.iter(), None, Bytes::new(), msg);
    }
}

/// The full dummy bundle: MAC + RLC + PDCP with 32 UEs (the paper's
/// configuration).
pub fn dummy_bundle(ue_count: u16, sm_codec: SmCodec) -> Vec<Box<dyn flexric::agent::RanFunction>> {
    vec![
        Box::new(DummyStatsFn::new(DummyKind::Mac, ue_count, sm_codec)),
        Box::new(DummyStatsFn::new(DummyKind::Rlc, ue_count, sm_codec)),
        Box::new(DummyStatsFn::new(DummyKind::Pdcp, ue_count, sm_codec)),
    ]
}

/// Only the MAC dummy (the Fig. 9b monitoring workload).
pub fn dummy_mac_only(
    ue_count: u16,
    sm_codec: SmCodec,
) -> Vec<Box<dyn flexric::agent::RanFunction>> {
    vec![Box::new(DummyStatsFn::new(DummyKind::Mac, ue_count, sm_codec))]
}
