//! O-RAN RIC baseline emulation (paper §5.4).
//!
//! The reference O-RAN RIC is a micro-service platform: agents terminate
//! at an "E2 termination" component, which routes messages over the RMR
//! library to xApps running in separate containers.  The paper attributes
//! its costs to structural decisions, which this emulation reproduces
//! *mechanically* rather than with constants:
//!
//! * **two hops** — every message crosses E2 termination and an RMR/TCP
//!   hop before reaching the xApp (Fig. 9a RTT);
//! * **double decode** — "indication messages are decoded twice, once in
//!   the E2 termination, and the xApp" (Fig. 9b CPU): the E2T decodes the
//!   full ASN.1 PDU, re-encodes it for RMR, and the xApp decodes it again;
//! * **platform footprint** — ~15 always-on platform components
//!   (databases, monitors, managers) holding resident memory and doing
//!   periodic work (Fig. 9b memory / Table 2 size); modelled by
//!   [`spawn_platform`] with configurable per-component residency —
//!   a synthetic substitute documented in DESIGN.md;
//! * **discovery by polling** — xApps poll the platform to discover
//!   agents instead of being notified ([`OranXapp`] polls E2T).
//!
//! The E2AP encoding is ASN.1 PER throughout, as mandated by O-RAN.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use tokio::sync::mpsc;

use flexric::server::{
    AgentId, CtrlOutcome, IApp, IndicationRef, Server, ServerApi, ServerConfig, SubOutcome,
};
use flexric_codec::E2apCodec;
use flexric_e2ap::*;
use flexric_transport::{connect, listen, TransportAddr, WireMsg};

/// RMR message types (a subset of the real RMR ids).
pub mod rmr {
    /// RIC indication.
    pub const INDICATION: u32 = 12050;
    /// Subscription request.
    pub const SUB_REQ: u32 = 12010;
    /// Subscription response.
    pub const SUB_RESP: u32 = 12011;
    /// Subscription failure.
    pub const SUB_FAIL: u32 = 12012;
    /// Control request.
    pub const CTRL_REQ: u32 = 12040;
    /// Control acknowledge.
    pub const CTRL_ACK: u32 = 12041;
    /// Control failure.
    pub const CTRL_FAIL: u32 = 12042;
    /// xApp asks E2T for connected agents (discovery polling).
    pub const AGENT_QUERY: u32 = 30000;
    /// E2T answers with an agent list (one agent id per u16-BE pair).
    pub const AGENT_LIST: u32 = 30001;
}

/// Messages from the RMR reader into the E2T iApp.
enum FromXapp {
    Pdu(AgentId, E2apPdu),
    Query,
}

/// The E2 termination iApp.
struct E2tApp {
    codec: E2apCodec,
    rmr_tx: mpsc::UnboundedSender<WireMsg>,
    agents: Vec<AgentId>,
}

impl E2tApp {
    fn send_north(&self, ppid: u32, agent: AgentId, pdu: &E2apPdu) {
        // The E2T re-encodes the PDU for the RMR leg — the first half of
        // the double-encode the paper measures.
        let buf = Bytes::from(self.codec.encode(pdu));
        let _ = self.rmr_tx.send(WireMsg { stream: agent as u16, ppid, payload: buf });
    }
}

impl IApp for E2tApp {
    fn name(&self) -> &str {
        "e2t"
    }

    fn on_agent_connected(&mut self, _api: &mut ServerApi, agent: &flexric::server::AgentInfo) {
        self.agents.push(agent.id);
    }

    fn on_agent_disconnected(&mut self, _api: &mut ServerApi, agent: AgentId) {
        self.agents.retain(|a| *a != agent);
    }

    fn on_indication(&mut self, _api: &mut ServerApi, agent: AgentId, ind: &IndicationRef) {
        // ASN.1 path: the dispatch already decoded the PDU (decode #1).
        if let Ok(owned) = ind.to_owned_indication() {
            self.send_north(rmr::INDICATION, agent, &E2apPdu::RicIndication(owned));
        }
    }

    fn on_subscription_outcome(&mut self, _api: &mut ServerApi, agent: AgentId, out: &SubOutcome) {
        match out {
            SubOutcome::Admitted(r) => {
                self.send_north(rmr::SUB_RESP, agent, &E2apPdu::RicSubscriptionResponse(r.clone()))
            }
            SubOutcome::Failed(f) => {
                self.send_north(rmr::SUB_FAIL, agent, &E2apPdu::RicSubscriptionFailure(f.clone()))
            }
            SubOutcome::TimedOut { req_id, ran_function, .. }
            | SubOutcome::ConnectionLost { req_id, ran_function } => self.send_north(
                rmr::SUB_FAIL,
                agent,
                &E2apPdu::RicSubscriptionFailure(RicSubscriptionFailure {
                    req_id: *req_id,
                    ran_function: *ran_function,
                    cause: Cause::Transport(TransportCause::Unspecified),
                }),
            ),
        }
    }

    fn on_control_outcome(&mut self, _api: &mut ServerApi, agent: AgentId, out: &CtrlOutcome) {
        match out {
            CtrlOutcome::Ack(a) => {
                self.send_north(rmr::CTRL_ACK, agent, &E2apPdu::RicControlAcknowledge(a.clone()))
            }
            CtrlOutcome::Failed(f) => {
                self.send_north(rmr::CTRL_FAIL, agent, &E2apPdu::RicControlFailure(f.clone()))
            }
            CtrlOutcome::TimedOut { req_id, ran_function }
            | CtrlOutcome::ConnectionLost { req_id, ran_function } => self.send_north(
                rmr::CTRL_FAIL,
                agent,
                &E2apPdu::RicControlFailure(RicControlFailure {
                    req_id: *req_id,
                    ran_function: *ran_function,
                    call_process_id: None,
                    cause: Cause::Transport(TransportCause::Unspecified),
                    outcome: None,
                }),
            ),
        }
    }

    fn on_custom(&mut self, api: &mut ServerApi, msg: Box<dyn std::any::Any + Send>) {
        let Ok(from) = msg.downcast::<FromXapp>() else { return };
        match *from {
            FromXapp::Query => {
                let mut payload = Vec::with_capacity(self.agents.len() * 2);
                for a in &self.agents {
                    payload.extend_from_slice(&(*a as u16).to_be_bytes());
                }
                let _ = self.rmr_tx.send(WireMsg {
                    stream: 0,
                    ppid: rmr::AGENT_LIST,
                    payload: payload.into(),
                });
            }
            FromXapp::Pdu(agent, pdu) => {
                match &pdu {
                    E2apPdu::RicSubscriptionRequest(req) => {
                        api.claim_request_id(agent, req.req_id);
                    }
                    E2apPdu::RicControlRequest(req) => {
                        api.claim_control_id(agent, req.req_id);
                        api.claim_request_id(agent, req.req_id);
                    }
                    _ => {}
                }
                api.send_pdu(agent, pdu);
            }
        }
    }
}

/// Spawns the E2 termination: a south E2 server plus an RMR connection to
/// the xApp at `rmr_xapp_addr`.  Returns the south listen address.
pub async fn run_e2term(
    south_listen: TransportAddr,
    rmr_xapp_addr: TransportAddr,
) -> io::Result<TransportAddr> {
    let codec = E2apCodec::Asn1Per; // O-RAN mandates ASN.1 PER.
    let (rmr_tx, mut rmr_out) = mpsc::unbounded_channel::<WireMsg>();
    let mut cfg = ServerConfig::new(GlobalRicId::new(Plmn::TEST, 0xE2), south_listen);
    cfg.codec = codec;
    cfg.tick_ms = None;
    let app = E2tApp { codec, rmr_tx, agents: Vec::new() };
    let handle = Server::spawn(cfg, vec![Box::new(app)]).await?;
    let south_addr = handle.addrs[0].clone();

    let rmr_conn = connect(&rmr_xapp_addr).await?;
    let (mut tx_half, mut rx_half) = rmr_conn.split();
    tokio::spawn(async move {
        while let Some(msg) = rmr_out.recv().await {
            if tx_half.send(msg).await.is_err() {
                break;
            }
        }
    });
    let h = handle.clone();
    tokio::spawn(async move {
        while let Ok(Some(msg)) = rx_half.recv().await {
            if msg.ppid == rmr::AGENT_QUERY {
                h.to_iapp("e2t", Box::new(FromXapp::Query));
                continue;
            }
            // Decode the xApp's ASN.1 PDU at the E2T (validation cost),
            // then the server re-encodes it toward the agent.
            let agent = msg.stream as AgentId;
            if let Ok(pdu) = codec.decode(&msg.payload) {
                h.to_iapp("e2t", Box::new(FromXapp::Pdu(agent, pdu)));
            }
        }
    });
    Ok(south_addr)
}

/// Counters of a running O-RAN-style xApp.
#[derive(Debug, Default)]
pub struct OranXappCounters {
    /// Indications fully decoded (the second decode).
    pub indications: AtomicU64,
    /// Wire bytes received over RMR.
    pub rx_bytes: AtomicU64,
    /// Discovery polls issued.
    pub polls: AtomicU64,
}

/// A monitoring xApp in the O-RAN style: discovers agents by polling,
/// subscribes through the E2T, decodes every indication (decode #2).
pub struct OranXapp {
    /// RMR listen address (E2T connects here).
    pub rmr_addr: TransportAddr,
    /// Counters.
    pub counters: Arc<OranXappCounters>,
    /// RTT samples (ns) of HW pings sent with [`OranXapp::ping`].
    pub rtts: Arc<Mutex<Vec<u64>>>,
    /// Agents discovered through polling.
    pub discovered: Arc<Mutex<Vec<AgentId>>>,
    cmd: mpsc::UnboundedSender<XappCmd>,
}

enum XappCmd {
    Ping { agent: AgentId, payload_size: usize },
    Subscribe { agent: AgentId, ran_function: RanFunctionId, period_ms: u32 },
}

impl OranXapp {
    /// Binds the RMR listener and starts the xApp loop.  `sm_codec` is the
    /// service-model encoding used on payloads.
    pub async fn spawn(
        rmr_listen: TransportAddr,
        sm_codec: flexric_sm::SmCodec,
    ) -> io::Result<OranXapp> {
        use flexric_sm::SmPayload;
        let codec = E2apCodec::Asn1Per;
        let mut listener = listen(&rmr_listen).await?;
        let rmr_addr = listener.local_addr()?;
        let counters = Arc::new(OranXappCounters::default());
        let rtts = Arc::new(Mutex::new(Vec::new()));
        let discovered = Arc::new(Mutex::new(Vec::new()));
        let (cmd_tx, mut cmd_rx) = mpsc::unbounded_channel::<XappCmd>();

        let c = counters.clone();
        let r = rtts.clone();
        let d = discovered.clone();
        tokio::spawn(async move {
            let Ok(conn) = listener.accept().await else { return };
            let (mut tx, mut rx) = conn.split();
            // Discovery by polling: ask for agents every 100 ms.
            let mut poll_iv = tokio::time::interval(std::time::Duration::from_millis(100));
            poll_iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
            let mut next_instance = 0u16;
            let mut outstanding_ping: HashMap<RicRequestId, u64> = HashMap::new();
            let mut seq = 0u32;
            loop {
                tokio::select! {
                    _ = poll_iv.tick() => {
                        c.polls.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(WireMsg { stream: 0, ppid: rmr::AGENT_QUERY, payload: Bytes::new() }).await;
                    }
                    cmd = cmd_rx.recv() => match cmd {
                        Some(XappCmd::Subscribe { agent, ran_function, period_ms }) => {
                            next_instance += 1;
                            let req_id = RicRequestId::new(1000, next_instance);
                            let trigger = Bytes::from(
                                flexric_sm::ReportTrigger::every_ms(period_ms).encode(sm_codec));
                            let pdu = E2apPdu::RicSubscriptionRequest(RicSubscriptionRequest {
                                req_id,
                                ran_function,
                                event_trigger: trigger,
                                actions: vec![RicActionToBeSetup {
                                    id: RicActionId(0),
                                    action_type: RicActionType::Report,
                                    definition: None,
                                    subsequent: None,
                                }],
                            });
                            // Encode at the xApp (encode #1 of the double encode).
                            let buf = Bytes::from(codec.encode(&pdu));
                            let _ = tx.send(WireMsg { stream: agent as u16, ppid: rmr::SUB_REQ, payload: buf }).await;
                        }
                        Some(XappCmd::Ping { agent, payload_size }) => {
                            next_instance += 1;
                            seq += 1;
                            let req_id = RicRequestId::new(1000, next_instance);
                            let t0 = flexric::mono_ns();
                            let ping = flexric_sm::hw::HwPing::sized(seq, t0, payload_size);
                            let pdu = E2apPdu::RicControlRequest(RicControlRequest {
                                req_id,
                                ran_function: RanFunctionId::new(flexric_sm::rf::HW),
                                call_process_id: None,
                                header: Bytes::new(),
                                message: Bytes::from(ping.encode(sm_codec)),
                                ack_request: None,
                            });
                            let buf = Bytes::from(codec.encode(&pdu));
                            outstanding_ping.insert(req_id, t0);
                            let _ = tx.send(WireMsg { stream: agent as u16, ppid: rmr::CTRL_REQ, payload: buf }).await;
                        }
                        None => break,
                    },
                    inbound = rx.recv() => match inbound {
                        Ok(Some(msg)) => {
                            c.rx_bytes.fetch_add(msg.payload.len() as u64, Ordering::Relaxed);
                            match msg.ppid {
                                rmr::INDICATION => {
                                    // The second full decode of the pipeline.
                                    if let Ok(E2apPdu::RicIndication(ind)) = codec.decode(&msg.payload) {
                                        c.indications.fetch_add(1, Ordering::Relaxed);
                                        if let Some(t0) = outstanding_ping.remove(&ind.req_id) {
                                            r.lock().push(flexric::mono_ns() - t0);
                                        } else {
                                            // Monitoring: decode the SM payload too.
                                            let _ = flexric_sm::mac::MacStatsInd::decode(sm_codec, &ind.message);
                                        }
                                    }
                                }
                                rmr::AGENT_LIST => {
                                    let mut list = d.lock();
                                    list.clear();
                                    for pair in msg.payload.chunks_exact(2) {
                                        list.push(u16::from_be_bytes([pair[0], pair[1]]) as AgentId);
                                    }
                                }
                                rmr::SUB_RESP | rmr::SUB_FAIL | rmr::CTRL_ACK | rmr::CTRL_FAIL => {
                                    let _ = codec.decode(&msg.payload); // validate
                                }
                                _ => {}
                            }
                        }
                        Ok(None) | Err(_) => break,
                    },
                }
            }
        });

        Ok(OranXapp { rmr_addr, counters, rtts, discovered, cmd: cmd_tx })
    }

    /// Sends an HW ping through the full pipeline.
    pub fn ping(&self, agent: AgentId, payload_size: usize) {
        let _ = self.cmd.send(XappCmd::Ping { agent, payload_size });
    }

    /// Subscribes to a RAN function through the E2T.
    pub fn subscribe(&self, agent: AgentId, ran_function: RanFunctionId, period_ms: u32) {
        let _ = self.cmd.send(XappCmd::Subscribe { agent, ran_function, period_ms });
    }
}

/// Spawns `components` platform-component tasks, each holding
/// `resident_mb` MiB of touched memory and serializing a metrics snapshot
/// every 100 ms — the synthetic stand-in for the RIC platform's 15
/// containers (databases, managers, monitors).  Returns a guard; dropping
/// it stops the components.
pub fn spawn_platform(components: usize, resident_mb: usize) -> PlatformGuard {
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    for i in 0..components {
        let stop = stop.clone();
        tokio::spawn(async move {
            // Resident state, touched so it is actually committed.
            let mut state = vec![0u8; resident_mb * 1024 * 1024];
            for (j, b) in state.iter_mut().enumerate() {
                *b = (i + j) as u8;
            }
            let mut iv = tokio::time::interval(std::time::Duration::from_millis(100));
            iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
            let mut epoch = 0u64;
            loop {
                iv.tick().await;
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                epoch += 1;
                // Prometheus-style metrics serialization.
                let metrics = serde_json::json!({
                    "component": i,
                    "epoch": epoch,
                    "heap_bytes": state.len(),
                    "checksum": state[(epoch as usize * 4096) % state.len()],
                });
                std::hint::black_box(serde_json::to_vec(&metrics).unwrap_or_default());
            }
        });
    }
    PlatformGuard { stop }
}

/// Stops the platform components when dropped.
pub struct PlatformGuard {
    stop: Arc<std::sync::atomic::AtomicBool>,
}

impl Drop for PlatformGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexric::agent::{Agent, AgentConfig};
    use flexric_sm::SmCodec;
    use std::time::Duration;

    #[tokio::test]
    async fn full_pipeline_ping_and_monitoring() {
        let sm_codec = SmCodec::Asn1Per;
        // xApp listens for RMR.
        let xapp = OranXapp::spawn(TransportAddr::Mem("oran-rmr".into()), sm_codec).await.unwrap();
        // E2T connects xApp and listens south.
        let south = run_e2term(TransportAddr::Mem("oran-south".into()), xapp.rmr_addr.clone())
            .await
            .unwrap();
        // Agent with HW + dummy MAC stats.
        let mut acfg = AgentConfig::new(GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 5), south);
        acfg.codec = E2apCodec::Asn1Per;
        acfg.tick_ms = Some(1);
        let mut fns = crate::dummy::dummy_mac_only(32, sm_codec);
        fns.push(Box::new(crate::ranfun::HwFn::new(sm_codec)));
        let _agent = Agent::spawn(acfg, fns).await.unwrap();

        tokio::time::sleep(Duration::from_millis(200)).await;
        // Subscribe to MAC stats and ping.
        xapp.subscribe(0, RanFunctionId::new(flexric_sm::rf::MAC_STATS), 1);
        tokio::time::sleep(Duration::from_millis(100)).await;
        for _ in 0..5 {
            xapp.ping(0, 100);
            tokio::time::sleep(Duration::from_millis(20)).await;
        }
        for _ in 0..100 {
            if xapp.rtts.lock().len() >= 5 && xapp.counters.indications.load(Ordering::Relaxed) > 50
            {
                break;
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        assert!(xapp.rtts.lock().len() >= 5, "pings answered: {}", xapp.rtts.lock().len());
        assert!(
            xapp.counters.indications.load(Ordering::Relaxed) > 50,
            "monitoring indications flowed: {}",
            xapp.counters.indications.load(Ordering::Relaxed)
        );
        assert!(xapp.counters.polls.load(Ordering::Relaxed) >= 1, "discovery polling happened");
    }

    #[tokio::test]
    async fn platform_components_start_and_stop() {
        let guard = spawn_platform(3, 1);
        tokio::time::sleep(Duration::from_millis(250)).await;
        drop(guard);
        // Nothing to assert beyond "does not wedge": components exit on drop.
    }
}
