//! FlatBuffers-style zero-copy encoding primitives.
//!
//! A from-scratch implementation of the scheme that gives Google FlatBuffers
//! its performance profile: messages are graphs of *tables* whose fields are
//! located through a *vtable*, so any field of a received message can be
//! read directly from the raw bytes in O(depth) pointer chasing — no decode
//! pass, no allocation.  This is the property behind the paper's Fig. 8b
//! (the controller's subscription lookup over FB-encoded E2AP uses ~4× less
//! CPU than over ASN.1) and behind the 30–40 B per-message overhead noted in
//! §5.2.
//!
//! ## Wire layout (little-endian throughout)
//!
//! ```text
//! message  := magic:u16 (0x5246 "FR") version:u16 root:u32   table*
//! table    := vtable_pos:u32  field-data…
//! vtable   := nslots:u16  (rel_off:u16)*        ; rel_off from table start,
//!                                               ; 0 = field absent
//! blob     := len:u32 data…                     ; strings and byte arrays
//! vector   := len:u32 elem…                     ; scalars or u32 offsets
//! ```
//!
//! Unlike real FlatBuffers we build front-to-back and do not deduplicate
//! vtables; neither affects the read path semantics.

use crate::error::{CodecError, Result};
use crate::sink::ByteSink;

/// Magic value identifying an FB-encoded message.
pub const FB_MAGIC: u16 = 0x5246;
/// Format version.
pub const FB_VERSION: u16 = 1;
/// Size of the message header (magic + version + root offset).
pub const FB_HEADER_LEN: usize = 8;

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Value of one table slot while building.
#[derive(Debug, Clone, Copy)]
enum SlotVal {
    U8(u8),
    U16(u16),
    U32(u32),
    U64(u64),
    /// Absolute offset of out-of-line data (blob, vector, subtable).
    Off(u32),
}

impl SlotVal {
    fn width(&self) -> usize {
        match self {
            SlotVal::U8(_) => 1,
            SlotVal::U16(_) => 2,
            SlotVal::U32(_) | SlotVal::Off(_) => 4,
            SlotVal::U64(_) => 8,
        }
    }
}

/// Builder for an FB-style message.
///
/// Out-of-line children (blobs, vectors, subtables) must be written before
/// the table that references them, as with real FlatBuffers.
#[derive(Debug)]
pub struct FbBuilder<B: ByteSink = Vec<u8>> {
    buf: B,
    /// Buffer length at construction: offsets are relative to this point,
    /// so a message appended after existing content (e.g. into a reused
    /// scratch buffer) is self-contained once split off.
    base: usize,
}

impl Default for FbBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl FbBuilder {
    /// Creates a builder with the message header reserved.
    pub fn new() -> Self {
        Self::with_capacity(128)
    }

    /// Creates a builder with a payload capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        Self::over(Vec::with_capacity(FB_HEADER_LEN + cap))
    }

    /// Sets the root table and returns the finished message bytes.
    pub fn finish(self, root: u32) -> Vec<u8> {
        self.finish_buf(root)
    }
}

impl<B: ByteSink> FbBuilder<B> {
    /// Wraps an existing buffer, appending the message header after its
    /// current contents.  Recover the buffer with [`Self::finish_buf`].
    pub fn over(mut buf: B) -> Self {
        let base = buf.len();
        buf.put_slice(&FB_MAGIC.to_le_bytes());
        buf.put_slice(&FB_VERSION.to_le_bytes());
        buf.put_slice(&0u32.to_le_bytes()); // root patched in finish
        FbBuilder { buf, base }
    }

    /// Current write position, relative to the message start.
    fn pos(&self) -> u32 {
        (self.buf.len() - self.base) as u32
    }

    /// Writes a blob (byte string), returning its message-relative offset.
    pub fn blob(&mut self, data: &[u8]) -> u32 {
        let pos = self.pos();
        self.buf.put_slice(&(data.len() as u32).to_le_bytes());
        self.buf.put_slice(data);
        pos
    }

    /// Writes a UTF-8 string blob, returning its message-relative offset.
    pub fn string(&mut self, s: &str) -> u32 {
        self.blob(s.as_bytes())
    }

    /// Writes a vector of message-relative offsets (tables / blobs).
    pub fn vec_off(&mut self, offs: &[u32]) -> u32 {
        let pos = self.pos();
        self.buf.put_slice(&(offs.len() as u32).to_le_bytes());
        for o in offs {
            self.buf.put_slice(&o.to_le_bytes());
        }
        pos
    }

    /// Writes a vector of u16 scalars.
    pub fn vec_u16(&mut self, vals: &[u16]) -> u32 {
        let pos = self.pos();
        self.buf.put_slice(&(vals.len() as u32).to_le_bytes());
        for v in vals {
            self.buf.put_slice(&v.to_le_bytes());
        }
        pos
    }

    /// Writes a vector of u32 scalars.
    pub fn vec_u32(&mut self, vals: &[u32]) -> u32 {
        let pos = self.pos();
        self.buf.put_slice(&(vals.len() as u32).to_le_bytes());
        for v in vals {
            self.buf.put_slice(&v.to_le_bytes());
        }
        pos
    }

    /// Writes a vector of u64 scalars.
    pub fn vec_u64(&mut self, vals: &[u64]) -> u32 {
        let pos = self.pos();
        self.buf.put_slice(&(vals.len() as u32).to_le_bytes());
        for v in vals {
            self.buf.put_slice(&v.to_le_bytes());
        }
        pos
    }

    /// Finalizes a table built with [`TableBuilder`], returning its offset.
    fn end_table(&mut self, slots: &[(u16, SlotVal)]) -> u32 {
        let table_pos = self.pos();
        // Table data: vtable pointer placeholder + fields in slot order.
        self.buf.put_slice(&0u32.to_le_bytes());
        let nslots = slots.iter().map(|(s, _)| *s + 1).max().unwrap_or(0);
        let mut rel = [0u16; 64];
        debug_assert!(nslots as usize <= rel.len(), "table has too many slots");
        let rel = &mut rel[..(nslots as usize).min(64)];
        for (slot, val) in slots {
            let off = (self.pos() - table_pos) as u16;
            rel[*slot as usize] = off;
            match val {
                SlotVal::U8(v) => self.buf.push_byte(*v),
                SlotVal::U16(v) => self.buf.put_slice(&v.to_le_bytes()),
                SlotVal::U32(v) | SlotVal::Off(v) => self.buf.put_slice(&v.to_le_bytes()),
                SlotVal::U64(v) => self.buf.put_slice(&v.to_le_bytes()),
            }
        }
        // VTable.
        let vt_pos = self.pos();
        self.buf.put_slice(&nslots.to_le_bytes());
        for r in rel.iter() {
            self.buf.put_slice(&r.to_le_bytes());
        }
        // Patch vtable pointer.
        let tp = self.base + table_pos as usize;
        self.buf.as_mut_slice()[tp..tp + 4].copy_from_slice(&vt_pos.to_le_bytes());
        table_pos
    }

    /// Sets the root table and returns the underlying buffer, with the
    /// message appended after whatever the buffer held at construction.
    pub fn finish_buf(mut self, root: u32) -> B {
        let rp = self.base + 4;
        self.buf.as_mut_slice()[rp..rp + 4].copy_from_slice(&root.to_le_bytes());
        self.buf
    }
}

/// Collects the slots of one table before writing it.
///
/// Slots may be pushed in any order; absent optional fields are simply not
/// pushed.
#[derive(Debug, Default)]
pub struct TableBuilder {
    slots: Vec<(u16, SlotVal)>,
}

impl TableBuilder {
    /// Creates an empty table builder.
    pub fn new() -> Self {
        TableBuilder { slots: Vec::with_capacity(16) }
    }

    /// Sets a u8 scalar slot.
    pub fn u8(&mut self, slot: u16, v: u8) -> &mut Self {
        self.slots.push((slot, SlotVal::U8(v)));
        self
    }

    /// Sets a u16 scalar slot.
    pub fn u16(&mut self, slot: u16, v: u16) -> &mut Self {
        self.slots.push((slot, SlotVal::U16(v)));
        self
    }

    /// Sets a u32 scalar slot.
    pub fn u32(&mut self, slot: u16, v: u32) -> &mut Self {
        self.slots.push((slot, SlotVal::U32(v)));
        self
    }

    /// Sets a u64 scalar slot.
    pub fn u64(&mut self, slot: u16, v: u64) -> &mut Self {
        self.slots.push((slot, SlotVal::U64(v)));
        self
    }

    /// Sets an offset slot (blob / vector / subtable).
    pub fn off(&mut self, slot: u16, off: u32) -> &mut Self {
        self.slots.push((slot, SlotVal::Off(off)));
        self
    }

    /// Sets an offset slot if present.
    pub fn opt_off(&mut self, slot: u16, off: Option<u32>) -> &mut Self {
        if let Some(o) = off {
            self.off(slot, o);
        }
        self
    }

    /// Writes the table into `b`, returning its message-relative offset.
    pub fn end<B: ByteSink>(self, b: &mut FbBuilder<B>) -> u32 {
        b.end_table(&self.slots)
    }

    /// Serialized size of the table data + vtable this builder will emit.
    pub fn encoded_len(&self) -> usize {
        let nslots = self.slots.iter().map(|(s, _)| *s + 1).max().unwrap_or(0) as usize;
        4 + self.slots.iter().map(|(_, v)| v.width()).sum::<usize>() + 2 + 2 * nslots
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

fn read_u16(buf: &[u8], pos: usize) -> Result<u16> {
    let sl = buf.get(pos..pos + 2).ok_or(CodecError::Truncated { what: "fb u16" })?;
    Ok(u16::from_le_bytes([sl[0], sl[1]]))
}

fn read_u32(buf: &[u8], pos: usize) -> Result<u32> {
    let sl = buf.get(pos..pos + 4).ok_or(CodecError::Truncated { what: "fb u32" })?;
    Ok(u32::from_le_bytes([sl[0], sl[1], sl[2], sl[3]]))
}

fn read_u64(buf: &[u8], pos: usize) -> Result<u64> {
    let sl = buf.get(pos..pos + 8).ok_or(CodecError::Truncated { what: "fb u64" })?;
    let mut a = [0u8; 8];
    a.copy_from_slice(sl);
    Ok(u64::from_le_bytes(a))
}

/// A parsed (but not decoded!) FB message: a view over raw bytes.
#[derive(Debug, Clone, Copy)]
pub struct FbView<'a> {
    buf: &'a [u8],
}

impl<'a> FbView<'a> {
    /// Validates the header and wraps `buf`.
    pub fn parse(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < FB_HEADER_LEN {
            return Err(CodecError::Truncated { what: "fb header" });
        }
        if read_u16(buf, 0)? != FB_MAGIC {
            return Err(CodecError::Malformed { what: "fb magic" });
        }
        if read_u16(buf, 2)? != FB_VERSION {
            return Err(CodecError::Malformed { what: "fb version" });
        }
        Ok(FbView { buf })
    }

    /// Returns the root table.
    pub fn root(&self) -> Result<FbTable<'a>> {
        let root = read_u32(self.buf, 4)? as usize;
        FbTable::at(self.buf, root)
    }
}

/// Zero-copy accessor for one table.
#[derive(Debug, Clone, Copy)]
pub struct FbTable<'a> {
    buf: &'a [u8],
    pos: usize,
    vt_pos: usize,
    nslots: u16,
}

impl<'a> FbTable<'a> {
    fn at(buf: &'a [u8], pos: usize) -> Result<Self> {
        let vt_pos = read_u32(buf, pos)? as usize;
        let nslots = read_u16(buf, vt_pos)?;
        Ok(FbTable { buf, pos, vt_pos, nslots })
    }

    /// Byte position of a slot's field data, or `None` if absent.
    fn field_pos(&self, slot: u16) -> Result<Option<usize>> {
        if slot >= self.nslots {
            return Ok(None);
        }
        let rel = read_u16(self.buf, self.vt_pos + 2 + 2 * slot as usize)?;
        if rel == 0 {
            return Ok(None);
        }
        Ok(Some(self.pos + rel as usize))
    }

    /// Reads an optional u8 slot.
    pub fn u8(&self, slot: u16) -> Result<Option<u8>> {
        Ok(match self.field_pos(slot)? {
            None => None,
            Some(p) => Some(*self.buf.get(p).ok_or(CodecError::Truncated { what: "fb u8 field" })?),
        })
    }

    /// Reads an optional u16 slot.
    pub fn u16(&self, slot: u16) -> Result<Option<u16>> {
        self.field_pos(slot)?.map(|p| read_u16(self.buf, p)).transpose()
    }

    /// Reads an optional u32 slot.
    pub fn u32(&self, slot: u16) -> Result<Option<u32>> {
        self.field_pos(slot)?.map(|p| read_u32(self.buf, p)).transpose()
    }

    /// Reads an optional u64 slot.
    pub fn u64(&self, slot: u16) -> Result<Option<u64>> {
        self.field_pos(slot)?.map(|p| read_u64(self.buf, p)).transpose()
    }

    /// Reads a required u8 slot.
    pub fn req_u8(&self, slot: u16, what: &'static str) -> Result<u8> {
        self.u8(slot)?.ok_or(CodecError::Malformed { what })
    }

    /// Reads a required u16 slot.
    pub fn req_u16(&self, slot: u16, what: &'static str) -> Result<u16> {
        self.u16(slot)?.ok_or(CodecError::Malformed { what })
    }

    /// Reads a required u32 slot.
    pub fn req_u32(&self, slot: u16, what: &'static str) -> Result<u32> {
        self.u32(slot)?.ok_or(CodecError::Malformed { what })
    }

    /// Reads a required u64 slot.
    pub fn req_u64(&self, slot: u16, what: &'static str) -> Result<u64> {
        self.u64(slot)?.ok_or(CodecError::Malformed { what })
    }

    /// Reads an optional blob slot without copying.
    pub fn bytes(&self, slot: u16) -> Result<Option<&'a [u8]>> {
        let Some(p) = self.field_pos(slot)? else { return Ok(None) };
        let off = read_u32(self.buf, p)? as usize;
        let len = read_u32(self.buf, off)? as usize;
        self.buf
            .get(off + 4..off + 4 + len)
            .map(Some)
            .ok_or(CodecError::Truncated { what: "fb blob" })
    }

    /// Reads a required blob slot.
    pub fn req_bytes(&self, slot: u16, what: &'static str) -> Result<&'a [u8]> {
        self.bytes(slot)?.ok_or(CodecError::Malformed { what })
    }

    /// Reads an optional UTF-8 string slot.
    pub fn string(&self, slot: u16) -> Result<Option<&'a str>> {
        match self.bytes(slot)? {
            None => Ok(None),
            Some(raw) => std::str::from_utf8(raw).map(Some).map_err(|_| CodecError::BadUtf8),
        }
    }

    /// Reads an optional subtable slot.
    pub fn table(&self, slot: u16) -> Result<Option<FbTable<'a>>> {
        let Some(p) = self.field_pos(slot)? else { return Ok(None) };
        let off = read_u32(self.buf, p)? as usize;
        FbTable::at(self.buf, off).map(Some)
    }

    /// Reads a required subtable slot.
    pub fn req_table(&self, slot: u16, what: &'static str) -> Result<FbTable<'a>> {
        self.table(slot)?.ok_or(CodecError::Malformed { what })
    }

    /// Reads an optional vector slot.
    pub fn vector(&self, slot: u16) -> Result<Option<FbVector<'a>>> {
        let Some(p) = self.field_pos(slot)? else { return Ok(None) };
        let off = read_u32(self.buf, p)? as usize;
        let len = read_u32(self.buf, off)? as usize;
        Ok(Some(FbVector { buf: self.buf, pos: off + 4, len }))
    }

    /// Reads a vector slot, treating absence as an empty vector.
    pub fn vector_or_empty(&self, slot: u16) -> Result<FbVector<'a>> {
        Ok(self.vector(slot)?.unwrap_or(FbVector { buf: self.buf, pos: 0, len: 0 }))
    }
}

/// Zero-copy accessor for a vector.
#[derive(Debug, Clone, Copy)]
pub struct FbVector<'a> {
    buf: &'a [u8],
    pos: usize,
    len: usize,
}

impl<'a> FbVector<'a> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn check(&self, i: usize) -> Result<()> {
        if i >= self.len {
            Err(CodecError::Malformed { what: "fb vector index" })
        } else {
            Ok(())
        }
    }

    /// Element `i` of a u16 vector.
    pub fn u16_at(&self, i: usize) -> Result<u16> {
        self.check(i)?;
        read_u16(self.buf, self.pos + 2 * i)
    }

    /// Element `i` of a u32 vector.
    pub fn u32_at(&self, i: usize) -> Result<u32> {
        self.check(i)?;
        read_u32(self.buf, self.pos + 4 * i)
    }

    /// Element `i` of a u64 vector.
    pub fn u64_at(&self, i: usize) -> Result<u64> {
        self.check(i)?;
        read_u64(self.buf, self.pos + 8 * i)
    }

    /// Element `i` of an offset vector, resolved as a table.
    pub fn table_at(&self, i: usize) -> Result<FbTable<'a>> {
        self.check(i)?;
        let off = read_u32(self.buf, self.pos + 4 * i)? as usize;
        FbTable::at(self.buf, off)
    }

    /// Element `i` of an offset vector, resolved as a blob.
    pub fn bytes_at(&self, i: usize) -> Result<&'a [u8]> {
        self.check(i)?;
        let off = read_u32(self.buf, self.pos + 4 * i)? as usize;
        let len = read_u32(self.buf, off)? as usize;
        self.buf.get(off + 4..off + 4 + len).ok_or(CodecError::Truncated { what: "fb blob elem" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut b = FbBuilder::new();
        let mut t = TableBuilder::new();
        t.u8(0, 7).u16(1, 300).u32(2, 70_000).u64(3, u64::MAX - 1);
        let root = t.end(&mut b);
        let msg = b.finish(root);
        let v = FbView::parse(&msg).unwrap();
        let root = v.root().unwrap();
        assert_eq!(root.u8(0).unwrap(), Some(7));
        assert_eq!(root.u16(1).unwrap(), Some(300));
        assert_eq!(root.u32(2).unwrap(), Some(70_000));
        assert_eq!(root.u64(3).unwrap(), Some(u64::MAX - 1));
        assert_eq!(root.u8(4).unwrap(), None); // beyond vtable
    }

    #[test]
    fn absent_slots_are_none() {
        let mut b = FbBuilder::new();
        let mut t = TableBuilder::new();
        t.u8(0, 1).u8(5, 2); // slots 1..=4 absent
        let root = t.end(&mut b);
        let msg = b.finish(root);
        let root = FbView::parse(&msg).unwrap().root().unwrap();
        assert_eq!(root.u8(0).unwrap(), Some(1));
        for s in 1..5 {
            assert_eq!(root.u8(s).unwrap(), None);
        }
        assert_eq!(root.u8(5).unwrap(), Some(2));
        assert!(root.req_u8(3, "missing").is_err());
    }

    #[test]
    fn blob_and_string_roundtrip() {
        let mut b = FbBuilder::new();
        let blob = b.blob(b"\x00\x01\x02payload");
        let s = b.string("h\u{e9}llo");
        let mut t = TableBuilder::new();
        t.off(0, blob).off(1, s);
        let root = t.end(&mut b);
        let msg = b.finish(root);
        let root = FbView::parse(&msg).unwrap().root().unwrap();
        assert_eq!(root.bytes(0).unwrap(), Some(&b"\x00\x01\x02payload"[..]));
        assert_eq!(root.string(1).unwrap(), Some("h\u{e9}llo"));
        assert_eq!(root.bytes(2).unwrap(), None);
    }

    #[test]
    fn nested_tables_and_vectors() {
        let mut b = FbBuilder::new();
        let mut children = Vec::new();
        for i in 0..5u16 {
            let mut t = TableBuilder::new();
            t.u16(0, i * 10);
            children.push(t.end(&mut b));
        }
        let vec_off = b.vec_off(&children);
        let nums = b.vec_u64(&[1, 2, 3]);
        let mut root_t = TableBuilder::new();
        root_t.off(0, vec_off).off(1, nums);
        let root = root_t.end(&mut b);
        let msg = b.finish(root);

        let root = FbView::parse(&msg).unwrap().root().unwrap();
        let v = root.vector(0).unwrap().unwrap();
        assert_eq!(v.len(), 5);
        for i in 0..5 {
            assert_eq!(v.table_at(i).unwrap().u16(0).unwrap(), Some(i as u16 * 10));
        }
        let nums = root.vector(1).unwrap().unwrap();
        assert_eq!(nums.len(), 3);
        assert_eq!(nums.u64_at(2).unwrap(), 3);
        assert!(nums.u64_at(3).is_err());
    }

    #[test]
    fn vector_or_empty_on_absent() {
        let mut b = FbBuilder::new();
        let root = TableBuilder::new().end(&mut b);
        let msg = b.finish(root);
        let root = FbView::parse(&msg).unwrap().root().unwrap();
        let v = root.vector_or_empty(0).unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = FbBuilder::new();
        let root = TableBuilder::new().end(&mut b);
        let mut msg = b.finish(root);
        msg[0] = 0xAA;
        assert!(matches!(FbView::parse(&msg), Err(CodecError::Malformed { .. })));
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(FbView::parse(&[0x46]), Err(CodecError::Truncated { .. })));
        let mut b = FbBuilder::new();
        let root = TableBuilder::new().end(&mut b);
        let msg = b.finish(root);
        // Chop the vtable off.
        let v = FbView::parse(&msg[..FB_HEADER_LEN + 2]);
        // Parsing the header may succeed, but resolving the root must fail.
        if let Ok(v) = v {
            assert!(v.root().is_err());
        }
    }

    #[test]
    fn corrupted_offset_rejected_not_panicking() {
        let mut b = FbBuilder::new();
        let blob = b.blob(b"x");
        let mut t = TableBuilder::new();
        t.off(0, blob);
        let root = t.end(&mut b);
        let mut msg = b.finish(root);
        // Scribble over everything after the header with 0xFF.
        let n = msg.len();
        for byte in &mut msg[FB_HEADER_LEN..n] {
            *byte = 0xFF;
        }
        let view = FbView::parse(&msg);
        if let Ok(view) = view {
            if let Ok(root) = view.root() {
                let _ = root.bytes(0); // must not panic
            }
        }
    }

    #[test]
    fn builder_over_bytesmut_appends_self_contained_message() {
        // Build the same message owned and appended after existing bytes;
        // the appended region must be byte-identical and parse standalone.
        fn build<B: ByteSink>(mut b: FbBuilder<B>) -> B {
            let blob = b.blob(b"payload");
            let mut t = TableBuilder::new();
            t.u8(0, 7).u16(1, 300).off(2, blob);
            let root = t.end(&mut b);
            b.finish_buf(root)
        }
        let owned: Vec<u8> = build(FbBuilder::new());

        let mut scratch = bytes::BytesMut::new();
        scratch.extend_from_slice(b"prefix");
        let scratch = build(FbBuilder::over(scratch));
        assert_eq!(&scratch[..6], b"prefix");
        assert_eq!(&scratch[6..], &owned[..]);

        let root = FbView::parse(&scratch[6..]).unwrap().root().unwrap();
        assert_eq!(root.u16(1).unwrap(), Some(300));
        assert_eq!(root.bytes(2).unwrap(), Some(&b"payload"[..]));
    }

    #[test]
    fn per_message_overhead_is_tens_of_bytes() {
        // The paper observes 30-40 B FB overhead per message; our header +
        // vtable + offsets land in the same band for a small table.
        let mut b = FbBuilder::new();
        let payload = b.blob(&[0u8; 100]);
        let mut t = TableBuilder::new();
        t.u8(0, 1).u16(1, 2).u16(2, 3).u16(3, 4).off(4, payload);
        let root = t.end(&mut b);
        let msg = b.finish(root);
        let overhead = msg.len() - 100;
        assert!((20..=60).contains(&overhead), "overhead {overhead} outside expected FB band");
    }
}
