//! Aligned-PER-style codec for the full E2AP message set.
//!
//! Every message of [`flexric_e2ap::E2apPdu`] is encoded with the bit-level
//! primitives of [`crate::per`].  Decoding is necessarily a full sequential
//! pass: no field can be located without decoding everything before it —
//! the defining cost of PER that the paper's Figs. 7/8b measure.

use bytes::{Bytes, BytesMut};
use flexric_e2ap::*;

use crate::error::{CodecError, Result};
use crate::per::{BitReader, BitWriter};
use crate::sink::ByteSink;

const NODE_ID_MAX: u64 = (1 << 36) - 1;
const RIC_ID_MAX: u64 = 0xF_FFFF;

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

fn put_plmn<B: ByteSink>(w: &mut BitWriter<B>, p: &Plmn) {
    w.put_constrained(p.mcc as u64, 0, 999);
    w.put_constrained(p.mnc as u64, 0, 999);
    w.put_constrained(p.mnc_digits as u64, 2, 3);
}

fn get_plmn(r: &mut BitReader) -> Result<Plmn> {
    let mcc = r.get_constrained(0, 999)? as u16;
    let mnc = r.get_constrained(0, 999)? as u16;
    let digits = r.get_constrained(2, 3)? as u8;
    Ok(Plmn::new(mcc, mnc, digits))
}

fn put_node_id<B: ByteSink>(w: &mut BitWriter<B>, id: &GlobalE2NodeId) {
    put_plmn(w, &id.plmn);
    w.put_constrained(id.node_type as u64, 0, 6);
    w.put_constrained(id.node_id, 0, NODE_ID_MAX);
}

fn get_node_id(r: &mut BitReader) -> Result<GlobalE2NodeId> {
    let plmn = get_plmn(r)?;
    let nt = r.get_constrained(0, 6)? as u8;
    let node_type = E2NodeType::from_u8(nt)
        .ok_or(CodecError::BadDiscriminant { what: "node type", value: nt as u64 })?;
    let node_id = r.get_constrained(0, NODE_ID_MAX)?;
    Ok(GlobalE2NodeId::new(plmn, node_type, node_id))
}

fn put_ric_id<B: ByteSink>(w: &mut BitWriter<B>, id: &GlobalRicId) {
    put_plmn(w, &id.plmn);
    w.put_constrained(id.ric_id as u64, 0, RIC_ID_MAX);
}

fn get_ric_id(r: &mut BitReader) -> Result<GlobalRicId> {
    let plmn = get_plmn(r)?;
    let ric_id = r.get_constrained(0, RIC_ID_MAX)? as u32;
    Ok(GlobalRicId::new(plmn, ric_id))
}

fn put_req_id<B: ByteSink>(w: &mut BitWriter<B>, id: &RicRequestId) {
    w.put_bits(id.requestor as u64, 16);
    w.put_bits(id.instance as u64, 16);
}

fn get_req_id(r: &mut BitReader) -> Result<RicRequestId> {
    let requestor = r.get_bits(16)? as u16;
    let instance = r.get_bits(16)? as u16;
    Ok(RicRequestId::new(requestor, instance))
}

fn put_ran_func<B: ByteSink>(w: &mut BitWriter<B>, id: &RanFunctionId) {
    w.put_constrained(id.0 as u64, 0, RanFunctionId::MAX as u64);
}

fn get_ran_func(r: &mut BitReader) -> Result<RanFunctionId> {
    Ok(RanFunctionId::new(r.get_constrained(0, RanFunctionId::MAX as u64)? as u16))
}

fn put_cause<B: ByteSink>(w: &mut BitWriter<B>, c: &Cause) {
    w.put_constrained(c.group() as u64, 0, 4);
    w.put_constrained(c.value() as u64, 0, 15);
}

fn get_cause(r: &mut BitReader) -> Result<Cause> {
    let group = r.get_constrained(0, 4)? as u8;
    let value = r.get_constrained(0, 15)? as u8;
    Cause::from_parts(group, value).ok_or(CodecError::BadDiscriminant {
        what: "cause",
        value: ((group as u64) << 8) | value as u64,
    })
}

fn put_opt_u32<B: ByteSink>(w: &mut BitWriter<B>, v: &Option<u32>) {
    w.put_bit(v.is_some());
    if let Some(v) = v {
        w.put_uint(*v as u64);
    }
}

fn get_opt_u32(r: &mut BitReader) -> Result<Option<u32>> {
    if r.get_bit()? {
        Ok(Some(r.get_uint()? as u32))
    } else {
        Ok(None)
    }
}

fn put_opt_bytes<B: ByteSink>(w: &mut BitWriter<B>, v: &Option<Bytes>) {
    w.put_bit(v.is_some());
    if let Some(v) = v {
        w.put_octets(v);
    }
}

fn get_opt_bytes(r: &mut BitReader) -> Result<Option<Bytes>> {
    if r.get_bit()? {
        Ok(Some(crate::borrow::mk_bytes(r.get_octets()?)))
    } else {
        Ok(None)
    }
}

fn put_fn_item<B: ByteSink>(w: &mut BitWriter<B>, f: &RanFunctionItem) {
    put_ran_func(w, &f.id);
    w.put_octets(&f.definition);
    w.put_bits(f.revision as u64, 16);
    w.put_utf8(&f.oid);
    // SM version as an optional trailer: the default (1.0) encodes as
    // absent, so pre-versioning captures and peers stay wire-compatible.
    let versioned = f.version != FnVersion::V1;
    w.put_bit(versioned);
    if versioned {
        w.put_bits(f.version.major as u64, 16);
        w.put_bits(f.version.minor as u64, 16);
    }
}

fn get_fn_item(r: &mut BitReader) -> Result<RanFunctionItem> {
    let id = get_ran_func(r)?;
    let definition = crate::borrow::mk_bytes(r.get_octets()?);
    let revision = r.get_bits(16)? as u16;
    let oid = r.get_utf8()?;
    let version = if r.get_bit()? {
        FnVersion::new(r.get_bits(16)? as u16, r.get_bits(16)? as u16)
    } else {
        FnVersion::V1
    };
    Ok(RanFunctionItem { id, definition, revision, oid, version })
}

fn put_component<B: ByteSink>(w: &mut BitWriter<B>, c: &E2NodeComponentConfig) {
    w.put_constrained(c.interface as u64, 0, 6);
    w.put_utf8(&c.component_id);
    w.put_octets(&c.request_part);
    w.put_octets(&c.response_part);
}

fn get_component(r: &mut BitReader) -> Result<E2NodeComponentConfig> {
    let i = r.get_constrained(0, 6)? as u8;
    let interface = InterfaceType::from_u8(i)
        .ok_or(CodecError::BadDiscriminant { what: "interface", value: i as u64 })?;
    let component_id = r.get_utf8()?;
    let request_part = crate::borrow::mk_bytes(r.get_octets()?);
    let response_part = crate::borrow::mk_bytes(r.get_octets()?);
    Ok(E2NodeComponentConfig { interface, component_id, request_part, response_part })
}

fn put_interface_id<B: ByteSink>(w: &mut BitWriter<B>, (i, id): &(InterfaceType, String)) {
    w.put_constrained(*i as u64, 0, 6);
    w.put_utf8(id);
}

fn get_interface_id(r: &mut BitReader) -> Result<(InterfaceType, String)> {
    let i = r.get_constrained(0, 6)? as u8;
    let interface = InterfaceType::from_u8(i)
        .ok_or(CodecError::BadDiscriminant { what: "interface", value: i as u64 })?;
    Ok((interface, r.get_utf8()?))
}

fn put_tnl<B: ByteSink>(w: &mut BitWriter<B>, t: &TnlInfo) {
    w.put_utf8(&t.address);
    w.put_bits(t.port as u64, 16);
    w.put_constrained(t.usage as u64, 0, 2);
}

fn get_tnl(r: &mut BitReader) -> Result<TnlInfo> {
    let address = r.get_utf8()?;
    let port = r.get_bits(16)? as u16;
    let u = r.get_constrained(0, 2)? as u8;
    let usage = TnlUsage::from_u8(u)
        .ok_or(CodecError::BadDiscriminant { what: "tnl usage", value: u as u64 })?;
    Ok(TnlInfo { address, port, usage })
}

fn put_seq<T, B: ByteSink>(w: &mut BitWriter<B>, items: &[T], f: impl Fn(&mut BitWriter<B>, &T)) {
    w.put_length(items.len());
    for item in items {
        f(w, item);
    }
}

fn get_seq<T>(r: &mut BitReader, f: impl Fn(&mut BitReader) -> Result<T>) -> Result<Vec<T>> {
    let n = r.get_length()?;
    // Defensive cap: no E2AP sequence is anywhere near this long; prevents
    // allocation bombs from corrupted length determinants.
    if n > 1 << 20 {
        return Err(CodecError::Malformed { what: "sequence too long" });
    }
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(f(r)?);
    }
    Ok(out)
}

fn put_action<B: ByteSink>(w: &mut BitWriter<B>, a: &RicActionToBeSetup) {
    w.put_bits(a.id.0 as u64, 8);
    w.put_constrained(a.action_type as u64, 0, 2);
    put_opt_bytes(w, &a.definition);
    w.put_bit(a.subsequent.is_some());
    if let Some(sub) = &a.subsequent {
        w.put_constrained(sub.kind as u64, 0, 1);
        w.put_uint(sub.wait_ms as u64);
    }
}

fn get_action(r: &mut BitReader) -> Result<RicActionToBeSetup> {
    let id = RicActionId(r.get_bits(8)? as u8);
    let at = r.get_constrained(0, 2)? as u8;
    let action_type = RicActionType::from_u8(at)
        .ok_or(CodecError::BadDiscriminant { what: "action type", value: at as u64 })?;
    let definition = get_opt_bytes(r)?;
    let subsequent = if r.get_bit()? {
        let k = r.get_constrained(0, 1)? as u8;
        let kind = SubsequentActionType::from_u8(k)
            .ok_or(CodecError::BadDiscriminant { what: "subsequent action", value: k as u64 })?;
        let wait_ms = r.get_uint()? as u32;
        Some(RicSubsequentAction { kind, wait_ms })
    } else {
        None
    };
    Ok(RicActionToBeSetup { id, action_type, definition, subsequent })
}

// ---------------------------------------------------------------------------
// PDU encode
// ---------------------------------------------------------------------------

/// Encodes a PDU into aligned-PER-style bytes.
pub fn encode(pdu: &E2apPdu) -> Vec<u8> {
    encode_pdu(pdu, BitWriter::with_capacity(64))
}

/// Encodes a PDU into a reusable scratch buffer, appending after any
/// existing content (e.g. a reserved frame header).
///
/// Byte-for-byte identical to [`encode`]; both delegate to the same
/// generic body.  Steady-state this allocates nothing: freeze the result
/// with `split().freeze()` and the buffer's capacity is reclaimed once
/// the frozen handles drop.
pub fn encode_into(pdu: &E2apPdu, out: &mut BytesMut) {
    let w = BitWriter::over(std::mem::take(out));
    *out = encode_pdu(pdu, w);
}

fn encode_pdu<B: ByteSink>(pdu: &E2apPdu, mut w: BitWriter<B>) -> B {
    w.put_constrained(pdu.msg_type() as u64, 0, 25);
    match pdu {
        E2apPdu::E2SetupRequest(m) => {
            w.put_bits(m.transaction_id as u64, 8);
            put_node_id(&mut w, &m.global_node);
            put_seq(&mut w, &m.ran_functions, put_fn_item);
            put_seq(&mut w, &m.component_configs, put_component);
        }
        E2apPdu::E2SetupResponse(m) => {
            w.put_bits(m.transaction_id as u64, 8);
            put_ric_id(&mut w, &m.global_ric);
            put_seq(&mut w, &m.accepted, |w, id| put_ran_func(w, id));
            put_seq(&mut w, &m.rejected, |w, (id, c)| {
                put_ran_func(w, id);
                put_cause(w, c);
            });
        }
        E2apPdu::E2SetupFailure(m) => {
            w.put_bits(m.transaction_id as u64, 8);
            put_cause(&mut w, &m.cause);
            put_opt_u32(&mut w, &m.time_to_wait_ms);
        }
        E2apPdu::ResetRequest(m) => {
            w.put_bits(m.transaction_id as u64, 8);
            put_cause(&mut w, &m.cause);
        }
        E2apPdu::ResetResponse(m) => {
            w.put_bits(m.transaction_id as u64, 8);
        }
        E2apPdu::ErrorIndication(m) => {
            w.put_bit(m.req_id.is_some());
            if let Some(id) = &m.req_id {
                put_req_id(&mut w, id);
            }
            w.put_bit(m.ran_function.is_some());
            if let Some(f) = &m.ran_function {
                put_ran_func(&mut w, f);
            }
            w.put_bit(m.cause.is_some());
            if let Some(c) = &m.cause {
                put_cause(&mut w, c);
            }
        }
        E2apPdu::E2NodeConfigUpdate(m) => {
            w.put_bits(m.transaction_id as u64, 8);
            put_seq(&mut w, &m.additions, put_component);
            put_seq(&mut w, &m.updates, put_component);
            put_seq(&mut w, &m.removals, put_interface_id);
        }
        E2apPdu::E2NodeConfigUpdateAck(m) => {
            w.put_bits(m.transaction_id as u64, 8);
            put_seq(&mut w, &m.accepted, put_interface_id);
            put_seq(&mut w, &m.rejected, |w, (i, id, c)| {
                put_interface_id(w, &(*i, id.clone()));
                put_cause(w, c);
            });
        }
        E2apPdu::E2NodeConfigUpdateFailure(m) => {
            w.put_bits(m.transaction_id as u64, 8);
            put_cause(&mut w, &m.cause);
            put_opt_u32(&mut w, &m.time_to_wait_ms);
        }
        E2apPdu::E2ConnectionUpdate(m) => {
            w.put_bits(m.transaction_id as u64, 8);
            put_seq(&mut w, &m.add, put_tnl);
            put_seq(&mut w, &m.remove, put_tnl);
            put_seq(&mut w, &m.modify, put_tnl);
        }
        E2apPdu::E2ConnectionUpdateAck(m) => {
            w.put_bits(m.transaction_id as u64, 8);
            put_seq(&mut w, &m.setup, put_tnl);
            put_seq(&mut w, &m.failed, |w, (t, c)| {
                put_tnl(w, t);
                put_cause(w, c);
            });
        }
        E2apPdu::E2ConnectionUpdateFailure(m) => {
            w.put_bits(m.transaction_id as u64, 8);
            put_cause(&mut w, &m.cause);
            put_opt_u32(&mut w, &m.time_to_wait_ms);
        }
        E2apPdu::RicServiceUpdate(m) => {
            w.put_bits(m.transaction_id as u64, 8);
            put_seq(&mut w, &m.added, put_fn_item);
            put_seq(&mut w, &m.modified, put_fn_item);
            put_seq(&mut w, &m.removed, |w, id| put_ran_func(w, id));
        }
        E2apPdu::RicServiceUpdateAck(m) => {
            w.put_bits(m.transaction_id as u64, 8);
            put_seq(&mut w, &m.accepted, |w, id| put_ran_func(w, id));
            put_seq(&mut w, &m.rejected, |w, (id, c)| {
                put_ran_func(w, id);
                put_cause(w, c);
            });
        }
        E2apPdu::RicServiceUpdateFailure(m) => {
            w.put_bits(m.transaction_id as u64, 8);
            put_cause(&mut w, &m.cause);
            put_opt_u32(&mut w, &m.time_to_wait_ms);
        }
        E2apPdu::RicServiceQuery(m) => {
            w.put_bits(m.transaction_id as u64, 8);
            put_seq(&mut w, &m.accepted, |w, id| put_ran_func(w, id));
        }
        E2apPdu::RicSubscriptionRequest(m) => {
            put_req_id(&mut w, &m.req_id);
            put_ran_func(&mut w, &m.ran_function);
            w.put_octets(&m.event_trigger);
            put_seq(&mut w, &m.actions, put_action);
        }
        E2apPdu::RicSubscriptionResponse(m) => {
            put_req_id(&mut w, &m.req_id);
            put_ran_func(&mut w, &m.ran_function);
            put_seq(&mut w, &m.admitted, |w, id| w.put_bits(id.0 as u64, 8));
            put_seq(&mut w, &m.not_admitted, |w, (id, c)| {
                w.put_bits(id.0 as u64, 8);
                put_cause(w, c);
            });
        }
        E2apPdu::RicSubscriptionFailure(m) => {
            put_req_id(&mut w, &m.req_id);
            put_ran_func(&mut w, &m.ran_function);
            put_cause(&mut w, &m.cause);
        }
        E2apPdu::RicSubscriptionDeleteRequest(m) => {
            put_req_id(&mut w, &m.req_id);
            put_ran_func(&mut w, &m.ran_function);
        }
        E2apPdu::RicSubscriptionDeleteResponse(m) => {
            put_req_id(&mut w, &m.req_id);
            put_ran_func(&mut w, &m.ran_function);
        }
        E2apPdu::RicSubscriptionDeleteFailure(m) => {
            put_req_id(&mut w, &m.req_id);
            put_ran_func(&mut w, &m.ran_function);
            put_cause(&mut w, &m.cause);
        }
        E2apPdu::RicIndication(m) => {
            put_req_id(&mut w, &m.req_id);
            put_ran_func(&mut w, &m.ran_function);
            w.put_bits(m.action.0 as u64, 8);
            put_opt_u32(&mut w, &m.sn);
            w.put_constrained(m.ind_type as u64, 0, 1);
            w.put_octets(&m.header);
            w.put_octets(&m.message);
            put_opt_bytes(&mut w, &m.call_process_id);
        }
        E2apPdu::RicControlRequest(m) => {
            put_req_id(&mut w, &m.req_id);
            put_ran_func(&mut w, &m.ran_function);
            put_opt_bytes(&mut w, &m.call_process_id);
            w.put_octets(&m.header);
            w.put_octets(&m.message);
            w.put_bit(m.ack_request.is_some());
            if let Some(ack) = &m.ack_request {
                w.put_constrained(*ack as u64, 0, 2);
            }
        }
        E2apPdu::RicControlAcknowledge(m) => {
            put_req_id(&mut w, &m.req_id);
            put_ran_func(&mut w, &m.ran_function);
            put_opt_bytes(&mut w, &m.call_process_id);
            put_opt_bytes(&mut w, &m.outcome);
        }
        E2apPdu::RicControlFailure(m) => {
            put_req_id(&mut w, &m.req_id);
            put_ran_func(&mut w, &m.ran_function);
            put_opt_bytes(&mut w, &m.call_process_id);
            put_cause(&mut w, &m.cause);
            put_opt_bytes(&mut w, &m.outcome);
        }
    }
    w.into_buf()
}

// ---------------------------------------------------------------------------
// PDU decode
// ---------------------------------------------------------------------------

/// Decodes an aligned-PER-style E2AP PDU.  Always a full sequential pass.
pub fn decode(buf: &[u8]) -> Result<E2apPdu> {
    let mut r = BitReader::new(buf);
    let t = r.get_constrained(0, 25)? as u8;
    let msg_type = MsgType::from_u8(t)
        .ok_or(CodecError::BadDiscriminant { what: "msg type", value: t as u64 })?;
    let r = &mut r;
    Ok(match msg_type {
        MsgType::E2SetupRequest => E2apPdu::E2SetupRequest(E2SetupRequest {
            transaction_id: r.get_bits(8)? as u8,
            global_node: get_node_id(r)?,
            ran_functions: get_seq(r, get_fn_item)?,
            component_configs: get_seq(r, get_component)?,
        }),
        MsgType::E2SetupResponse => E2apPdu::E2SetupResponse(E2SetupResponse {
            transaction_id: r.get_bits(8)? as u8,
            global_ric: get_ric_id(r)?,
            accepted: get_seq(r, get_ran_func)?,
            rejected: get_seq(r, |r| Ok((get_ran_func(r)?, get_cause(r)?)))?,
        }),
        MsgType::E2SetupFailure => E2apPdu::E2SetupFailure(E2SetupFailure {
            transaction_id: r.get_bits(8)? as u8,
            cause: get_cause(r)?,
            time_to_wait_ms: get_opt_u32(r)?,
        }),
        MsgType::ResetRequest => E2apPdu::ResetRequest(ResetRequest {
            transaction_id: r.get_bits(8)? as u8,
            cause: get_cause(r)?,
        }),
        MsgType::ResetResponse => {
            E2apPdu::ResetResponse(ResetResponse { transaction_id: r.get_bits(8)? as u8 })
        }
        MsgType::ErrorIndication => E2apPdu::ErrorIndication(ErrorIndication {
            req_id: if r.get_bit()? { Some(get_req_id(r)?) } else { None },
            ran_function: if r.get_bit()? { Some(get_ran_func(r)?) } else { None },
            cause: if r.get_bit()? { Some(get_cause(r)?) } else { None },
        }),
        MsgType::E2NodeConfigUpdate => E2apPdu::E2NodeConfigUpdate(E2NodeConfigUpdate {
            transaction_id: r.get_bits(8)? as u8,
            additions: get_seq(r, get_component)?,
            updates: get_seq(r, get_component)?,
            removals: get_seq(r, get_interface_id)?,
        }),
        MsgType::E2NodeConfigUpdateAck => E2apPdu::E2NodeConfigUpdateAck(E2NodeConfigUpdateAck {
            transaction_id: r.get_bits(8)? as u8,
            accepted: get_seq(r, get_interface_id)?,
            rejected: get_seq(r, |r| {
                let (i, id) = get_interface_id(r)?;
                Ok((i, id, get_cause(r)?))
            })?,
        }),
        MsgType::E2NodeConfigUpdateFailure => {
            E2apPdu::E2NodeConfigUpdateFailure(E2NodeConfigUpdateFailure {
                transaction_id: r.get_bits(8)? as u8,
                cause: get_cause(r)?,
                time_to_wait_ms: get_opt_u32(r)?,
            })
        }
        MsgType::E2ConnectionUpdate => E2apPdu::E2ConnectionUpdate(E2ConnectionUpdate {
            transaction_id: r.get_bits(8)? as u8,
            add: get_seq(r, get_tnl)?,
            remove: get_seq(r, get_tnl)?,
            modify: get_seq(r, get_tnl)?,
        }),
        MsgType::E2ConnectionUpdateAck => E2apPdu::E2ConnectionUpdateAck(E2ConnectionUpdateAck {
            transaction_id: r.get_bits(8)? as u8,
            setup: get_seq(r, get_tnl)?,
            failed: get_seq(r, |r| Ok((get_tnl(r)?, get_cause(r)?)))?,
        }),
        MsgType::E2ConnectionUpdateFailure => {
            E2apPdu::E2ConnectionUpdateFailure(E2ConnectionUpdateFailure {
                transaction_id: r.get_bits(8)? as u8,
                cause: get_cause(r)?,
                time_to_wait_ms: get_opt_u32(r)?,
            })
        }
        MsgType::RicServiceUpdate => E2apPdu::RicServiceUpdate(RicServiceUpdate {
            transaction_id: r.get_bits(8)? as u8,
            added: get_seq(r, get_fn_item)?,
            modified: get_seq(r, get_fn_item)?,
            removed: get_seq(r, get_ran_func)?,
        }),
        MsgType::RicServiceUpdateAck => E2apPdu::RicServiceUpdateAck(RicServiceUpdateAck {
            transaction_id: r.get_bits(8)? as u8,
            accepted: get_seq(r, get_ran_func)?,
            rejected: get_seq(r, |r| Ok((get_ran_func(r)?, get_cause(r)?)))?,
        }),
        MsgType::RicServiceUpdateFailure => {
            E2apPdu::RicServiceUpdateFailure(RicServiceUpdateFailure {
                transaction_id: r.get_bits(8)? as u8,
                cause: get_cause(r)?,
                time_to_wait_ms: get_opt_u32(r)?,
            })
        }
        MsgType::RicServiceQuery => E2apPdu::RicServiceQuery(RicServiceQuery {
            transaction_id: r.get_bits(8)? as u8,
            accepted: get_seq(r, get_ran_func)?,
        }),
        MsgType::RicSubscriptionRequest => {
            E2apPdu::RicSubscriptionRequest(RicSubscriptionRequest {
                req_id: get_req_id(r)?,
                ran_function: get_ran_func(r)?,
                event_trigger: crate::borrow::mk_bytes(r.get_octets()?),
                actions: get_seq(r, get_action)?,
            })
        }
        MsgType::RicSubscriptionResponse => {
            E2apPdu::RicSubscriptionResponse(RicSubscriptionResponse {
                req_id: get_req_id(r)?,
                ran_function: get_ran_func(r)?,
                admitted: get_seq(r, |r| Ok(RicActionId(r.get_bits(8)? as u8)))?,
                not_admitted: get_seq(r, |r| {
                    Ok((RicActionId(r.get_bits(8)? as u8), get_cause(r)?))
                })?,
            })
        }
        MsgType::RicSubscriptionFailure => {
            E2apPdu::RicSubscriptionFailure(RicSubscriptionFailure {
                req_id: get_req_id(r)?,
                ran_function: get_ran_func(r)?,
                cause: get_cause(r)?,
            })
        }
        MsgType::RicSubscriptionDeleteRequest => {
            E2apPdu::RicSubscriptionDeleteRequest(RicSubscriptionDeleteRequest {
                req_id: get_req_id(r)?,
                ran_function: get_ran_func(r)?,
            })
        }
        MsgType::RicSubscriptionDeleteResponse => {
            E2apPdu::RicSubscriptionDeleteResponse(RicSubscriptionDeleteResponse {
                req_id: get_req_id(r)?,
                ran_function: get_ran_func(r)?,
            })
        }
        MsgType::RicSubscriptionDeleteFailure => {
            E2apPdu::RicSubscriptionDeleteFailure(RicSubscriptionDeleteFailure {
                req_id: get_req_id(r)?,
                ran_function: get_ran_func(r)?,
                cause: get_cause(r)?,
            })
        }
        MsgType::RicIndication => {
            let req_id = get_req_id(r)?;
            let ran_function = get_ran_func(r)?;
            let action = RicActionId(r.get_bits(8)? as u8);
            let sn = get_opt_u32(r)?;
            let it = r.get_constrained(0, 1)? as u8;
            let ind_type = RicIndicationType::from_u8(it)
                .ok_or(CodecError::BadDiscriminant { what: "indication type", value: it as u64 })?;
            let header = crate::borrow::mk_bytes(r.get_octets()?);
            let message = crate::borrow::mk_bytes(r.get_octets()?);
            let call_process_id = get_opt_bytes(r)?;
            E2apPdu::RicIndication(RicIndication {
                req_id,
                ran_function,
                action,
                sn,
                ind_type,
                header,
                message,
                call_process_id,
            })
        }
        MsgType::RicControlRequest => {
            let req_id = get_req_id(r)?;
            let ran_function = get_ran_func(r)?;
            let call_process_id = get_opt_bytes(r)?;
            let header = crate::borrow::mk_bytes(r.get_octets()?);
            let message = crate::borrow::mk_bytes(r.get_octets()?);
            let ack_request =
                if r.get_bit()? {
                    let a = r.get_constrained(0, 2)? as u8;
                    Some(ControlAckRequest::from_u8(a).ok_or(CodecError::BadDiscriminant {
                        what: "ack request",
                        value: a as u64,
                    })?)
                } else {
                    None
                };
            E2apPdu::RicControlRequest(RicControlRequest {
                req_id,
                ran_function,
                call_process_id,
                header,
                message,
                ack_request,
            })
        }
        MsgType::RicControlAcknowledge => E2apPdu::RicControlAcknowledge(RicControlAcknowledge {
            req_id: get_req_id(r)?,
            ran_function: get_ran_func(r)?,
            call_process_id: get_opt_bytes(r)?,
            outcome: get_opt_bytes(r)?,
        }),
        MsgType::RicControlFailure => E2apPdu::RicControlFailure(RicControlFailure {
            req_id: get_req_id(r)?,
            ran_function: get_ran_func(r)?,
            call_process_id: get_opt_bytes(r)?,
            cause: get_cause(r)?,
            outcome: get_opt_bytes(r)?,
        }),
    })
}

/// Extracts the routing header.  PER has no random access, so this is a
/// full [`decode`] — deliberately so: this asymmetry versus the FB codec's
/// O(1) peek is what the paper's Fig. 8b measures.
pub fn peek(buf: &[u8]) -> Result<PduHeader> {
    decode(buf).map(|pdu| pdu.header())
}
