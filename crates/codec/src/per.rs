//! Aligned-PER-style bit-level encoding primitives.
//!
//! This is a from-scratch subset of ASN.1 aligned PER (X.691) sufficient for
//! the E2AP and E2SM schemas in this repository.  It reproduces PER's
//! performance signature — bit-packing on encode, mandatory sequential
//! decode before any field can be accessed — which is the property the
//! FlexRIC paper measures in Figs. 7 and 8b.
//!
//! Supported forms:
//! * bits and fixed-width bit fields,
//! * constrained whole numbers (bit-field for ranges < 64 Ki, aligned
//!   minimal-octet form above),
//! * unconstrained unsigned integers (aligned, length-prefixed minimal
//!   octets),
//! * length determinants (1 byte < 128, 2 bytes < 16 Ki, and — as a
//!   documented deviation from X.691, which would fragment — a 4-byte form
//!   with a `11` prefix for lengths up to 2³⁰),
//! * octet strings and UTF-8 strings,
//! * optional-presence bitmaps (plain bits) and choice indices.
//!
//! Bit fields are packed word-at-a-time: [`BitWriter::put_bits`] and
//! [`BitReader::get_bits`] shift and mask whole bytes instead of looping
//! per bit.  The original per-bit loops are kept as
//! [`BitWriter::put_bits_bitwise`] / [`BitReader::get_bits_bitwise`] so
//! differential tests and benchmarks can pin the word-level versions to
//! them bit for bit.
//!
//! The writer is generic over a [`ByteSink`], so the same encode body can
//! produce an owned `Vec<u8>` or append into a reusable
//! [`bytes::BytesMut`] scratch buffer (the `encode_into` path).

use crate::error::{CodecError, Result};
use crate::sink::ByteSink;

/// Maximum length representable by [`BitWriter::put_length`].
pub const MAX_LENGTH: usize = (1 << 30) - 1;

/// Bit-oriented writer producing aligned-PER-style output.
#[derive(Debug, Default)]
pub struct BitWriter<B: ByteSink = Vec<u8>> {
    buf: B,
    /// Buffer length at construction; bytes before this index belong to the
    /// caller (e.g. a reserved frame header) and are never touched.
    base: usize,
    /// Number of valid bits in the last byte of `buf` (0 ⇒ byte-aligned).
    partial_bits: u8,
}

impl BitWriter {
    /// Creates an empty writer backed by an owned `Vec<u8>`.
    pub fn new() -> Self {
        Self::with_capacity(64)
    }

    /// Creates an owned writer with a capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        BitWriter { buf: Vec::with_capacity(cap), base: 0, partial_bits: 0 }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

impl<B: ByteSink> BitWriter<B> {
    /// Wraps an existing buffer, appending after its current contents.
    ///
    /// Existing bytes are left untouched; [`Self::len_bytes`] counts only
    /// bytes written through this writer.  Recover the buffer with
    /// [`Self::into_buf`].
    pub fn over(buf: B) -> Self {
        let base = buf.len();
        BitWriter { buf, base, partial_bits: 0 }
    }

    /// Consumes the writer, returning the underlying buffer.
    pub fn into_buf(self) -> B {
        self.buf
    }

    /// Number of whole bytes written so far (including a partial last byte).
    pub fn len_bytes(&self) -> usize {
        self.buf.len() - self.base
    }

    /// Writes a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        if self.partial_bits == 0 {
            self.buf.push_byte(0);
        }
        if bit {
            let last = self.buf.as_mut_slice().last_mut().expect("pushed above");
            *last |= 1 << (7 - self.partial_bits);
        }
        self.partial_bits = (self.partial_bits + 1) % 8;
    }

    /// Writes the low `nbits` bits of `value`, most-significant first.
    ///
    /// Word-level: fills the partial last byte, emits whole bytes, then a
    /// trailing partial byte — no per-bit loop.  Bit-exact with
    /// [`Self::put_bits_bitwise`].
    pub fn put_bits(&mut self, value: u64, nbits: u32) {
        debug_assert!(nbits <= 64);
        if nbits == 0 {
            return;
        }
        let mut rem = nbits; // bits of `value` still to emit
        if self.partial_bits != 0 {
            let free = 8 - self.partial_bits as u32; // 1..=7
            let take = free.min(rem);
            rem -= take; // ≤ 63 afterwards, so shifts below stay in range
            let chunk = (value >> rem) as u8 & ((1u16 << take) - 1) as u8;
            let last = self.buf.as_mut_slice().last_mut().expect("partial byte exists");
            *last |= chunk << (free - take);
            self.partial_bits = (self.partial_bits + take as u8) % 8;
        }
        while rem >= 8 {
            rem -= 8;
            self.buf.push_byte((value >> rem) as u8);
        }
        if rem > 0 {
            let chunk = value as u8 & ((1u16 << rem) - 1) as u8;
            self.buf.push_byte(chunk << (8 - rem));
            self.partial_bits = rem as u8;
        }
    }

    /// Reference bit-by-bit implementation of [`Self::put_bits`].
    ///
    /// Kept for differential tests and the old-path benchmark; the
    /// word-level `put_bits` must stay bit-exact with this loop.
    pub fn put_bits_bitwise(&mut self, value: u64, nbits: u32) {
        debug_assert!(nbits <= 64);
        for i in (0..nbits).rev() {
            self.put_bit((value >> i) & 1 == 1);
        }
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align(&mut self) {
        self.partial_bits = 0;
    }

    /// Writes raw bytes (aligned).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.align();
        self.buf.put_slice(bytes);
    }

    /// Writes a PER length determinant (aligned).
    ///
    /// `len < 128` → 1 byte; `len < 16384` → 2 bytes with a `10` prefix;
    /// otherwise 4 bytes with a `11` prefix (deviation from X.691
    /// fragmentation, see module docs).
    pub fn put_length(&mut self, len: usize) {
        assert!(len <= MAX_LENGTH, "length {len} exceeds PER codec maximum");
        self.align();
        if len < 128 {
            self.buf.push_byte(len as u8);
        } else if len < 16384 {
            self.buf.put_slice(&[0x80 | (len >> 8) as u8, len as u8]);
        } else {
            self.buf.put_slice(&[
                0xC0 | ((len >> 24) as u8 & 0x3F),
                (len >> 16) as u8,
                (len >> 8) as u8,
                len as u8,
            ]);
        }
    }

    /// Writes a constrained whole number in `lo..=hi`.
    ///
    /// Range < 64 Ki uses an unaligned bit-field of minimal width; larger
    /// ranges use the aligned length + minimal-octets form.
    pub fn put_constrained(&mut self, value: u64, lo: u64, hi: u64) {
        debug_assert!(lo <= hi);
        debug_assert!(value >= lo && value <= hi, "{value} outside {lo}..={hi}");
        let range = hi - lo;
        let offset = value - lo;
        if range == 0 {
            return; // single-valued: zero bits
        }
        if range < 65536 {
            let nbits = 64 - range.leading_zeros();
            self.put_bits(offset, nbits);
        } else {
            let nbytes = ((64 - offset.leading_zeros()).div_ceil(8)).max(1) as usize;
            self.put_length(nbytes);
            let be = offset.to_be_bytes();
            self.buf.put_slice(&be[8 - nbytes..]);
        }
    }

    /// Writes an unconstrained unsigned integer (aligned, length-prefixed).
    pub fn put_uint(&mut self, value: u64) {
        let nbytes = ((64 - value.leading_zeros()).div_ceil(8)).max(1) as usize;
        self.put_length(nbytes);
        let be = value.to_be_bytes();
        self.buf.put_slice(&be[8 - nbytes..]);
    }

    /// Writes an octet string: length determinant + raw bytes.
    pub fn put_octets(&mut self, bytes: &[u8]) {
        self.put_length(bytes.len());
        self.buf.put_slice(bytes);
    }

    /// Writes a UTF-8 string as an octet string.
    pub fn put_utf8(&mut self, s: &str) {
        self.put_octets(s.as_bytes());
    }
}

/// Bit-oriented reader consuming aligned-PER-style input.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor.
    pos_bits: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos_bits: 0 }
    }

    /// Bits remaining.
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos_bits
    }

    /// Reads a single bit.
    pub fn get_bit(&mut self) -> Result<bool> {
        if self.pos_bits >= self.buf.len() * 8 {
            return Err(CodecError::Truncated { what: "bit" });
        }
        let byte = self.buf[self.pos_bits / 8];
        let bit = (byte >> (7 - (self.pos_bits % 8))) & 1 == 1;
        self.pos_bits += 1;
        Ok(bit)
    }

    /// Reads `nbits` bits, most-significant first.
    ///
    /// Word-level: consumes the rest of the current byte, then whole bytes,
    /// then a leading slice of the final byte.  Bit-exact with
    /// [`Self::get_bits_bitwise`].
    pub fn get_bits(&mut self, nbits: u32) -> Result<u64> {
        debug_assert!(nbits <= 64);
        if nbits == 0 {
            return Ok(0);
        }
        if self.remaining_bits() < nbits as usize {
            // Same terminal state as the per-bit loop: cursor exhausted.
            self.pos_bits = self.buf.len() * 8;
            return Err(CodecError::Truncated { what: "bit" });
        }
        let mut v = 0u64;
        let mut rem = nbits;
        let bit_off = (self.pos_bits % 8) as u32;
        if bit_off != 0 {
            let avail = 8 - bit_off; // 1..=7
            let take = avail.min(rem);
            let byte = self.buf[self.pos_bits / 8];
            v = (byte >> (avail - take)) as u64 & ((1u64 << take) - 1);
            rem -= take;
            self.pos_bits += take as usize;
        }
        while rem >= 8 {
            v = (v << 8) | self.buf[self.pos_bits / 8] as u64;
            rem -= 8;
            self.pos_bits += 8;
        }
        if rem > 0 {
            let byte = self.buf[self.pos_bits / 8];
            v = (v << rem) | ((byte >> (8 - rem)) as u64 & ((1u64 << rem) - 1));
            self.pos_bits += rem as usize;
        }
        Ok(v)
    }

    /// Reference bit-by-bit implementation of [`Self::get_bits`].
    ///
    /// Kept for differential tests and the old-path benchmark.
    pub fn get_bits_bitwise(&mut self, nbits: u32) -> Result<u64> {
        debug_assert!(nbits <= 64);
        let mut v = 0u64;
        for _ in 0..nbits {
            v = (v << 1) | self.get_bit()? as u64;
        }
        Ok(v)
    }

    /// Skips to the next byte boundary.
    pub fn align(&mut self) {
        self.pos_bits = self.pos_bits.div_ceil(8) * 8;
    }

    /// Reads `n` raw bytes (aligned).
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.align();
        let start = self.pos_bits / 8;
        let end = start.checked_add(n).ok_or(CodecError::Malformed { what: "length overflow" })?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated { what: "raw bytes" });
        }
        self.pos_bits = end * 8;
        Ok(&self.buf[start..end])
    }

    /// Reads a PER length determinant (see [`BitWriter::put_length`]).
    pub fn get_length(&mut self) -> Result<usize> {
        self.align();
        let b0 = self.get_raw(1)?[0];
        if b0 & 0x80 == 0 {
            Ok(b0 as usize)
        } else if b0 & 0x40 == 0 {
            let b1 = self.get_raw(1)?[0];
            Ok((((b0 & 0x3F) as usize) << 8) | b1 as usize)
        } else {
            let rest = self.get_raw(3)?;
            Ok((((b0 & 0x3F) as usize) << 24)
                | ((rest[0] as usize) << 16)
                | ((rest[1] as usize) << 8)
                | rest[2] as usize)
        }
    }

    /// Reads a constrained whole number in `lo..=hi`.
    pub fn get_constrained(&mut self, lo: u64, hi: u64) -> Result<u64> {
        debug_assert!(lo <= hi);
        let range = hi - lo;
        if range == 0 {
            return Ok(lo);
        }
        let offset = if range < 65536 {
            let nbits = 64 - range.leading_zeros();
            self.get_bits(nbits)?
        } else {
            let nbytes = self.get_length()?;
            if nbytes == 0 || nbytes > 8 {
                return Err(CodecError::Malformed { what: "constrained int length" });
            }
            let raw = self.get_raw(nbytes)?;
            raw.iter().fold(0u64, |acc, &b| (acc << 8) | b as u64)
        };
        let value = lo
            .checked_add(offset)
            .ok_or(CodecError::OutOfRange { what: "constrained int", value: offset })?;
        if value > hi {
            return Err(CodecError::OutOfRange { what: "constrained int", value });
        }
        Ok(value)
    }

    /// Reads an unconstrained unsigned integer.
    pub fn get_uint(&mut self) -> Result<u64> {
        let nbytes = self.get_length()?;
        if nbytes == 0 || nbytes > 8 {
            return Err(CodecError::Malformed { what: "uint length" });
        }
        let raw = self.get_raw(nbytes)?;
        Ok(raw.iter().fold(0u64, |acc, &b| (acc << 8) | b as u64))
    }

    /// Reads an octet string.
    pub fn get_octets(&mut self) -> Result<&'a [u8]> {
        let len = self.get_length()?;
        self.get_raw(len)
    }

    /// Reads a UTF-8 string.
    ///
    /// Validates on the borrowed slice and allocates the `String` once —
    /// no intermediate `Vec<u8>`.
    pub fn get_utf8(&mut self) -> Result<String> {
        let raw = self.get_octets()?;
        std::str::from_utf8(raw).map(str::to_owned).map_err(|_| CodecError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bit(true);
        w.put_bits(0b101, 3);
        w.put_bits(0xABCD, 16);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert!(r.get_bit().unwrap());
        assert_eq!(r.get_bits(3).unwrap(), 0b101);
        assert_eq!(r.get_bits(16).unwrap(), 0xABCD);
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.put_bit(true);
        w.align();
        w.put_raw(&[0xFF]);
        let buf = w.finish();
        assert_eq!(buf, vec![0x80, 0xFF]);
        let mut r = BitReader::new(&buf);
        assert!(r.get_bit().unwrap());
        assert_eq!(r.get_raw(1).unwrap(), &[0xFF]);
    }

    #[test]
    fn length_forms() {
        for len in [0usize, 1, 127, 128, 300, 16383, 16384, 1_000_000, MAX_LENGTH] {
            let mut w = BitWriter::new();
            w.put_length(len);
            let buf = w.finish();
            let expected = if len < 128 {
                1
            } else if len < 16384 {
                2
            } else {
                4
            };
            assert_eq!(buf.len(), expected, "len={len}");
            let mut r = BitReader::new(&buf);
            assert_eq!(r.get_length().unwrap(), len);
        }
    }

    #[test]
    fn length_determinant_boundaries() {
        // Exact wire bytes at every form boundary: 127/128 (1 → 2 bytes),
        // 16 Ki−1 / 16 Ki (2 → 4 bytes) and MAX_LENGTH (the documented
        // 4-byte deviation from X.691 fragmentation).
        let cases: [(usize, &[u8]); 5] = [
            (127, &[0x7F]),
            (128, &[0x80, 0x80]),
            (16383, &[0xBF, 0xFF]),
            (16384, &[0xC0, 0x00, 0x40, 0x00]),
            (MAX_LENGTH, &[0xFF, 0xFF, 0xFF, 0xFF]),
        ];
        for (len, wire) in cases {
            let mut w = BitWriter::new();
            w.put_length(len);
            let buf = w.finish();
            assert_eq!(buf, wire, "len={len}");
            let mut r = BitReader::new(&buf);
            assert_eq!(r.get_length().unwrap(), len, "len={len}");

            // Same, starting misaligned: the determinant must align first.
            let mut w = BitWriter::new();
            w.put_bit(true);
            w.put_length(len);
            let buf = w.finish();
            assert_eq!(&buf[1..], wire, "misaligned len={len}");
            let mut r = BitReader::new(&buf);
            assert!(r.get_bit().unwrap());
            assert_eq!(r.get_length().unwrap(), len, "misaligned len={len}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds PER codec maximum")]
    fn length_overflow_panics() {
        let mut w = BitWriter::new();
        w.put_length(MAX_LENGTH + 1);
    }

    #[test]
    fn constrained_small_range_uses_bits() {
        let mut w = BitWriter::new();
        w.put_constrained(5, 0, 7); // 3 bits
        w.put_constrained(0, 0, 0); // 0 bits
        w.put_constrained(1000, 0, 4095); // 12 bits
        let buf = w.finish();
        assert_eq!(buf.len(), 2); // 15 bits
        let mut r = BitReader::new(&buf);
        assert_eq!(r.get_constrained(0, 7).unwrap(), 5);
        assert_eq!(r.get_constrained(0, 0).unwrap(), 0);
        assert_eq!(r.get_constrained(0, 4095).unwrap(), 1000);
    }

    #[test]
    fn constrained_large_range_uses_octets() {
        let mut w = BitWriter::new();
        w.put_constrained(1 << 30, 0, (1 << 36) - 1);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.get_constrained(0, (1 << 36) - 1).unwrap(), 1 << 30);
    }

    #[test]
    fn constrained_nonzero_lower_bound() {
        let mut w = BitWriter::new();
        w.put_constrained(10, 10, 10);
        w.put_constrained(12, 10, 17);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.get_constrained(10, 10).unwrap(), 10);
        assert_eq!(r.get_constrained(10, 17).unwrap(), 12);
    }

    #[test]
    fn constrained_decode_rejects_above_hi() {
        // Encode 7 in 0..=7 (3 bits = 111), then try to decode as 0..=5.
        let mut w = BitWriter::new();
        w.put_constrained(7, 0, 7);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert!(matches!(r.get_constrained(0, 5), Err(CodecError::OutOfRange { .. })));
    }

    #[test]
    fn uint_roundtrip() {
        for v in [0u64, 1, 255, 256, u32::MAX as u64, u64::MAX] {
            let mut w = BitWriter::new();
            w.put_uint(v);
            let buf = w.finish();
            let mut r = BitReader::new(&buf);
            assert_eq!(r.get_uint().unwrap(), v, "v={v}");
        }
    }

    #[test]
    fn octets_and_utf8_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bit(true); // force misalignment first
        w.put_octets(b"hello");
        w.put_utf8("\u{1F680} rocket");
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert!(r.get_bit().unwrap());
        assert_eq!(r.get_octets().unwrap(), b"hello");
        assert_eq!(r.get_utf8().unwrap(), "\u{1F680} rocket");
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = BitReader::new(&[]);
        assert!(matches!(r.get_bit(), Err(CodecError::Truncated { .. })));
        let mut r = BitReader::new(&[0x05]); // length 5 but no payload
        assert!(matches!(r.get_octets(), Err(CodecError::Truncated { .. })));
        let mut r = BitReader::new(&[0x09, 0, 0, 0, 0, 0, 0, 0, 0, 0]); // uint with 9 bytes
        assert!(matches!(r.get_uint(), Err(CodecError::Malformed { .. })));
        // Word-level get_bits past the end behaves like the bit loop did:
        // error, cursor exhausted.
        let mut r = BitReader::new(&[0xFF]);
        r.get_bits(3).unwrap();
        assert!(matches!(r.get_bits(6), Err(CodecError::Truncated { .. })));
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn bad_utf8_detected() {
        let mut w = BitWriter::new();
        w.put_octets(&[0xFF, 0xFE]);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.get_utf8(), Err(CodecError::BadUtf8));
    }

    #[test]
    fn remaining_bits_tracks_cursor() {
        let buf = [0u8; 4];
        let mut r = BitReader::new(&buf);
        assert_eq!(r.remaining_bits(), 32);
        r.get_bits(5).unwrap();
        assert_eq!(r.remaining_bits(), 27);
        r.align();
        assert_eq!(r.remaining_bits(), 24);
    }

    #[test]
    fn writer_over_bytesmut_appends_after_existing_content() {
        let mut scratch = BytesMut::with_capacity(32);
        scratch.extend_from_slice(b"hdr");
        let mut w = BitWriter::over(scratch);
        assert_eq!(w.len_bytes(), 0);
        w.put_bits(0xAB, 8);
        w.put_octets(b"xy");
        assert_eq!(w.len_bytes(), 4);
        let buf = w.into_buf();
        assert_eq!(&buf[..], b"hdr\xAB\x02xy");
    }

    /// Deterministic xorshift for dependency-free differential coverage.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn word_level_bits_match_bitwise_reference() {
        let mut state = 0x243F_6A88_85A3_08D3u64; // arbitrary nonzero seed
        for _ in 0..200 {
            let ops: Vec<(u64, u32)> = (0..32)
                .map(|_| {
                    let v = xorshift(&mut state);
                    let n = (xorshift(&mut state) % 65) as u32;
                    (v, n)
                })
                .collect();
            let mut fast = BitWriter::new();
            let mut slow = BitWriter::new();
            for &(v, n) in &ops {
                fast.put_bits(v, n);
                slow.put_bits_bitwise(v, n);
            }
            let (fast, slow) = (fast.finish(), slow.finish());
            assert_eq!(fast, slow);
            let mut rf = BitReader::new(&fast);
            let mut rs = BitReader::new(&fast);
            for &(v, n) in &ops {
                let a = rf.get_bits(n).unwrap();
                let b = rs.get_bits_bitwise(n).unwrap();
                assert_eq!(a, b);
                if n == 64 {
                    assert_eq!(a, v);
                } else {
                    assert_eq!(a, v & ((1u64 << n) - 1));
                }
            }
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn ops() -> impl Strategy<Value = Vec<(u64, u32)>> {
        proptest::collection::vec((any::<u64>(), 0u32..=64), 0..64)
    }

    proptest! {
        #[test]
        fn put_bits_matches_reference(ops in ops()) {
            let mut fast = BitWriter::new();
            let mut slow = BitWriter::new();
            for &(v, n) in &ops {
                fast.put_bits(v, n);
                slow.put_bits_bitwise(v, n);
            }
            prop_assert_eq!(fast.finish(), slow.finish());
        }

        #[test]
        fn get_bits_matches_reference(ops in ops()) {
            let mut w = BitWriter::new();
            for &(v, n) in &ops {
                w.put_bits(v, n);
            }
            let buf = w.finish();
            let mut fast = BitReader::new(&buf);
            let mut slow = BitReader::new(&buf);
            for &(_, n) in &ops {
                prop_assert_eq!(fast.get_bits(n).unwrap(), slow.get_bits_bitwise(n).unwrap());
                prop_assert_eq!(fast.remaining_bits(), slow.remaining_bits());
            }
        }

        #[test]
        fn vec_and_bytesmut_backed_writers_agree(ops in ops()) {
            let mut owned = BitWriter::new();
            let mut scratch = BitWriter::over(bytes::BytesMut::new());
            for &(v, n) in &ops {
                owned.put_bits(v, n);
                scratch.put_bits(v, n);
            }
            prop_assert_eq!(owned.finish(), scratch.into_buf().to_vec());
        }
    }
}
