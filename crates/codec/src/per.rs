//! Aligned-PER-style bit-level encoding primitives.
//!
//! This is a from-scratch subset of ASN.1 aligned PER (X.691) sufficient for
//! the E2AP and E2SM schemas in this repository.  It reproduces PER's
//! performance signature — bit-packing on encode, mandatory sequential
//! decode before any field can be accessed — which is the property the
//! FlexRIC paper measures in Figs. 7 and 8b.
//!
//! Supported forms:
//! * bits and fixed-width bit fields,
//! * constrained whole numbers (bit-field for ranges < 64 Ki, aligned
//!   minimal-octet form above),
//! * unconstrained unsigned integers (aligned, length-prefixed minimal
//!   octets),
//! * length determinants (1 byte < 128, 2 bytes < 16 Ki, and — as a
//!   documented deviation from X.691, which would fragment — a 4-byte form
//!   with a `11` prefix for lengths up to 2³⁰),
//! * octet strings and UTF-8 strings,
//! * optional-presence bitmaps (plain bits) and choice indices.

use crate::error::{CodecError, Result};

/// Maximum length representable by [`BitWriter::put_length`].
pub const MAX_LENGTH: usize = (1 << 30) - 1;

/// Bit-oriented writer producing aligned-PER-style output.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in the last byte of `buf` (0 ⇒ byte-aligned).
    partial_bits: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter { buf: Vec::with_capacity(64), partial_bits: 0 }
    }

    /// Creates a writer with a capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        BitWriter { buf: Vec::with_capacity(cap), partial_bits: 0 }
    }

    /// Number of whole bytes written so far (including a partial last byte).
    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Writes a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        if self.partial_bits == 0 {
            self.buf.push(0);
        }
        if bit {
            let last = self.buf.last_mut().expect("pushed above");
            *last |= 1 << (7 - self.partial_bits);
        }
        self.partial_bits = (self.partial_bits + 1) % 8;
    }

    /// Writes the low `nbits` bits of `value`, most-significant first.
    pub fn put_bits(&mut self, value: u64, nbits: u32) {
        debug_assert!(nbits <= 64);
        for i in (0..nbits).rev() {
            self.put_bit((value >> i) & 1 == 1);
        }
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align(&mut self) {
        self.partial_bits = 0;
    }

    /// Writes raw bytes (aligned).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.align();
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a PER length determinant (aligned).
    ///
    /// `len < 128` → 1 byte; `len < 16384` → 2 bytes with a `10` prefix;
    /// otherwise 4 bytes with a `11` prefix (deviation from X.691
    /// fragmentation, see module docs).
    pub fn put_length(&mut self, len: usize) {
        assert!(len <= MAX_LENGTH, "length {len} exceeds PER codec maximum");
        self.align();
        if len < 128 {
            self.buf.push(len as u8);
        } else if len < 16384 {
            self.buf.push(0x80 | (len >> 8) as u8);
            self.buf.push(len as u8);
        } else {
            self.buf.push(0xC0 | ((len >> 24) as u8 & 0x3F));
            self.buf.push((len >> 16) as u8);
            self.buf.push((len >> 8) as u8);
            self.buf.push(len as u8);
        }
    }

    /// Writes a constrained whole number in `lo..=hi`.
    ///
    /// Range < 64 Ki uses an unaligned bit-field of minimal width; larger
    /// ranges use the aligned length + minimal-octets form.
    pub fn put_constrained(&mut self, value: u64, lo: u64, hi: u64) {
        debug_assert!(lo <= hi);
        debug_assert!(value >= lo && value <= hi, "{value} outside {lo}..={hi}");
        let range = hi - lo;
        let offset = value - lo;
        if range == 0 {
            return; // single-valued: zero bits
        }
        if range < 65536 {
            let nbits = 64 - range.leading_zeros();
            self.put_bits(offset, nbits);
        } else {
            let nbytes = ((64 - offset.leading_zeros()).div_ceil(8)).max(1) as usize;
            self.put_length(nbytes);
            for i in (0..nbytes).rev() {
                self.buf.push((offset >> (i * 8)) as u8);
            }
        }
    }

    /// Writes an unconstrained unsigned integer (aligned, length-prefixed).
    pub fn put_uint(&mut self, value: u64) {
        let nbytes = ((64 - value.leading_zeros()).div_ceil(8)).max(1) as usize;
        self.put_length(nbytes);
        for i in (0..nbytes).rev() {
            self.buf.push((value >> (i * 8)) as u8);
        }
    }

    /// Writes an octet string: length determinant + raw bytes.
    pub fn put_octets(&mut self, bytes: &[u8]) {
        self.put_length(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a UTF-8 string as an octet string.
    pub fn put_utf8(&mut self, s: &str) {
        self.put_octets(s.as_bytes());
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bit-oriented reader consuming aligned-PER-style input.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor.
    pos_bits: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos_bits: 0 }
    }

    /// Bits remaining.
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos_bits
    }

    /// Reads a single bit.
    pub fn get_bit(&mut self) -> Result<bool> {
        if self.pos_bits >= self.buf.len() * 8 {
            return Err(CodecError::Truncated { what: "bit" });
        }
        let byte = self.buf[self.pos_bits / 8];
        let bit = (byte >> (7 - (self.pos_bits % 8))) & 1 == 1;
        self.pos_bits += 1;
        Ok(bit)
    }

    /// Reads `nbits` bits, most-significant first.
    pub fn get_bits(&mut self, nbits: u32) -> Result<u64> {
        debug_assert!(nbits <= 64);
        let mut v = 0u64;
        for _ in 0..nbits {
            v = (v << 1) | self.get_bit()? as u64;
        }
        Ok(v)
    }

    /// Skips to the next byte boundary.
    pub fn align(&mut self) {
        self.pos_bits = self.pos_bits.div_ceil(8) * 8;
    }

    /// Reads `n` raw bytes (aligned).
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.align();
        let start = self.pos_bits / 8;
        let end = start.checked_add(n).ok_or(CodecError::Malformed { what: "length overflow" })?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated { what: "raw bytes" });
        }
        self.pos_bits = end * 8;
        Ok(&self.buf[start..end])
    }

    /// Reads a PER length determinant (see [`BitWriter::put_length`]).
    pub fn get_length(&mut self) -> Result<usize> {
        self.align();
        let b0 = self.get_raw(1)?[0];
        if b0 & 0x80 == 0 {
            Ok(b0 as usize)
        } else if b0 & 0x40 == 0 {
            let b1 = self.get_raw(1)?[0];
            Ok((((b0 & 0x3F) as usize) << 8) | b1 as usize)
        } else {
            let rest = self.get_raw(3)?;
            Ok((((b0 & 0x3F) as usize) << 24)
                | ((rest[0] as usize) << 16)
                | ((rest[1] as usize) << 8)
                | rest[2] as usize)
        }
    }

    /// Reads a constrained whole number in `lo..=hi`.
    pub fn get_constrained(&mut self, lo: u64, hi: u64) -> Result<u64> {
        debug_assert!(lo <= hi);
        let range = hi - lo;
        if range == 0 {
            return Ok(lo);
        }
        let offset = if range < 65536 {
            let nbits = 64 - range.leading_zeros();
            self.get_bits(nbits)?
        } else {
            let nbytes = self.get_length()?;
            if nbytes == 0 || nbytes > 8 {
                return Err(CodecError::Malformed { what: "constrained int length" });
            }
            let raw = self.get_raw(nbytes)?;
            raw.iter().fold(0u64, |acc, &b| (acc << 8) | b as u64)
        };
        let value = lo.checked_add(offset).ok_or(CodecError::OutOfRange {
            what: "constrained int",
            value: offset,
        })?;
        if value > hi {
            return Err(CodecError::OutOfRange { what: "constrained int", value });
        }
        Ok(value)
    }

    /// Reads an unconstrained unsigned integer.
    pub fn get_uint(&mut self) -> Result<u64> {
        let nbytes = self.get_length()?;
        if nbytes == 0 || nbytes > 8 {
            return Err(CodecError::Malformed { what: "uint length" });
        }
        let raw = self.get_raw(nbytes)?;
        Ok(raw.iter().fold(0u64, |acc, &b| (acc << 8) | b as u64))
    }

    /// Reads an octet string.
    pub fn get_octets(&mut self) -> Result<&'a [u8]> {
        let len = self.get_length()?;
        self.get_raw(len)
    }

    /// Reads a UTF-8 string.
    pub fn get_utf8(&mut self) -> Result<String> {
        let raw = self.get_octets()?;
        String::from_utf8(raw.to_vec()).map_err(|_| CodecError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bit(true);
        w.put_bits(0b101, 3);
        w.put_bits(0xABCD, 16);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert!(r.get_bit().unwrap());
        assert_eq!(r.get_bits(3).unwrap(), 0b101);
        assert_eq!(r.get_bits(16).unwrap(), 0xABCD);
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.put_bit(true);
        w.align();
        w.put_raw(&[0xFF]);
        let buf = w.finish();
        assert_eq!(buf, vec![0x80, 0xFF]);
        let mut r = BitReader::new(&buf);
        assert!(r.get_bit().unwrap());
        assert_eq!(r.get_raw(1).unwrap(), &[0xFF]);
    }

    #[test]
    fn length_forms() {
        for len in [0usize, 1, 127, 128, 300, 16383, 16384, 1_000_000, MAX_LENGTH] {
            let mut w = BitWriter::new();
            w.put_length(len);
            let buf = w.finish();
            let expected = if len < 128 {
                1
            } else if len < 16384 {
                2
            } else {
                4
            };
            assert_eq!(buf.len(), expected, "len={len}");
            let mut r = BitReader::new(&buf);
            assert_eq!(r.get_length().unwrap(), len);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds PER codec maximum")]
    fn length_overflow_panics() {
        let mut w = BitWriter::new();
        w.put_length(MAX_LENGTH + 1);
    }

    #[test]
    fn constrained_small_range_uses_bits() {
        let mut w = BitWriter::new();
        w.put_constrained(5, 0, 7); // 3 bits
        w.put_constrained(0, 0, 0); // 0 bits
        w.put_constrained(1000, 0, 4095); // 12 bits
        let buf = w.finish();
        assert_eq!(buf.len(), 2); // 15 bits
        let mut r = BitReader::new(&buf);
        assert_eq!(r.get_constrained(0, 7).unwrap(), 5);
        assert_eq!(r.get_constrained(0, 0).unwrap(), 0);
        assert_eq!(r.get_constrained(0, 4095).unwrap(), 1000);
    }

    #[test]
    fn constrained_large_range_uses_octets() {
        let mut w = BitWriter::new();
        w.put_constrained(1 << 30, 0, (1 << 36) - 1);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.get_constrained(0, (1 << 36) - 1).unwrap(), 1 << 30);
    }

    #[test]
    fn constrained_nonzero_lower_bound() {
        let mut w = BitWriter::new();
        w.put_constrained(10, 10, 10);
        w.put_constrained(12, 10, 17);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.get_constrained(10, 10).unwrap(), 10);
        assert_eq!(r.get_constrained(10, 17).unwrap(), 12);
    }

    #[test]
    fn constrained_decode_rejects_above_hi() {
        // Encode 7 in 0..=7 (3 bits = 111), then try to decode as 0..=5.
        let mut w = BitWriter::new();
        w.put_constrained(7, 0, 7);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert!(matches!(r.get_constrained(0, 5), Err(CodecError::OutOfRange { .. })));
    }

    #[test]
    fn uint_roundtrip() {
        for v in [0u64, 1, 255, 256, u32::MAX as u64, u64::MAX] {
            let mut w = BitWriter::new();
            w.put_uint(v);
            let buf = w.finish();
            let mut r = BitReader::new(&buf);
            assert_eq!(r.get_uint().unwrap(), v, "v={v}");
        }
    }

    #[test]
    fn octets_and_utf8_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bit(true); // force misalignment first
        w.put_octets(b"hello");
        w.put_utf8("\u{1F680} rocket");
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert!(r.get_bit().unwrap());
        assert_eq!(r.get_octets().unwrap(), b"hello");
        assert_eq!(r.get_utf8().unwrap(), "\u{1F680} rocket");
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = BitReader::new(&[]);
        assert!(matches!(r.get_bit(), Err(CodecError::Truncated { .. })));
        let mut r = BitReader::new(&[0x05]); // length 5 but no payload
        assert!(matches!(r.get_octets(), Err(CodecError::Truncated { .. })));
        let mut r = BitReader::new(&[0x09, 0, 0, 0, 0, 0, 0, 0, 0, 0]); // uint with 9 bytes
        assert!(matches!(r.get_uint(), Err(CodecError::Malformed { .. })));
    }

    #[test]
    fn bad_utf8_detected() {
        let mut w = BitWriter::new();
        w.put_octets(&[0xFF, 0xFE]);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.get_utf8(), Err(CodecError::BadUtf8));
    }

    #[test]
    fn remaining_bits_tracks_cursor() {
        let buf = [0u8; 4];
        let mut r = BitReader::new(&buf);
        assert_eq!(r.remaining_bits(), 32);
        r.get_bits(5).unwrap();
        assert_eq!(r.remaining_bits(), 27);
        r.align();
        assert_eq!(r.remaining_bits(), 24);
    }
}
