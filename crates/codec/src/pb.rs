//! Protobuf-style varint/TLV encoding primitives.
//!
//! FlexRAN — the paper's first baseline — encodes its custom south-bound
//! protocol with Protocol Buffers.  This module is a from-scratch
//! implementation of the protobuf wire format subset FlexRAN-style messages
//! need: varint scalars (wire type 0), length-delimited fields (wire type
//! 2), and 64-bit fixed fields (wire type 1).  Like real protobuf it is
//! compact (no double encapsulation in the FlexRAN protocol) but requires a
//! full sequential decode, which places FlexRAN's RTT between the FB and
//! ASN.1 variants in the paper's Fig. 7a.

use bytes::BytesMut;

use crate::error::{CodecError, Result};
use crate::sink::ByteSink;

/// Wire types of the protobuf format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireType {
    /// Base-128 varint.
    Varint = 0,
    /// Fixed 64-bit little-endian.
    Fixed64 = 1,
    /// Length-delimited bytes.
    Len = 2,
}

impl WireType {
    fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(WireType::Varint),
            1 => Ok(WireType::Fixed64),
            2 => Ok(WireType::Len),
            other => Err(CodecError::BadDiscriminant { what: "pb wire type", value: other as u64 }),
        }
    }
}

/// Writer producing protobuf-style output.
///
/// Generic over the backing [`ByteSink`]: the default `Vec<u8>` gives the
/// classic allocate-per-message [`PbWriter::finish`] path, while
/// [`PbWriter::over`] wraps a reusable `BytesMut` scratch buffer for the
/// zero-allocation path.
#[derive(Debug, Default)]
pub struct PbWriter<B: ByteSink = Vec<u8>> {
    buf: B,
    base: usize,
}

impl PbWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        PbWriter { buf: Vec::with_capacity(64), base: 0 }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

impl PbWriter<BytesMut> {
    /// Wraps a (possibly non-empty) scratch buffer; encoded bytes are
    /// appended after any existing content.
    pub fn over(buf: BytesMut) -> Self {
        let base = buf.len();
        PbWriter { buf, base }
    }

    /// Consumes the writer, returning the backing buffer.
    pub fn into_buf(self) -> BytesMut {
        self.buf
    }
}

impl<B: ByteSink> PbWriter<B> {
    /// Bytes written by this writer so far.
    pub fn len(&self) -> usize {
        self.buf.len() - self.base
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes written by this writer.
    pub fn written(&self) -> &[u8] {
        &self.buf.as_slice()[self.base..]
    }

    fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push_byte(byte);
                return;
            }
            self.buf.push_byte(byte | 0x80);
        }
    }

    fn put_key(&mut self, field: u32, wt: WireType) {
        self.put_varint(((field as u64) << 3) | wt as u64);
    }

    /// Writes a varint field.
    pub fn uint(&mut self, field: u32, v: u64) -> &mut Self {
        self.put_key(field, WireType::Varint);
        self.put_varint(v);
        self
    }

    /// Writes a fixed 64-bit field.
    pub fn fixed64(&mut self, field: u32, v: u64) -> &mut Self {
        self.put_key(field, WireType::Fixed64);
        self.buf.put_slice(&v.to_le_bytes());
        self
    }

    /// Writes a length-delimited bytes field.
    pub fn bytes(&mut self, field: u32, data: &[u8]) -> &mut Self {
        self.put_key(field, WireType::Len);
        self.put_varint(data.len() as u64);
        self.buf.put_slice(data);
        self
    }

    /// Writes a length-delimited string field.
    pub fn string(&mut self, field: u32, s: &str) -> &mut Self {
        self.bytes(field, s.as_bytes())
    }

    /// Writes an embedded message field from an already-encoded child.
    pub fn message<B2: ByteSink>(&mut self, field: u32, child: &PbWriter<B2>) -> &mut Self {
        self.bytes(field, child.written())
    }
}

/// One decoded field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PbValue<'a> {
    /// Varint value.
    Uint(u64),
    /// Fixed 64-bit value.
    Fixed64(u64),
    /// Length-delimited bytes.
    Bytes(&'a [u8]),
}

impl<'a> PbValue<'a> {
    /// The value as an unsigned integer, for varint/fixed64 fields.
    pub fn as_uint(&self) -> Result<u64> {
        match self {
            PbValue::Uint(v) | PbValue::Fixed64(v) => Ok(*v),
            PbValue::Bytes(_) => Err(CodecError::Malformed { what: "pb expected scalar" }),
        }
    }

    /// The value as bytes, for length-delimited fields.
    pub fn as_bytes(&self) -> Result<&'a [u8]> {
        match self {
            PbValue::Bytes(b) => Ok(b),
            _ => Err(CodecError::Malformed { what: "pb expected bytes" }),
        }
    }

    /// The value as a UTF-8 string.
    pub fn as_str(&self) -> Result<&'a str> {
        std::str::from_utf8(self.as_bytes()?).map_err(|_| CodecError::BadUtf8)
    }
}

/// Sequential reader over protobuf-style input.
#[derive(Debug)]
pub struct PbReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PbReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        PbReader { buf, pos: 0 }
    }

    /// Whether all input has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn get_varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte =
                *self.buf.get(self.pos).ok_or(CodecError::Truncated { what: "pb varint" })?;
            self.pos += 1;
            if shift >= 64 {
                return Err(CodecError::Malformed { what: "pb varint overflow" });
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads the next `(field number, value)` pair, or `None` at end.
    pub fn next_field(&mut self) -> Result<Option<(u32, PbValue<'a>)>> {
        if self.is_done() {
            return Ok(None);
        }
        let key = self.get_varint()?;
        let field = (key >> 3) as u32;
        let wt = WireType::from_u8((key & 0x7) as u8)?;
        let value = match wt {
            WireType::Varint => PbValue::Uint(self.get_varint()?),
            WireType::Fixed64 => {
                let sl = self
                    .buf
                    .get(self.pos..self.pos + 8)
                    .ok_or(CodecError::Truncated { what: "pb fixed64" })?;
                self.pos += 8;
                let mut a = [0u8; 8];
                a.copy_from_slice(sl);
                PbValue::Fixed64(u64::from_le_bytes(a))
            }
            WireType::Len => {
                let len = self.get_varint()? as usize;
                let sl = self
                    .buf
                    .get(self.pos..self.pos + len)
                    .ok_or(CodecError::Truncated { what: "pb bytes" })?;
                self.pos += len;
                PbValue::Bytes(sl)
            }
        };
        Ok(Some((field, value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut w = PbWriter::new();
        for (i, v) in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX].iter().enumerate() {
            w.uint(i as u32 + 1, *v);
        }
        let buf = w.finish();
        let mut r = PbReader::new(&buf);
        for (i, v) in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX].iter().enumerate() {
            let (f, val) = r.next_field().unwrap().unwrap();
            assert_eq!(f, i as u32 + 1);
            assert_eq!(val.as_uint().unwrap(), *v);
        }
        assert!(r.next_field().unwrap().is_none());
    }

    #[test]
    fn bytes_and_string_roundtrip() {
        let mut w = PbWriter::new();
        w.bytes(1, b"\x00payload\xFF").string(2, "caf\u{e9}");
        let buf = w.finish();
        let mut r = PbReader::new(&buf);
        let (f, v) = r.next_field().unwrap().unwrap();
        assert_eq!((f, v.as_bytes().unwrap()), (1, &b"\x00payload\xFF"[..]));
        let (f, v) = r.next_field().unwrap().unwrap();
        assert_eq!((f, v.as_str().unwrap()), (2, "caf\u{e9}"));
    }

    #[test]
    fn nested_messages() {
        let mut inner = PbWriter::new();
        inner.uint(1, 42).string(2, "ue");
        let mut outer = PbWriter::new();
        outer.uint(1, 7).message(2, &inner);
        let buf = outer.finish();

        let mut r = PbReader::new(&buf);
        assert_eq!(r.next_field().unwrap().unwrap().1.as_uint().unwrap(), 7);
        let (_, v) = r.next_field().unwrap().unwrap();
        let mut ir = PbReader::new(v.as_bytes().unwrap());
        assert_eq!(ir.next_field().unwrap().unwrap().1.as_uint().unwrap(), 42);
        assert_eq!(ir.next_field().unwrap().unwrap().1.as_str().unwrap(), "ue");
        assert!(ir.next_field().unwrap().is_none());
    }

    #[test]
    fn fixed64_roundtrip() {
        let mut w = PbWriter::new();
        w.fixed64(3, 0xDEAD_BEEF_CAFE_F00D);
        let buf = w.finish();
        let mut r = PbReader::new(&buf);
        let (f, v) = r.next_field().unwrap().unwrap();
        assert_eq!(f, 3);
        assert_eq!(v.as_uint().unwrap(), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn truncated_input_errors() {
        // Key says "bytes of length 10" but only 2 bytes follow.
        let mut w = PbWriter::new();
        w.bytes(1, &[0u8; 10]);
        let buf = w.finish();
        let mut r = PbReader::new(&buf[..4]);
        assert!(r.next_field().is_err());
        // Unterminated varint.
        let mut r = PbReader::new(&[0x80]);
        assert!(r.next_field().is_err());
        // Varint longer than 64 bits.
        let mut r = PbReader::new(&[0xFF; 11]);
        assert!(r.next_field().is_err());
    }

    #[test]
    fn unknown_wire_type_rejected() {
        // Field 1, wire type 5 (not supported).
        let mut r = PbReader::new(&[0x0D]);
        assert!(matches!(r.next_field(), Err(CodecError::BadDiscriminant { .. })));
    }

    #[test]
    fn writer_over_bytesmut_appends_identically() {
        fn build<B: ByteSink>(w: &mut PbWriter<B>) {
            let mut inner = PbWriter::new();
            inner.uint(1, 300).string(2, "ue");
            w.uint(1, 7).fixed64(2, 0xF00D).bytes(3, b"xy").message(4, &inner);
        }
        let mut v = PbWriter::new();
        build(&mut v);
        let owned = v.finish();

        let mut scratch = BytesMut::from(&b"prefix"[..]);
        let mut b = PbWriter::over(std::mem::take(&mut scratch));
        build(&mut b);
        assert_eq!(b.len(), owned.len());
        let buf = b.into_buf();
        assert_eq!(&buf[..6], b"prefix");
        assert_eq!(&buf[6..], &owned[..]);
    }

    #[test]
    fn type_confusion_rejected() {
        let mut w = PbWriter::new();
        w.uint(1, 5);
        let buf = w.finish();
        let mut r = PbReader::new(&buf);
        let (_, v) = r.next_field().unwrap().unwrap();
        assert!(v.as_bytes().is_err());
    }
}
