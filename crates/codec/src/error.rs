//! Codec error type.

use std::fmt;

/// Errors produced while encoding or decoding E2AP/E2SM payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of input bytes/bits.
    Truncated {
        /// What was being read when the input ended.
        what: &'static str,
    },
    /// A value fell outside its constrained range.
    OutOfRange {
        /// Field description.
        what: &'static str,
        /// Offending value.
        value: u64,
    },
    /// A choice/enum discriminant was not recognized.
    BadDiscriminant {
        /// Field description.
        what: &'static str,
        /// Offending discriminant.
        value: u64,
    },
    /// Structural corruption (bad magic, impossible offset, ...).
    Malformed {
        /// Description of the inconsistency.
        what: &'static str,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { what } => write!(f, "truncated input while reading {what}"),
            CodecError::OutOfRange { what, value } => {
                write!(f, "value {value} out of range for {what}")
            }
            CodecError::BadDiscriminant { what, value } => {
                write!(f, "unknown discriminant {value} for {what}")
            }
            CodecError::Malformed { what } => write!(f, "malformed message: {what}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Codec result alias.
pub type Result<T> = std::result::Result<T, CodecError>;
