//! Pluggable codecs for E2AP and E2SM payloads.
//!
//! The FlexRIC paper (§4.3) separates the E2 protocol into orthogonal
//! abstractions and keeps the encoding exchangeable behind an intermediate
//! representation.  This crate provides three from-scratch codecs:
//!
//! * [`per`] / [`e2ap_per`] — an ASN.1-aligned-PER-style bit-packed codec
//!   (compact, but every access requires a full decode),
//! * [`fb`] / [`e2ap_fb`] — a FlatBuffers-style zero-copy codec (a few tens
//!   of bytes larger per message, but fields are readable straight from the
//!   wire bytes),
//! * [`pb`] — a Protobuf-style varint codec used by the FlexRAN baseline.
//!
//! [`E2apCodec`] is the configuration point: agents and controllers agree on
//! an E2AP encoding per connection, and service models independently choose
//! their own (the paper's E2AP×E2SM combinations of Fig. 7).

pub(crate) mod borrow;
pub mod e2ap_fb;
pub mod e2ap_per;
pub mod error;
pub mod fb;
pub mod pb;
pub mod per;
pub mod sink;

pub use error::{CodecError, Result};
pub use sink::ByteSink;

use bytes::BytesMut;
use flexric_e2ap::{E2apPdu, PduHeader};

thread_local! {
    /// Per-thread count of E2AP encode invocations, used by tests to verify
    /// the encode-once fan-out invariant (thread-local so parallel test
    /// threads cannot perturb each other's deltas).
    static ENCODE_CALLS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn note_encode() {
    ENCODE_CALLS.with(|c| c.set(c.get() + 1));
}

/// Number of E2AP encode invocations (`encode` or `encode_into`) performed
/// by the current thread since it started.  Take a delta around the code
/// under test to count how many encodes it performed.
pub fn encode_invocations() -> u64 {
    ENCODE_CALLS.with(|c| c.get())
}

/// Per-codec latency histograms (ns).  Registered all at once on first
/// touch so `/metrics` always lists the codec layer, even before traffic.
struct CodecMetrics {
    encode_ns: [flexric_obs::Histogram; 2],
    decode_ns: [flexric_obs::Histogram; 2],
    peek_ns: [flexric_obs::Histogram; 2],
    /// Payload copies made by `decode_borrowed` when a field falls outside
    /// the source buffer.  Shares the series name with the transport's
    /// `site="recv"` counter so one query covers the whole receive path.
    rx_copies_decode: flexric_obs::Counter,
}

fn obs() -> &'static CodecMetrics {
    static M: std::sync::OnceLock<CodecMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let per_codec = |name: &str, help: &'static str| {
            E2apCodec::ALL.map(|c| flexric_obs::histogram_with(name, &[("codec", c.label())], help))
        };
        CodecMetrics {
            encode_ns: per_codec("flexric_codec_encode_ns", "E2AP encode latency"),
            decode_ns: per_codec("flexric_codec_decode_ns", "E2AP full decode latency"),
            peek_ns: per_codec("flexric_codec_peek_ns", "E2AP header peek latency"),
            rx_copies_decode: flexric_obs::counter_with(
                "flexric_transport_rx_copies_total",
                &[("site", "decode")],
                "per-frame payload copies on the receive path",
            ),
        }
    })
}

impl E2apCodec {
    #[inline]
    fn idx(&self) -> usize {
        match self {
            E2apCodec::Asn1Per => 0,
            E2apCodec::Flatb => 1,
        }
    }
}

/// Which encoding an E2AP connection uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum E2apCodec {
    /// ASN.1-aligned-PER style (the O-RAN default).
    #[default]
    Asn1Per,
    /// FlatBuffers style (the FlexRIC alternative).
    Flatb,
}

impl E2apCodec {
    /// All codecs, for sweeps.
    pub const ALL: [E2apCodec; 2] = [E2apCodec::Asn1Per, E2apCodec::Flatb];

    /// Short label used in benchmark output (matches the paper's figures).
    pub fn label(&self) -> &'static str {
        match self {
            E2apCodec::Asn1Per => "ASN",
            E2apCodec::Flatb => "FB",
        }
    }

    /// Encodes a PDU into a freshly allocated buffer.
    pub fn encode(&self, pdu: &E2apPdu) -> Vec<u8> {
        note_encode();
        let _t = obs().encode_ns[self.idx()].timer();
        match self {
            E2apCodec::Asn1Per => e2ap_per::encode(pdu),
            E2apCodec::Flatb => e2ap_fb::encode(pdu),
        }
    }

    /// Encodes a PDU into a caller-provided scratch buffer, appending after
    /// any existing content.
    ///
    /// This is the zero-allocation path: callers keep one `BytesMut` per
    /// connection (or per loop), call `encode_into`, then `split().freeze()`
    /// the message off.  Once the frozen `Bytes` handles drop, the buffer's
    /// capacity is reclaimed and steady-state encoding allocates nothing.
    /// The appended bytes are identical to what [`E2apCodec::encode`]
    /// returns — both dispatch to one shared encode body per codec.
    pub fn encode_into(&self, pdu: &E2apPdu, buf: &mut BytesMut) {
        note_encode();
        let _t = obs().encode_ns[self.idx()].timer();
        match self {
            E2apCodec::Asn1Per => e2ap_per::encode_into(pdu, buf),
            E2apCodec::Flatb => e2ap_fb::encode_into(pdu, buf),
        }
    }

    /// Decodes a PDU into the owned IR.
    pub fn decode(&self, buf: &[u8]) -> Result<E2apPdu> {
        let _t = obs().decode_ns[self.idx()].timer();
        match self {
            E2apCodec::Asn1Per => e2ap_per::decode(buf),
            E2apCodec::Flatb => e2ap_fb::decode(buf),
        }
    }

    /// Decodes a PDU with its byte-valued fields (indication payloads,
    /// action definitions, call process ids …) borrowed from `buf`'s
    /// backing allocation as refcounted views — no per-field copy.
    ///
    /// This is the receive hot path: `buf` is the frame the transport
    /// sliced off its read slab, so the decoded PDU's payload fields keep
    /// pointing into that slab.  The decoded value is structurally
    /// identical to [`E2apCodec::decode`]'s (same `E2apPdu`, compares
    /// equal); only the provenance of the `Bytes` differs.  Fields the
    /// decoder cannot express as a contiguous sub-slice fall back to a
    /// copy, counted in `flexric_transport_rx_copies_total{site="decode"}`.
    pub fn decode_borrowed(&self, buf: &bytes::Bytes) -> Result<E2apPdu> {
        let _t = obs().decode_ns[self.idx()].timer();
        borrow::with_source(buf, || match self {
            E2apCodec::Asn1Per => e2ap_per::decode(buf),
            E2apCodec::Flatb => e2ap_fb::decode(buf),
        })
    }

    /// Extracts the routing header.
    ///
    /// For [`E2apCodec::Flatb`] this is O(1) over the raw bytes; for
    /// [`E2apCodec::Asn1Per`] it is a full decode — the structural asymmetry
    /// the paper's Fig. 8b measures.
    pub fn peek(&self, buf: &[u8]) -> Result<PduHeader> {
        let _t = obs().peek_ns[self.idx()].timer();
        match self {
            E2apCodec::Asn1Per => e2ap_per::peek(buf),
            E2apCodec::Flatb => e2ap_fb::peek(buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use flexric_e2ap::*;

    /// One instance of every message type, with all optionals populated.
    pub(crate) fn sample_pdus() -> Vec<E2apPdu> {
        let plmn = Plmn::new(208, 95, 2);
        let node = GlobalE2NodeId::new(plmn, E2NodeType::GnbDu, 0xBEEF);
        let cause = Cause::Ric(RicCause::ActionNotSupported);
        let fn_item = RanFunctionItem {
            id: RanFunctionId::new(142),
            definition: Bytes::from_static(b"\x01\x02def"),
            revision: 3,
            oid: "flexric.sm.mac_stats".into(),
            version: FnVersion::new(2, 1),
        };
        let comp = E2NodeComponentConfig {
            interface: InterfaceType::F1,
            component_id: "du0".into(),
            request_part: Bytes::from_static(b"req"),
            response_part: Bytes::from_static(b"resp"),
        };
        let tnl = TnlInfo { address: "10.0.0.1".into(), port: 36421, usage: TnlUsage::Both };
        let req_id = RicRequestId::new(17, 4);
        let rf = RanFunctionId::new(142);

        vec![
            E2apPdu::E2SetupRequest(E2SetupRequest {
                transaction_id: 9,
                global_node: node,
                ran_functions: vec![fn_item.clone(), fn_item.clone()],
                component_configs: vec![comp.clone()],
            }),
            E2apPdu::E2SetupResponse(E2SetupResponse {
                transaction_id: 9,
                global_ric: GlobalRicId::new(plmn, 0x1234),
                accepted: vec![rf],
                rejected: vec![(RanFunctionId::new(7), cause)],
            }),
            E2apPdu::E2SetupFailure(E2SetupFailure {
                transaction_id: 9,
                cause,
                time_to_wait_ms: Some(5000),
            }),
            E2apPdu::ResetRequest(ResetRequest { transaction_id: 2, cause }),
            E2apPdu::ResetResponse(ResetResponse { transaction_id: 2 }),
            E2apPdu::ErrorIndication(ErrorIndication {
                req_id: Some(req_id),
                ran_function: Some(rf),
                cause: Some(cause),
            }),
            E2apPdu::E2NodeConfigUpdate(E2NodeConfigUpdate {
                transaction_id: 3,
                additions: vec![comp.clone()],
                updates: vec![],
                removals: vec![(InterfaceType::E1, "cuup0".into())],
            }),
            E2apPdu::E2NodeConfigUpdateAck(E2NodeConfigUpdateAck {
                transaction_id: 3,
                accepted: vec![(InterfaceType::F1, "du0".into())],
                rejected: vec![(InterfaceType::E1, "cuup0".into(), cause)],
            }),
            E2apPdu::E2NodeConfigUpdateFailure(E2NodeConfigUpdateFailure {
                transaction_id: 3,
                cause,
                time_to_wait_ms: None,
            }),
            E2apPdu::E2ConnectionUpdate(E2ConnectionUpdate {
                transaction_id: 4,
                add: vec![tnl.clone()],
                remove: vec![],
                modify: vec![tnl.clone()],
            }),
            E2apPdu::E2ConnectionUpdateAck(E2ConnectionUpdateAck {
                transaction_id: 4,
                setup: vec![tnl.clone()],
                failed: vec![(tnl.clone(), cause)],
            }),
            E2apPdu::E2ConnectionUpdateFailure(E2ConnectionUpdateFailure {
                transaction_id: 4,
                cause,
                time_to_wait_ms: Some(100),
            }),
            E2apPdu::RicServiceUpdate(RicServiceUpdate {
                transaction_id: 5,
                added: vec![fn_item.clone()],
                modified: vec![],
                removed: vec![RanFunctionId::new(3)],
            }),
            E2apPdu::RicServiceUpdateAck(RicServiceUpdateAck {
                transaction_id: 5,
                accepted: vec![rf],
                rejected: vec![],
            }),
            E2apPdu::RicServiceUpdateFailure(RicServiceUpdateFailure {
                transaction_id: 5,
                cause,
                time_to_wait_ms: None,
            }),
            E2apPdu::RicServiceQuery(RicServiceQuery { transaction_id: 6, accepted: vec![rf] }),
            E2apPdu::RicSubscriptionRequest(RicSubscriptionRequest {
                req_id,
                ran_function: rf,
                event_trigger: Bytes::from_static(b"\x00\x01trigger"),
                actions: vec![
                    RicActionToBeSetup {
                        id: RicActionId(1),
                        action_type: RicActionType::Report,
                        definition: Some(Bytes::from_static(b"adef")),
                        subsequent: None,
                    },
                    RicActionToBeSetup {
                        id: RicActionId(2),
                        action_type: RicActionType::Insert,
                        definition: None,
                        subsequent: Some(RicSubsequentAction {
                            kind: SubsequentActionType::Wait,
                            wait_ms: 50,
                        }),
                    },
                ],
            }),
            E2apPdu::RicSubscriptionResponse(RicSubscriptionResponse {
                req_id,
                ran_function: rf,
                admitted: vec![RicActionId(1)],
                not_admitted: vec![(RicActionId(2), cause)],
            }),
            E2apPdu::RicSubscriptionFailure(RicSubscriptionFailure {
                req_id,
                ran_function: rf,
                cause,
            }),
            E2apPdu::RicSubscriptionDeleteRequest(RicSubscriptionDeleteRequest {
                req_id,
                ran_function: rf,
            }),
            E2apPdu::RicSubscriptionDeleteResponse(RicSubscriptionDeleteResponse {
                req_id,
                ran_function: rf,
            }),
            E2apPdu::RicSubscriptionDeleteFailure(RicSubscriptionDeleteFailure {
                req_id,
                ran_function: rf,
                cause,
            }),
            E2apPdu::RicIndication(RicIndication {
                req_id,
                ran_function: rf,
                action: RicActionId(1),
                sn: Some(4242),
                ind_type: RicIndicationType::Report,
                header: Bytes::from_static(b"ind-hdr"),
                message: Bytes::from_static(b"ind-msg-payload"),
                call_process_id: Some(Bytes::from_static(b"cp")),
            }),
            E2apPdu::RicControlRequest(RicControlRequest {
                req_id,
                ran_function: rf,
                call_process_id: None,
                header: Bytes::from_static(b"ctl-hdr"),
                message: Bytes::from_static(b"ctl-msg"),
                ack_request: Some(ControlAckRequest::Ack),
            }),
            E2apPdu::RicControlAcknowledge(RicControlAcknowledge {
                req_id,
                ran_function: rf,
                call_process_id: Some(Bytes::from_static(b"cp")),
                outcome: Some(Bytes::from_static(b"ok")),
            }),
            E2apPdu::RicControlFailure(RicControlFailure {
                req_id,
                ran_function: rf,
                call_process_id: None,
                cause,
                outcome: None,
            }),
        ]
    }

    #[test]
    fn roundtrip_every_message_both_codecs() {
        let pdus = sample_pdus();
        assert_eq!(pdus.len(), 26, "one sample per message type");
        for codec in E2apCodec::ALL {
            for pdu in &pdus {
                let buf = codec.encode(pdu);
                let back = codec.decode(&buf).unwrap_or_else(|e| {
                    panic!("{:?} decode of {:?} failed: {e}", codec, pdu.msg_type())
                });
                assert_eq!(&back, pdu, "{:?} roundtrip of {:?}", codec, pdu.msg_type());
            }
        }
    }

    #[test]
    fn encode_into_is_byte_identical_to_encode() {
        // Acceptance criterion: no behavioural change on the wire.  The
        // scratch-buffer path must produce exactly the bytes of the classic
        // path for every PDU constructor under every codec, including when
        // the scratch already holds earlier content.
        let mut scratch = bytes::BytesMut::new();
        for codec in E2apCodec::ALL {
            for pdu in sample_pdus() {
                let owned = codec.encode(&pdu);
                scratch.clear();
                codec.encode_into(&pdu, &mut scratch);
                assert_eq!(&scratch[..], &owned[..], "{:?} {:?}", codec, pdu.msg_type());
                // Appending after existing content must not disturb either
                // the prefix or the encoding.
                scratch.clear();
                scratch.extend_from_slice(b"hdr");
                codec.encode_into(&pdu, &mut scratch);
                assert_eq!(&scratch[..3], b"hdr");
                assert_eq!(&scratch[3..], &owned[..], "{:?} {:?}", codec, pdu.msg_type());
                // And the appended region must decode standalone.
                let frame = scratch.split_off(3).freeze();
                assert_eq!(codec.decode(&frame).unwrap(), pdu);
            }
        }
    }

    #[test]
    fn encode_invocations_counts_both_paths() {
        let pdu = E2apPdu::ResetResponse(ResetResponse { transaction_id: 1 });
        let before = encode_invocations();
        let _ = E2apCodec::Asn1Per.encode(&pdu);
        let mut buf = bytes::BytesMut::new();
        E2apCodec::Flatb.encode_into(&pdu, &mut buf);
        assert_eq!(encode_invocations() - before, 2);
    }

    #[test]
    fn peek_matches_header_both_codecs() {
        for codec in E2apCodec::ALL {
            for pdu in sample_pdus() {
                let buf = codec.encode(&pdu);
                let h = codec.peek(&buf).unwrap();
                assert_eq!(h, pdu.header(), "{:?} peek of {:?}", codec, pdu.msg_type());
            }
        }
    }

    #[test]
    fn decode_borrowed_matches_decode_and_borrows() {
        // Structural equality with the owned decode for every message type
        // under both codecs…
        for codec in E2apCodec::ALL {
            for pdu in sample_pdus() {
                let buf = Bytes::from(codec.encode(&pdu));
                let owned = codec.decode(&buf).unwrap();
                let borrowed = codec.decode_borrowed(&buf).unwrap();
                assert_eq!(owned, borrowed, "{:?} {:?}", codec, pdu.msg_type());
            }
        }
        // …and the indication payload really is a view of the input buffer
        // (refcount bookkeeping, not a copy) under both codecs.
        let pdu =
            sample_pdus().into_iter().find(|p| p.msg_type() == MsgType::RicIndication).unwrap();
        for codec in E2apCodec::ALL {
            let buf = Bytes::from(codec.encode(&pdu));
            let lo = buf.as_ptr() as usize;
            let hi = lo + buf.len();
            match codec.decode_borrowed(&buf).unwrap() {
                E2apPdu::RicIndication(ind) => {
                    let p = ind.message.as_ptr() as usize;
                    assert!(
                        p >= lo && p + ind.message.len() <= hi,
                        "{codec:?}: message must borrow from the input buffer"
                    );
                }
                other => panic!("decoded {:?}", other.msg_type()),
            }
        }
    }

    #[test]
    fn fb_indication_payload_borrowed_shares_buf() {
        let pdu =
            sample_pdus().into_iter().find(|p| p.msg_type() == MsgType::RicIndication).unwrap();
        let buf = Bytes::from(E2apCodec::Flatb.encode(&pdu));
        let (hdr, msg) = e2ap_fb::indication_payload_borrowed(&buf).unwrap();
        assert_eq!(&hdr[..], b"ind-hdr");
        assert_eq!(&msg[..], b"ind-msg-payload");
        let lo = buf.as_ptr() as usize;
        let hi = lo + buf.len();
        assert!((msg.as_ptr() as usize) >= lo && (msg.as_ptr() as usize) < hi);
    }

    #[test]
    fn per_is_smaller_than_fb() {
        // The paper: ASN.1 compresses better; FB adds 30-40 B per message.
        for pdu in sample_pdus() {
            let per = E2apCodec::Asn1Per.encode(&pdu);
            let fb = E2apCodec::Flatb.encode(&pdu);
            assert!(
                per.len() < fb.len(),
                "{:?}: per={} fb={}",
                pdu.msg_type(),
                per.len(),
                fb.len()
            );
        }
    }

    #[test]
    fn empty_optionals_roundtrip() {
        let pdu = E2apPdu::ErrorIndication(ErrorIndication::default());
        for codec in E2apCodec::ALL {
            let buf = codec.encode(&pdu);
            assert_eq!(codec.decode(&buf).unwrap(), pdu);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        for codec in E2apCodec::ALL {
            assert!(codec.decode(&[]).is_err());
            assert!(codec.decode(&[0xFF; 3]).is_err());
        }
    }

    #[test]
    fn fb_indication_payload_zero_copy() {
        let pdu =
            sample_pdus().into_iter().find(|p| p.msg_type() == MsgType::RicIndication).unwrap();
        let buf = E2apCodec::Flatb.encode(&pdu);
        let (hdr, msg) = e2ap_fb::indication_payload(&buf).unwrap();
        assert_eq!(hdr, b"ind-hdr");
        assert_eq!(msg, b"ind-msg-payload");
        // Non-indications are rejected.
        let other =
            E2apCodec::Flatb.encode(&E2apPdu::ResetResponse(ResetResponse { transaction_id: 0 }));
        assert!(e2ap_fb::indication_payload(&other).is_err());
    }

    #[test]
    fn large_payload_roundtrip() {
        let big = vec![0xA5u8; 100_000];
        let pdu = E2apPdu::RicIndication(RicIndication {
            req_id: RicRequestId::new(1, 1),
            ran_function: RanFunctionId::new(1),
            action: RicActionId(0),
            sn: None,
            ind_type: RicIndicationType::Report,
            header: Bytes::new(),
            message: Bytes::from(big),
            call_process_id: None,
        });
        for codec in E2apCodec::ALL {
            let buf = codec.encode(&pdu);
            assert_eq!(codec.decode(&buf).unwrap(), pdu);
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use bytes::Bytes;
    use flexric_e2ap::*;
    use proptest::prelude::*;

    fn arb_cause() -> impl Strategy<Value = Cause> {
        (0u8..5, 0u8..16).prop_filter_map("valid cause", |(g, v)| Cause::from_parts(g, v))
    }

    fn arb_bytes() -> impl Strategy<Value = Bytes> {
        proptest::collection::vec(any::<u8>(), 0..512).prop_map(Bytes::from)
    }

    fn arb_req_id() -> impl Strategy<Value = RicRequestId> {
        (any::<u16>(), any::<u16>()).prop_map(|(r, i)| RicRequestId::new(r, i))
    }

    fn arb_indication() -> impl Strategy<Value = E2apPdu> {
        (
            arb_req_id(),
            0u16..=4095,
            any::<u8>(),
            proptest::option::of(any::<u32>()),
            any::<bool>(),
            arb_bytes(),
            arb_bytes(),
            proptest::option::of(arb_bytes()),
        )
            .prop_map(|(req_id, rf, action, sn, report, header, message, cpid)| {
                E2apPdu::RicIndication(RicIndication {
                    req_id,
                    ran_function: RanFunctionId::new(rf),
                    action: RicActionId(action),
                    sn,
                    ind_type: if report {
                        RicIndicationType::Report
                    } else {
                        RicIndicationType::Insert
                    },
                    header,
                    message,
                    call_process_id: cpid,
                })
            })
    }

    fn arb_control() -> impl Strategy<Value = E2apPdu> {
        (
            arb_req_id(),
            0u16..=4095,
            proptest::option::of(arb_bytes()),
            arb_bytes(),
            arb_bytes(),
            proptest::option::of(0u8..3),
        )
            .prop_map(|(req_id, rf, cpid, header, message, ack)| {
                E2apPdu::RicControlRequest(RicControlRequest {
                    req_id,
                    ran_function: RanFunctionId::new(rf),
                    call_process_id: cpid,
                    header,
                    message,
                    ack_request: ack.map(|a| ControlAckRequest::from_u8(a).unwrap()),
                })
            })
    }

    fn arb_setup() -> impl Strategy<Value = E2apPdu> {
        (
            any::<u8>(),
            (0u16..1000, 0u16..1000, 2u8..4, 0u8..7, any::<u64>()),
            proptest::collection::vec(
                (
                    0u16..=4095,
                    arb_bytes(),
                    any::<u16>(),
                    "[a-z.]{0,32}",
                    any::<u16>(),
                    any::<u16>(),
                ),
                0..8,
            ),
        )
            .prop_map(|(txid, (mcc, mnc, digits, nt, nid), fns)| {
                E2apPdu::E2SetupRequest(E2SetupRequest {
                    transaction_id: txid,
                    global_node: GlobalE2NodeId::new(
                        Plmn::new(mcc, mnc, digits),
                        E2NodeType::from_u8(nt).unwrap(),
                        nid,
                    ),
                    ran_functions: fns
                        .into_iter()
                        .map(|(id, definition, revision, oid, vmaj, vmin)| RanFunctionItem {
                            id: RanFunctionId::new(id),
                            definition,
                            revision,
                            oid,
                            version: FnVersion::new(vmaj, vmin),
                        })
                        .collect(),
                    component_configs: vec![],
                })
            })
    }

    fn arb_failure() -> impl Strategy<Value = E2apPdu> {
        (arb_req_id(), 0u16..=4095, arb_cause()).prop_map(|(req_id, rf, cause)| {
            E2apPdu::RicSubscriptionFailure(RicSubscriptionFailure {
                req_id,
                ran_function: RanFunctionId::new(rf),
                cause,
            })
        })
    }

    fn arb_pdu() -> impl Strategy<Value = E2apPdu> {
        prop_oneof![arb_indication(), arb_control(), arb_setup(), arb_failure()]
    }

    proptest! {
        #[test]
        fn per_roundtrip(pdu in arb_pdu()) {
            let buf = E2apCodec::Asn1Per.encode(&pdu);
            prop_assert_eq!(E2apCodec::Asn1Per.decode(&buf).unwrap(), pdu);
        }

        #[test]
        fn fb_roundtrip(pdu in arb_pdu()) {
            let buf = E2apCodec::Flatb.encode(&pdu);
            prop_assert_eq!(E2apCodec::Flatb.decode(&buf).unwrap(), pdu);
        }

        #[test]
        fn peek_agrees_with_decode(pdu in arb_pdu()) {
            for codec in E2apCodec::ALL {
                let buf = codec.encode(&pdu);
                let h = codec.peek(&buf).unwrap();
                prop_assert_eq!(h, pdu.header());
            }
        }

        #[test]
        fn decoders_never_panic_on_fuzz(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            for codec in E2apCodec::ALL {
                let _ = codec.decode(&bytes);
                let _ = codec.peek(&bytes);
            }
        }

        #[test]
        fn truncation_never_panics(pdu in arb_pdu(), frac in 0.0f64..1.0) {
            for codec in E2apCodec::ALL {
                let buf = codec.encode(&pdu);
                let cut = ((buf.len() as f64) * frac) as usize;
                let _ = codec.decode(&buf[..cut]);
                let _ = codec.peek(&buf[..cut]);
            }
        }
    }
}
