//! FlatBuffers-style codec for the full E2AP message set.
//!
//! The root table of every message carries the routing header (message
//! type, RIC request id, RAN function id) in fixed slots, so [`peek`] can
//! extract it in O(1) directly from the raw bytes — "FB's design avoids an
//! explicit decoding step, reading directly from raw bytes, [so] the
//! subscription management can look up the corresponding subscription much
//! faster" (paper §5.3).
//!
//! ## Root table slots
//!
//! | slot | content |
//! |------|---------|
//! | 0    | message type (u8) |
//! | 1    | RIC requestor id (u16, functional procedures) |
//! | 2    | RIC request instance (u16, functional procedures) |
//! | 3    | RAN function id (u16, functional procedures) |
//! | 4    | body table offset |

use bytes::{Bytes, BytesMut};
use flexric_e2ap::*;

use crate::error::{CodecError, Result};
use crate::fb::{FbBuilder, FbTable, FbVector, FbView, TableBuilder};
use crate::sink::ByteSink;

// ---------------------------------------------------------------------------
// Sub-structure helpers (encode)
// ---------------------------------------------------------------------------

fn enc_plmn(t: &mut TableBuilder, base: u16, p: &Plmn) {
    t.u16(base, p.mcc).u16(base + 1, p.mnc).u8(base + 2, p.mnc_digits);
}

fn enc_node_id<B: ByteSink>(b: &mut FbBuilder<B>, id: &GlobalE2NodeId) -> u32 {
    let mut t = TableBuilder::new();
    enc_plmn(&mut t, 0, &id.plmn);
    t.u8(3, id.node_type as u8).u64(4, id.node_id);
    t.end(b)
}

fn enc_ric_id<B: ByteSink>(b: &mut FbBuilder<B>, id: &GlobalRicId) -> u32 {
    let mut t = TableBuilder::new();
    enc_plmn(&mut t, 0, &id.plmn);
    t.u32(3, id.ric_id);
    t.end(b)
}

fn cause_u16(c: &Cause) -> u16 {
    ((c.group() as u16) << 8) | c.value() as u16
}

fn enc_fn_item<B: ByteSink>(b: &mut FbBuilder<B>, f: &RanFunctionItem) -> u32 {
    let def = b.blob(&f.definition);
    let oid = b.string(&f.oid);
    let mut t = TableBuilder::new();
    t.u16(0, f.id.0).off(1, def).u16(2, f.revision).off(3, oid);
    // New slots default-elide at 1.0, keeping pre-versioning peers readable.
    if f.version != FnVersion::V1 {
        t.u16(4, f.version.major).u16(5, f.version.minor);
    }
    t.end(b)
}

fn enc_component<B: ByteSink>(b: &mut FbBuilder<B>, c: &E2NodeComponentConfig) -> u32 {
    let id = b.string(&c.component_id);
    let req = b.blob(&c.request_part);
    let resp = b.blob(&c.response_part);
    let mut t = TableBuilder::new();
    t.u8(0, c.interface as u8).off(1, id).off(2, req).off(3, resp);
    t.end(b)
}

fn enc_interface_id<B: ByteSink>(
    b: &mut FbBuilder<B>,
    (i, id): &(InterfaceType, String),
    cause: Option<&Cause>,
) -> u32 {
    let s = b.string(id);
    let mut t = TableBuilder::new();
    t.u8(0, *i as u8).off(1, s);
    if let Some(c) = cause {
        t.u16(2, cause_u16(c));
    }
    t.end(b)
}

fn enc_tnl<B: ByteSink>(b: &mut FbBuilder<B>, tnl: &TnlInfo, cause: Option<&Cause>) -> u32 {
    let addr = b.string(&tnl.address);
    let mut t = TableBuilder::new();
    t.off(0, addr).u16(1, tnl.port).u8(2, tnl.usage as u8);
    if let Some(c) = cause {
        t.u16(3, cause_u16(c));
    }
    t.end(b)
}

fn enc_action<B: ByteSink>(b: &mut FbBuilder<B>, a: &RicActionToBeSetup) -> u32 {
    let def = a.definition.as_ref().map(|d| b.blob(d));
    let mut t = TableBuilder::new();
    t.u8(0, a.id.0).u8(1, a.action_type as u8).opt_off(2, def);
    if let Some(sub) = &a.subsequent {
        t.u8(3, sub.kind as u8).u32(4, sub.wait_ms);
    }
    t.end(b)
}

fn enc_id_cause<B: ByteSink>(b: &mut FbBuilder<B>, id: u16, c: &Cause) -> u32 {
    let mut t = TableBuilder::new();
    t.u16(0, id).u16(1, cause_u16(c));
    t.end(b)
}

fn enc_fn_vec<B: ByteSink>(b: &mut FbBuilder<B>, items: &[RanFunctionItem]) -> u32 {
    let offs: Vec<u32> = items.iter().map(|f| enc_fn_item(b, f)).collect();
    b.vec_off(&offs)
}

fn enc_component_vec<B: ByteSink>(b: &mut FbBuilder<B>, items: &[E2NodeComponentConfig]) -> u32 {
    let offs: Vec<u32> = items.iter().map(|c| enc_component(b, c)).collect();
    b.vec_off(&offs)
}

fn enc_tnl_vec<B: ByteSink>(b: &mut FbBuilder<B>, items: &[TnlInfo]) -> u32 {
    let offs: Vec<u32> = items.iter().map(|t| enc_tnl(b, t, None)).collect();
    b.vec_off(&offs)
}

fn fnid_vec(items: &[RanFunctionId]) -> Vec<u16> {
    items.iter().map(|f| f.0).collect()
}

// ---------------------------------------------------------------------------
// Sub-structure helpers (decode)
// ---------------------------------------------------------------------------

fn dec_plmn(t: &FbTable, base: u16) -> Result<Plmn> {
    Ok(Plmn::new(
        t.req_u16(base, "plmn mcc")?,
        t.req_u16(base + 1, "plmn mnc")?,
        t.req_u8(base + 2, "plmn digits")?,
    ))
}

fn dec_node_id(t: &FbTable) -> Result<GlobalE2NodeId> {
    let plmn = dec_plmn(t, 0)?;
    let nt = t.req_u8(3, "node type")?;
    let node_type = E2NodeType::from_u8(nt)
        .ok_or(CodecError::BadDiscriminant { what: "node type", value: nt as u64 })?;
    Ok(GlobalE2NodeId::new(plmn, node_type, t.req_u64(4, "node id")?))
}

fn dec_ric_id(t: &FbTable) -> Result<GlobalRicId> {
    Ok(GlobalRicId::new(dec_plmn(t, 0)?, t.req_u32(3, "ric id")?))
}

fn dec_cause(v: u16) -> Result<Cause> {
    Cause::from_parts((v >> 8) as u8, v as u8)
        .ok_or(CodecError::BadDiscriminant { what: "cause", value: v as u64 })
}

fn dec_fn_item(t: &FbTable) -> Result<RanFunctionItem> {
    Ok(RanFunctionItem {
        id: RanFunctionId::new(t.req_u16(0, "fn id")?),
        definition: crate::borrow::mk_bytes(t.req_bytes(1, "fn def")?),
        revision: t.req_u16(2, "fn revision")?,
        oid: t.string(3)?.ok_or(CodecError::Malformed { what: "fn oid" })?.to_owned(),
        version: FnVersion::new(t.u16(4)?.unwrap_or(1), t.u16(5)?.unwrap_or(0)),
    })
}

fn dec_component(t: &FbTable) -> Result<E2NodeComponentConfig> {
    let i = t.req_u8(0, "component interface")?;
    Ok(E2NodeComponentConfig {
        interface: InterfaceType::from_u8(i)
            .ok_or(CodecError::BadDiscriminant { what: "interface", value: i as u64 })?,
        component_id: t
            .string(1)?
            .ok_or(CodecError::Malformed { what: "component id" })?
            .to_owned(),
        request_part: crate::borrow::mk_bytes(t.req_bytes(2, "component req")?),
        response_part: crate::borrow::mk_bytes(t.req_bytes(3, "component resp")?),
    })
}

fn dec_interface_id(t: &FbTable) -> Result<(InterfaceType, String)> {
    let i = t.req_u8(0, "interface")?;
    Ok((
        InterfaceType::from_u8(i)
            .ok_or(CodecError::BadDiscriminant { what: "interface", value: i as u64 })?,
        t.string(1)?.ok_or(CodecError::Malformed { what: "interface id" })?.to_owned(),
    ))
}

fn dec_tnl(t: &FbTable) -> Result<TnlInfo> {
    let u = t.req_u8(2, "tnl usage")?;
    Ok(TnlInfo {
        address: t.string(0)?.ok_or(CodecError::Malformed { what: "tnl addr" })?.to_owned(),
        port: t.req_u16(1, "tnl port")?,
        usage: TnlUsage::from_u8(u)
            .ok_or(CodecError::BadDiscriminant { what: "tnl usage", value: u as u64 })?,
    })
}

fn dec_action(t: &FbTable) -> Result<RicActionToBeSetup> {
    let at = t.req_u8(1, "action type")?;
    let subsequent = match t.u8(3)? {
        Some(k) => Some(RicSubsequentAction {
            kind: SubsequentActionType::from_u8(k)
                .ok_or(CodecError::BadDiscriminant { what: "subsequent", value: k as u64 })?,
            wait_ms: t.req_u32(4, "wait ms")?,
        }),
        None => None,
    };
    Ok(RicActionToBeSetup {
        id: RicActionId(t.req_u8(0, "action id")?),
        action_type: RicActionType::from_u8(at)
            .ok_or(CodecError::BadDiscriminant { what: "action type", value: at as u64 })?,
        definition: t.bytes(2)?.map(crate::borrow::mk_bytes),
        subsequent,
    })
}

fn dec_tables<T>(v: &FbVector, f: impl Fn(&FbTable) -> Result<T>) -> Result<Vec<T>> {
    let mut out = Vec::with_capacity(v.len());
    for i in 0..v.len() {
        out.push(f(&v.table_at(i)?)?);
    }
    Ok(out)
}

fn dec_fnids(v: &FbVector) -> Result<Vec<RanFunctionId>> {
    let mut out = Vec::with_capacity(v.len());
    for i in 0..v.len() {
        out.push(RanFunctionId::new(v.u16_at(i)?));
    }
    Ok(out)
}

fn dec_id_causes(v: &FbVector) -> Result<Vec<(RanFunctionId, Cause)>> {
    dec_tables(v, |t| {
        Ok((RanFunctionId::new(t.req_u16(0, "fn id")?), dec_cause(t.req_u16(1, "cause")?)?))
    })
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

/// Encodes a PDU into FB-style bytes.
pub fn encode(pdu: &E2apPdu) -> Vec<u8> {
    encode_root(pdu, FbBuilder::with_capacity(128))
}

/// Encodes a PDU into a reusable scratch buffer, appending after any
/// existing content.  Byte-for-byte identical to [`encode`]; both
/// delegate to the same generic body, and all FB offsets are relative to
/// the message start so the appended region is self-contained.
pub fn encode_into(pdu: &E2apPdu, out: &mut BytesMut) {
    let b = FbBuilder::over(std::mem::take(out));
    *out = encode_root(pdu, b);
}

fn encode_root<B: ByteSink>(pdu: &E2apPdu, mut b: FbBuilder<B>) -> B {
    let body = encode_body(&mut b, pdu);
    let mut root = TableBuilder::new();
    root.u8(0, pdu.msg_type() as u8);
    if let Some(req) = pdu.ric_request_id() {
        root.u16(1, req.requestor).u16(2, req.instance);
    }
    if let Some(f) = pdu.ran_function_id() {
        root.u16(3, f.0);
    }
    root.off(4, body);
    let root = root.end(&mut b);
    b.finish_buf(root)
}

fn encode_body<B: ByteSink>(b: &mut FbBuilder<B>, pdu: &E2apPdu) -> u32 {
    match pdu {
        E2apPdu::E2SetupRequest(m) => {
            let node = enc_node_id(b, &m.global_node);
            let fns = enc_fn_vec(b, &m.ran_functions);
            let comps = enc_component_vec(b, &m.component_configs);
            let mut t = TableBuilder::new();
            t.u8(0, m.transaction_id).off(1, node).off(2, fns).off(3, comps);
            t.end(b)
        }
        E2apPdu::E2SetupResponse(m) => {
            let ric = enc_ric_id(b, &m.global_ric);
            let acc = b.vec_u16(&fnid_vec(&m.accepted));
            let rej: Vec<u32> = m.rejected.iter().map(|(id, c)| enc_id_cause(b, id.0, c)).collect();
            let rej = b.vec_off(&rej);
            let mut t = TableBuilder::new();
            t.u8(0, m.transaction_id).off(1, ric).off(2, acc).off(3, rej);
            t.end(b)
        }
        E2apPdu::E2SetupFailure(m) => {
            let mut t = TableBuilder::new();
            t.u8(0, m.transaction_id).u16(1, cause_u16(&m.cause));
            if let Some(w) = m.time_to_wait_ms {
                t.u32(2, w);
            }
            t.end(b)
        }
        E2apPdu::ResetRequest(m) => {
            let mut t = TableBuilder::new();
            t.u8(0, m.transaction_id).u16(1, cause_u16(&m.cause));
            t.end(b)
        }
        E2apPdu::ResetResponse(m) => {
            let mut t = TableBuilder::new();
            t.u8(0, m.transaction_id);
            t.end(b)
        }
        E2apPdu::ErrorIndication(m) => {
            let mut t = TableBuilder::new();
            if let Some(c) = &m.cause {
                t.u16(0, cause_u16(c));
            }
            // req_id / ran_function live in the root header slots; a marker
            // records their presence so decode can distinguish None from 0.
            let mut flags = 0u8;
            if m.req_id.is_some() {
                flags |= 1;
            }
            if m.ran_function.is_some() {
                flags |= 2;
            }
            t.u8(1, flags);
            t.end(b)
        }
        E2apPdu::E2NodeConfigUpdate(m) => {
            let add = enc_component_vec(b, &m.additions);
            let upd = enc_component_vec(b, &m.updates);
            let rem: Vec<u32> = m.removals.iter().map(|x| enc_interface_id(b, x, None)).collect();
            let rem = b.vec_off(&rem);
            let mut t = TableBuilder::new();
            t.u8(0, m.transaction_id).off(1, add).off(2, upd).off(3, rem);
            t.end(b)
        }
        E2apPdu::E2NodeConfigUpdateAck(m) => {
            let acc: Vec<u32> = m.accepted.iter().map(|x| enc_interface_id(b, x, None)).collect();
            let acc = b.vec_off(&acc);
            let rej: Vec<u32> = m
                .rejected
                .iter()
                .map(|(i, id, c)| enc_interface_id(b, &(*i, id.clone()), Some(c)))
                .collect();
            let rej = b.vec_off(&rej);
            let mut t = TableBuilder::new();
            t.u8(0, m.transaction_id).off(1, acc).off(2, rej);
            t.end(b)
        }
        E2apPdu::E2NodeConfigUpdateFailure(m) => {
            let mut t = TableBuilder::new();
            t.u8(0, m.transaction_id).u16(1, cause_u16(&m.cause));
            if let Some(w) = m.time_to_wait_ms {
                t.u32(2, w);
            }
            t.end(b)
        }
        E2apPdu::E2ConnectionUpdate(m) => {
            let add = enc_tnl_vec(b, &m.add);
            let rem = enc_tnl_vec(b, &m.remove);
            let modi = enc_tnl_vec(b, &m.modify);
            let mut t = TableBuilder::new();
            t.u8(0, m.transaction_id).off(1, add).off(2, rem).off(3, modi);
            t.end(b)
        }
        E2apPdu::E2ConnectionUpdateAck(m) => {
            let setup = enc_tnl_vec(b, &m.setup);
            let failed: Vec<u32> = m.failed.iter().map(|(t, c)| enc_tnl(b, t, Some(c))).collect();
            let failed = b.vec_off(&failed);
            let mut t = TableBuilder::new();
            t.u8(0, m.transaction_id).off(1, setup).off(2, failed);
            t.end(b)
        }
        E2apPdu::E2ConnectionUpdateFailure(m) => {
            let mut t = TableBuilder::new();
            t.u8(0, m.transaction_id).u16(1, cause_u16(&m.cause));
            if let Some(w) = m.time_to_wait_ms {
                t.u32(2, w);
            }
            t.end(b)
        }
        E2apPdu::RicServiceUpdate(m) => {
            let added = enc_fn_vec(b, &m.added);
            let modified = enc_fn_vec(b, &m.modified);
            let removed = b.vec_u16(&fnid_vec(&m.removed));
            let mut t = TableBuilder::new();
            t.u8(0, m.transaction_id).off(1, added).off(2, modified).off(3, removed);
            t.end(b)
        }
        E2apPdu::RicServiceUpdateAck(m) => {
            let acc = b.vec_u16(&fnid_vec(&m.accepted));
            let rej: Vec<u32> = m.rejected.iter().map(|(id, c)| enc_id_cause(b, id.0, c)).collect();
            let rej = b.vec_off(&rej);
            let mut t = TableBuilder::new();
            t.u8(0, m.transaction_id).off(1, acc).off(2, rej);
            t.end(b)
        }
        E2apPdu::RicServiceUpdateFailure(m) => {
            let mut t = TableBuilder::new();
            t.u8(0, m.transaction_id).u16(1, cause_u16(&m.cause));
            if let Some(w) = m.time_to_wait_ms {
                t.u32(2, w);
            }
            t.end(b)
        }
        E2apPdu::RicServiceQuery(m) => {
            let acc = b.vec_u16(&fnid_vec(&m.accepted));
            let mut t = TableBuilder::new();
            t.u8(0, m.transaction_id).off(1, acc);
            t.end(b)
        }
        E2apPdu::RicSubscriptionRequest(m) => {
            let trigger = b.blob(&m.event_trigger);
            let actions: Vec<u32> = m.actions.iter().map(|a| enc_action(b, a)).collect();
            let actions = b.vec_off(&actions);
            let mut t = TableBuilder::new();
            t.off(0, trigger).off(1, actions);
            t.end(b)
        }
        E2apPdu::RicSubscriptionResponse(m) => {
            let admitted: Vec<u16> = m.admitted.iter().map(|a| a.0 as u16).collect();
            let admitted = b.vec_u16(&admitted);
            let not_adm: Vec<u32> =
                m.not_admitted.iter().map(|(id, c)| enc_id_cause(b, id.0 as u16, c)).collect();
            let not_adm = b.vec_off(&not_adm);
            let mut t = TableBuilder::new();
            t.off(0, admitted).off(1, not_adm);
            t.end(b)
        }
        E2apPdu::RicSubscriptionFailure(m) => {
            let mut t = TableBuilder::new();
            t.u16(0, cause_u16(&m.cause));
            t.end(b)
        }
        E2apPdu::RicSubscriptionDeleteRequest(_) | E2apPdu::RicSubscriptionDeleteResponse(_) => {
            TableBuilder::new().end(b)
        }
        E2apPdu::RicSubscriptionDeleteFailure(m) => {
            let mut t = TableBuilder::new();
            t.u16(0, cause_u16(&m.cause));
            t.end(b)
        }
        E2apPdu::RicIndication(m) => {
            let hdr = b.blob(&m.header);
            let msg = b.blob(&m.message);
            let cpid = m.call_process_id.as_ref().map(|c| b.blob(c));
            let mut t = TableBuilder::new();
            t.u8(0, m.action.0).u8(1, m.ind_type as u8).off(2, hdr).off(3, msg).opt_off(4, cpid);
            if let Some(sn) = m.sn {
                t.u32(5, sn);
            }
            t.end(b)
        }
        E2apPdu::RicControlRequest(m) => {
            let hdr = b.blob(&m.header);
            let msg = b.blob(&m.message);
            let cpid = m.call_process_id.as_ref().map(|c| b.blob(c));
            let mut t = TableBuilder::new();
            t.off(0, hdr).off(1, msg).opt_off(2, cpid);
            if let Some(a) = m.ack_request {
                t.u8(3, a as u8);
            }
            t.end(b)
        }
        E2apPdu::RicControlAcknowledge(m) => {
            let cpid = m.call_process_id.as_ref().map(|c| b.blob(c));
            let outcome = m.outcome.as_ref().map(|o| b.blob(o));
            let mut t = TableBuilder::new();
            t.opt_off(0, cpid).opt_off(1, outcome);
            t.end(b)
        }
        E2apPdu::RicControlFailure(m) => {
            let cpid = m.call_process_id.as_ref().map(|c| b.blob(c));
            let outcome = m.outcome.as_ref().map(|o| b.blob(o));
            let mut t = TableBuilder::new();
            t.u16(0, cause_u16(&m.cause)).opt_off(1, cpid).opt_off(2, outcome);
            t.end(b)
        }
    }
}

// ---------------------------------------------------------------------------
// Decode / peek
// ---------------------------------------------------------------------------

fn root_header(root: &FbTable) -> Result<(MsgType, Option<RicRequestId>, Option<RanFunctionId>)> {
    let t = root.req_u8(0, "msg type")?;
    let msg_type = MsgType::from_u8(t)
        .ok_or(CodecError::BadDiscriminant { what: "msg type", value: t as u64 })?;
    let req_id = match (root.u16(1)?, root.u16(2)?) {
        (Some(r), Some(i)) => Some(RicRequestId::new(r, i)),
        _ => None,
    };
    let ran_function = root.u16(3)?.map(RanFunctionId::new);
    Ok((msg_type, req_id, ran_function))
}

/// Extracts the routing header in O(1) without decoding the message.
pub fn peek(buf: &[u8]) -> Result<PduHeader> {
    let root = FbView::parse(buf)?.root()?;
    let (msg_type, req_id, ran_function) = root_header(&root)?;
    Ok(PduHeader { msg_type, req_id, ran_function })
}

/// Decodes an FB-style E2AP PDU into the owned IR.
pub fn decode(buf: &[u8]) -> Result<E2apPdu> {
    let root = FbView::parse(buf)?.root()?;
    let (msg_type, req_id, ran_function) = root_header(&root)?;
    let body = root.req_table(4, "body")?;
    let req = || req_id.ok_or(CodecError::Malformed { what: "missing req id" });
    let rf = || ran_function.ok_or(CodecError::Malformed { what: "missing ran function" });

    Ok(match msg_type {
        MsgType::E2SetupRequest => E2apPdu::E2SetupRequest(E2SetupRequest {
            transaction_id: body.req_u8(0, "txid")?,
            global_node: dec_node_id(&body.req_table(1, "node id")?)?,
            ran_functions: dec_tables(&body.vector_or_empty(2)?, dec_fn_item)?,
            component_configs: dec_tables(&body.vector_or_empty(3)?, dec_component)?,
        }),
        MsgType::E2SetupResponse => E2apPdu::E2SetupResponse(E2SetupResponse {
            transaction_id: body.req_u8(0, "txid")?,
            global_ric: dec_ric_id(&body.req_table(1, "ric id")?)?,
            accepted: dec_fnids(&body.vector_or_empty(2)?)?,
            rejected: dec_id_causes(&body.vector_or_empty(3)?)?,
        }),
        MsgType::E2SetupFailure => E2apPdu::E2SetupFailure(E2SetupFailure {
            transaction_id: body.req_u8(0, "txid")?,
            cause: dec_cause(body.req_u16(1, "cause")?)?,
            time_to_wait_ms: body.u32(2)?,
        }),
        MsgType::ResetRequest => E2apPdu::ResetRequest(ResetRequest {
            transaction_id: body.req_u8(0, "txid")?,
            cause: dec_cause(body.req_u16(1, "cause")?)?,
        }),
        MsgType::ResetResponse => {
            E2apPdu::ResetResponse(ResetResponse { transaction_id: body.req_u8(0, "txid")? })
        }
        MsgType::ErrorIndication => {
            let flags = body.u8(1)?.unwrap_or(0);
            E2apPdu::ErrorIndication(ErrorIndication {
                req_id: if flags & 1 != 0 { req_id } else { None },
                ran_function: if flags & 2 != 0 { ran_function } else { None },
                cause: body.u16(0)?.map(dec_cause).transpose()?,
            })
        }
        MsgType::E2NodeConfigUpdate => E2apPdu::E2NodeConfigUpdate(E2NodeConfigUpdate {
            transaction_id: body.req_u8(0, "txid")?,
            additions: dec_tables(&body.vector_or_empty(1)?, dec_component)?,
            updates: dec_tables(&body.vector_or_empty(2)?, dec_component)?,
            removals: dec_tables(&body.vector_or_empty(3)?, dec_interface_id)?,
        }),
        MsgType::E2NodeConfigUpdateAck => E2apPdu::E2NodeConfigUpdateAck(E2NodeConfigUpdateAck {
            transaction_id: body.req_u8(0, "txid")?,
            accepted: dec_tables(&body.vector_or_empty(1)?, dec_interface_id)?,
            rejected: dec_tables(&body.vector_or_empty(2)?, |t| {
                let (i, id) = dec_interface_id(t)?;
                Ok((i, id, dec_cause(t.req_u16(2, "cause")?)?))
            })?,
        }),
        MsgType::E2NodeConfigUpdateFailure => {
            E2apPdu::E2NodeConfigUpdateFailure(E2NodeConfigUpdateFailure {
                transaction_id: body.req_u8(0, "txid")?,
                cause: dec_cause(body.req_u16(1, "cause")?)?,
                time_to_wait_ms: body.u32(2)?,
            })
        }
        MsgType::E2ConnectionUpdate => E2apPdu::E2ConnectionUpdate(E2ConnectionUpdate {
            transaction_id: body.req_u8(0, "txid")?,
            add: dec_tables(&body.vector_or_empty(1)?, dec_tnl)?,
            remove: dec_tables(&body.vector_or_empty(2)?, dec_tnl)?,
            modify: dec_tables(&body.vector_or_empty(3)?, dec_tnl)?,
        }),
        MsgType::E2ConnectionUpdateAck => E2apPdu::E2ConnectionUpdateAck(E2ConnectionUpdateAck {
            transaction_id: body.req_u8(0, "txid")?,
            setup: dec_tables(&body.vector_or_empty(1)?, dec_tnl)?,
            failed: dec_tables(&body.vector_or_empty(2)?, |t| {
                Ok((dec_tnl(t)?, dec_cause(t.req_u16(3, "cause")?)?))
            })?,
        }),
        MsgType::E2ConnectionUpdateFailure => {
            E2apPdu::E2ConnectionUpdateFailure(E2ConnectionUpdateFailure {
                transaction_id: body.req_u8(0, "txid")?,
                cause: dec_cause(body.req_u16(1, "cause")?)?,
                time_to_wait_ms: body.u32(2)?,
            })
        }
        MsgType::RicServiceUpdate => E2apPdu::RicServiceUpdate(RicServiceUpdate {
            transaction_id: body.req_u8(0, "txid")?,
            added: dec_tables(&body.vector_or_empty(1)?, dec_fn_item)?,
            modified: dec_tables(&body.vector_or_empty(2)?, dec_fn_item)?,
            removed: dec_fnids(&body.vector_or_empty(3)?)?,
        }),
        MsgType::RicServiceUpdateAck => E2apPdu::RicServiceUpdateAck(RicServiceUpdateAck {
            transaction_id: body.req_u8(0, "txid")?,
            accepted: dec_fnids(&body.vector_or_empty(1)?)?,
            rejected: dec_id_causes(&body.vector_or_empty(2)?)?,
        }),
        MsgType::RicServiceUpdateFailure => {
            E2apPdu::RicServiceUpdateFailure(RicServiceUpdateFailure {
                transaction_id: body.req_u8(0, "txid")?,
                cause: dec_cause(body.req_u16(1, "cause")?)?,
                time_to_wait_ms: body.u32(2)?,
            })
        }
        MsgType::RicServiceQuery => E2apPdu::RicServiceQuery(RicServiceQuery {
            transaction_id: body.req_u8(0, "txid")?,
            accepted: dec_fnids(&body.vector_or_empty(1)?)?,
        }),
        MsgType::RicSubscriptionRequest => {
            E2apPdu::RicSubscriptionRequest(RicSubscriptionRequest {
                req_id: req()?,
                ran_function: rf()?,
                event_trigger: crate::borrow::mk_bytes(body.req_bytes(0, "trigger")?),
                actions: dec_tables(&body.vector_or_empty(1)?, dec_action)?,
            })
        }
        MsgType::RicSubscriptionResponse => {
            let adm = body.vector_or_empty(0)?;
            let mut admitted = Vec::with_capacity(adm.len());
            for i in 0..adm.len() {
                admitted.push(RicActionId(adm.u16_at(i)? as u8));
            }
            E2apPdu::RicSubscriptionResponse(RicSubscriptionResponse {
                req_id: req()?,
                ran_function: rf()?,
                admitted,
                not_admitted: dec_tables(&body.vector_or_empty(1)?, |t| {
                    Ok((
                        RicActionId(t.req_u16(0, "action id")? as u8),
                        dec_cause(t.req_u16(1, "cause")?)?,
                    ))
                })?,
            })
        }
        MsgType::RicSubscriptionFailure => {
            E2apPdu::RicSubscriptionFailure(RicSubscriptionFailure {
                req_id: req()?,
                ran_function: rf()?,
                cause: dec_cause(body.req_u16(0, "cause")?)?,
            })
        }
        MsgType::RicSubscriptionDeleteRequest => {
            E2apPdu::RicSubscriptionDeleteRequest(RicSubscriptionDeleteRequest {
                req_id: req()?,
                ran_function: rf()?,
            })
        }
        MsgType::RicSubscriptionDeleteResponse => {
            E2apPdu::RicSubscriptionDeleteResponse(RicSubscriptionDeleteResponse {
                req_id: req()?,
                ran_function: rf()?,
            })
        }
        MsgType::RicSubscriptionDeleteFailure => {
            E2apPdu::RicSubscriptionDeleteFailure(RicSubscriptionDeleteFailure {
                req_id: req()?,
                ran_function: rf()?,
                cause: dec_cause(body.req_u16(0, "cause")?)?,
            })
        }
        MsgType::RicIndication => {
            let it = body.req_u8(1, "ind type")?;
            E2apPdu::RicIndication(RicIndication {
                req_id: req()?,
                ran_function: rf()?,
                action: RicActionId(body.req_u8(0, "action")?),
                sn: body.u32(5)?,
                ind_type: RicIndicationType::from_u8(it)
                    .ok_or(CodecError::BadDiscriminant { what: "ind type", value: it as u64 })?,
                header: crate::borrow::mk_bytes(body.req_bytes(2, "ind header")?),
                message: crate::borrow::mk_bytes(body.req_bytes(3, "ind message")?),
                call_process_id: body.bytes(4)?.map(crate::borrow::mk_bytes),
            })
        }
        MsgType::RicControlRequest => {
            let ack_request = match body.u8(3)? {
                Some(a) => {
                    Some(ControlAckRequest::from_u8(a).ok_or(CodecError::BadDiscriminant {
                        what: "ack request",
                        value: a as u64,
                    })?)
                }
                None => None,
            };
            E2apPdu::RicControlRequest(RicControlRequest {
                req_id: req()?,
                ran_function: rf()?,
                call_process_id: body.bytes(2)?.map(crate::borrow::mk_bytes),
                header: crate::borrow::mk_bytes(body.req_bytes(0, "ctrl header")?),
                message: crate::borrow::mk_bytes(body.req_bytes(1, "ctrl message")?),
                ack_request,
            })
        }
        MsgType::RicControlAcknowledge => E2apPdu::RicControlAcknowledge(RicControlAcknowledge {
            req_id: req()?,
            ran_function: rf()?,
            call_process_id: body.bytes(0)?.map(crate::borrow::mk_bytes),
            outcome: body.bytes(1)?.map(crate::borrow::mk_bytes),
        }),
        MsgType::RicControlFailure => E2apPdu::RicControlFailure(RicControlFailure {
            req_id: req()?,
            ran_function: rf()?,
            call_process_id: body.bytes(1)?.map(crate::borrow::mk_bytes),
            cause: dec_cause(body.req_u16(0, "cause")?)?,
            outcome: body.bytes(2)?.map(crate::borrow::mk_bytes),
        }),
    })
}

/// Zero-copy access to the indication payload of an FB-encoded
/// `RicIndication` — retrieves the SM message bytes without building the IR.
///
/// This is what a monitoring iApp on the FB hot path uses: header peek plus
/// payload slice, zero allocation.
pub fn indication_payload(buf: &[u8]) -> Result<(&[u8], &[u8])> {
    let root = FbView::parse(buf)?.root()?;
    if root.req_u8(0, "msg type")? != MsgType::RicIndication as u8 {
        return Err(CodecError::Malformed { what: "not an indication" });
    }
    let body = root.req_table(4, "body")?;
    Ok((body.req_bytes(2, "ind header")?, body.req_bytes(3, "ind message")?))
}

/// Like [`indication_payload`], but returns refcounted views of `buf` —
/// the receive path hands these to apps that retain the payload beyond the
/// current dispatch without copying it out of the read slab.
pub fn indication_payload_borrowed(buf: &Bytes) -> Result<(Bytes, Bytes)> {
    let (hdr, msg) = indication_payload(buf)?;
    Ok((buf.slice_ref(hdr), buf.slice_ref(msg)))
}
