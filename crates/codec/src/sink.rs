//! Byte-sink abstraction behind the zero-allocation encode path.
//!
//! The three writers in this crate ([`crate::per::BitWriter`],
//! [`crate::fb::FbBuilder`], [`crate::pb::PbWriter`]) are generic over a
//! [`ByteSink`] so the same encode body can target either
//!
//! * an owned `Vec<u8>` — the classic allocate-per-message path behind
//!   `encode()`, or
//! * a caller-provided reusable [`BytesMut`] — the scratch path behind
//!   `encode_into()`, where steady-state encoding performs no allocation
//!   because the buffer's capacity is reclaimed once previously frozen
//!   `Bytes` handles drop.
//!
//! The writers only ever *append* bytes and *patch* already-written bytes
//! (FB vtable pointers and the root offset), so the trait is deliberately
//! minimal: no truncation, no insertion.

use bytes::BytesMut;

/// A growable byte buffer the codec writers append into.
pub trait ByteSink {
    /// Appends one byte.
    fn push_byte(&mut self, b: u8);
    /// Appends a slice.
    fn put_slice(&mut self, bytes: &[u8]);
    /// Number of bytes currently in the buffer (including any bytes that
    /// were present before a writer wrapped it).
    fn len(&self) -> usize;
    /// Whether the buffer is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Read access to the whole buffer.
    fn as_slice(&self) -> &[u8];
    /// Mutable access to the whole buffer, for patching offset slots.
    fn as_mut_slice(&mut self) -> &mut [u8];
}

impl ByteSink for Vec<u8> {
    fn push_byte(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }

    fn len(&self) -> usize {
        Vec::len(self)
    }

    fn as_slice(&self) -> &[u8] {
        self
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        self
    }
}

impl ByteSink for BytesMut {
    fn push_byte(&mut self, b: u8) {
        self.extend_from_slice(std::slice::from_ref(&b));
    }

    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }

    fn len(&self) -> usize {
        BytesMut::len(self)
    }

    fn as_slice(&self) -> &[u8] {
        self
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<B: ByteSink>(mut sink: B) -> B {
        sink.push_byte(0xAB);
        sink.put_slice(&[1, 2, 3]);
        sink.as_mut_slice()[1] = 9;
        sink
    }

    #[test]
    fn vec_and_bytesmut_sinks_agree() {
        let v = exercise(Vec::new());
        let b = exercise(BytesMut::new());
        assert_eq!(v.as_slice(), b.as_slice());
        assert_eq!(v, vec![0xAB, 9, 2, 3]);
        assert_eq!(ByteSink::len(&b), 4);
        assert!(!ByteSink::is_empty(&b));
    }
}
