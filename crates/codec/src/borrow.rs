//! Borrowed-decode support: materialize decoded byte fields as refcounted
//! views of the receive buffer instead of owned copies.
//!
//! [`E2apCodec::decode_borrowed`](crate::E2apCodec::decode_borrowed) scopes
//! the source [`Bytes`] (the frame sliced off the transport read slab) in a
//! thread-local for the duration of the decode.  Every decoder site that
//! used to call `Bytes::copy_from_slice` now calls [`mk_bytes`]: when the
//! decoded slice lies inside the active source's allocation — which it does
//! for every contiguously stored field in the PER and FB encodings — the
//! field becomes `source.slice_ref(..)`, pure refcount bookkeeping.  Slices
//! that fall outside (or any decode without an active source) fall back to
//! a counted copy, so `flexric_transport_rx_copies_total{site="decode"}`
//! measures exactly the hot-path copies the zero-copy design eliminates.
//!
//! The scope is per-thread and re-entrant (an inner `with_source` restores
//! the outer source when it ends), so nested or interleaved decodes on one
//! thread cannot alias the wrong buffer.

use bytes::Bytes;
use std::cell::RefCell;

thread_local! {
    /// The frame being borrowed-decoded on this thread, if any.
    static SOURCE: RefCell<Option<Bytes>> = const { RefCell::new(None) };
}

/// Restores the previously active source when a `with_source` scope ends
/// (including by panic/unwind).
struct Restore(Option<Bytes>);

impl Drop for Restore {
    fn drop(&mut self) {
        let prev = self.0.take();
        SOURCE.with(|s| *s.borrow_mut() = prev);
    }
}

/// Runs `f` with `src` as the active borrow source for [`mk_bytes`].
pub(crate) fn with_source<T>(src: &Bytes, f: impl FnOnce() -> T) -> T {
    let prev = SOURCE.with(|s| s.borrow_mut().replace(src.clone()));
    let _restore = Restore(prev);
    f()
}

/// Materializes a decoded slice as [`Bytes`]: a refcounted view of the
/// active borrow source when `sl` lies within its allocation, otherwise an
/// owned copy.  Copies made *while a source is active* are the hot-path
/// misses the `rx_copies_total{site="decode"}` counter tracks; a decode
/// without a source (`E2apCodec::decode`) is owned by contract and is not
/// counted.
pub(crate) fn mk_bytes(sl: &[u8]) -> Bytes {
    if sl.is_empty() {
        return Bytes::new();
    }
    SOURCE.with(|s| match s.borrow().as_ref() {
        Some(src) => {
            let lo = src.as_ptr() as usize;
            let hi = lo + src.len();
            let p = sl.as_ptr() as usize;
            if p >= lo && p + sl.len() <= hi {
                src.slice_ref(sl)
            } else {
                crate::obs().rx_copies_decode.inc();
                Bytes::copy_from_slice(sl)
            }
        }
        None => Bytes::copy_from_slice(sl),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn without_source_copies() {
        let data = Bytes::from_static(b"0123456789");
        let out = mk_bytes(&data[2..5]);
        assert_eq!(&out[..], b"234");
        assert_ne!(out.as_ptr(), data[2..5].as_ptr(), "owned copy");
    }

    #[test]
    fn with_source_borrows_in_range() {
        let data = Bytes::from(vec![7u8; 64]);
        let out = with_source(&data, || mk_bytes(&data[10..30]));
        assert_eq!(out.len(), 20);
        assert_eq!(out.as_ptr(), data[10..30].as_ptr(), "view of the source, not a copy");
    }

    #[test]
    fn with_source_copies_out_of_range() {
        let data = Bytes::from(vec![1u8; 16]);
        let other = [9u8; 8];
        let out = with_source(&data, || mk_bytes(&other));
        assert_eq!(&out[..], &other);
        assert_ne!(out.as_ptr(), other.as_ptr());
    }

    #[test]
    fn nested_scopes_restore() {
        let outer = Bytes::from(vec![1u8; 32]);
        let inner = Bytes::from(vec![2u8; 32]);
        with_source(&outer, || {
            with_source(&inner, || {
                assert_eq!(mk_bytes(&inner[..4]).as_ptr(), inner.as_ptr());
            });
            // Outer source is active again.
            assert_eq!(mk_bytes(&outer[..4]).as_ptr(), outer.as_ptr());
        });
    }

    #[test]
    fn empty_slice_is_free() {
        let data = Bytes::from(vec![0u8; 8]);
        assert!(with_source(&data, || mk_bytes(&data[3..3])).is_empty());
    }
}
