//! Observability overhead A/B: the instrumented PER encode hot loop with
//! obs hooks compiled in (default) vs compiled out (`obs-off`), plus the
//! raw cost of each obs primitive.
//!
//! The feature is a compile-time switch, so one binary cannot hold both
//! sides.  Run the A/B as two passes with identical benchmark ids and let
//! Criterion report the delta against the saved baseline:
//!
//! ```text
//! cargo bench -p flexric-bench --bench obs_overhead -- --save-baseline obs-on
//! cargo bench -p flexric-bench --bench obs_overhead --features obs-off -- --baseline obs-on
//! ```
//!
//! See `crates/obs/README.md` for the methodology and the overhead budget.

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexric_codec::E2apCodec;
use flexric_e2ap::*;

fn indication(payload: Bytes) -> E2apPdu {
    E2apPdu::RicIndication(RicIndication {
        req_id: RicRequestId::new(7, 3),
        ran_function: RanFunctionId::new(142),
        action: RicActionId(0),
        sn: Some(42),
        ind_type: RicIndicationType::Report,
        header: Bytes::new(),
        message: payload,
        call_process_id: None,
    })
}

/// The instrumented codec hot loop — the E2AP path most sensitive to a
/// per-call timer (a span brackets every `encode`/`encode_into`).
fn bench_instrumented_encode(c: &mut Criterion) {
    let mode = if cfg!(feature = "obs-off") { "obs-off" } else { "obs-on" };
    println!("obs_overhead: running with obs hooks {mode}");
    let mut group = c.benchmark_group("obs_encode");
    for payload_size in [100usize, 1500] {
        let pdu = indication(Bytes::from(vec![0xA5u8; payload_size]));
        for codec in E2apCodec::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("encode/{}", codec.label()), payload_size),
                &pdu,
                |b, pdu| b.iter(|| codec.encode(std::hint::black_box(pdu))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("encode_into/{}", codec.label()), payload_size),
                &pdu,
                |b, pdu| {
                    let mut scratch = BytesMut::with_capacity(4096);
                    b.iter(|| {
                        codec.encode_into(std::hint::black_box(pdu), &mut scratch);
                        scratch.split().freeze()
                    })
                },
            );
        }
    }
    group.finish();
}

/// Raw per-op cost of the obs primitives themselves, to budget new hooks.
fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");
    let counter = flexric_obs::counter("flexric_bench_obs_counter_total", "bench: counter op cost");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    let gauge = flexric_obs::gauge("flexric_bench_obs_gauge", "bench: gauge op cost");
    group.bench_function("gauge_set", |b| {
        let mut v = 0i64;
        b.iter(|| {
            v = v.wrapping_add(1);
            gauge.set(std::hint::black_box(v));
        })
    });

    let hist = flexric_obs::histogram("flexric_bench_obs_hist_ns", "bench: histogram op cost");
    group.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(std::hint::black_box(v >> 32));
        })
    });
    // record + the two `Instant::now` reads a span performs.
    group.bench_function("span_timed", |b| {
        b.iter(|| {
            let _t = flexric_obs::span!("bench.obs.span");
            std::hint::black_box(())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_instrumented_encode, bench_primitives);
criterion_main!(benches);
