//! Codec micro-benchmarks: encode / decode / peek across the three wire
//! formats — the per-message costs behind the paper's Figs. 7 and 8b —
//! plus old-vs-new comparisons for the zero-allocation encode path
//! (word-level bit packing, `encode_into` buffer reuse, single-buffer
//! framing, and encode-once 1→N indication fan-out).

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexric::scratch::{flush_outbox, EncodeScratch, Targets};
use flexric_codec::per::{BitReader, BitWriter};
use flexric_codec::E2apCodec;
use flexric_ctrl::flexran_emu::{decode_stats_pb, encode_stats_pb};
use flexric_e2ap::*;
use flexric_sm::mac::{MacStatsInd, MacUeStats};
use flexric_sm::{SmCodec, SmPayload};
use flexric_transport::frame;

fn mac_snapshot(ues: u16) -> MacStatsInd {
    MacStatsInd {
        tstamp_ms: 123_456,
        cell_prbs: 106,
        ues: (0..ues)
            .map(|i| MacUeStats {
                rnti: 0x4601 + i,
                cqi: 15,
                mcs: 20,
                prbs_dl: 50,
                prbs_ul: 10,
                tbs_dl_bytes: 61_600,
                tbs_ul_bytes: 8_000,
                dl_aggr_bytes: 1 << 33,
                ul_aggr_bytes: 1 << 20,
                bsr: 1200,
                dl_backlog_bytes: 95_000,
                slice_id: (i % 2) as u32,
                plmn_mcc: 208,
                plmn_mnc: 95,
            })
            .collect(),
    }
}

fn indication(payload: Bytes) -> E2apPdu {
    E2apPdu::RicIndication(RicIndication {
        req_id: RicRequestId::new(7, 3),
        ran_function: RanFunctionId::new(142),
        action: RicActionId(0),
        sn: Some(42),
        ind_type: RicIndicationType::Report,
        header: Bytes::new(),
        message: payload,
        call_process_id: None,
    })
}

fn bench_e2ap(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2ap");
    for payload_size in [100usize, 1500] {
        let pdu = indication(Bytes::from(vec![0xA5u8; payload_size]));
        for codec in E2apCodec::ALL {
            let encoded = codec.encode(&pdu);
            group.bench_with_input(
                BenchmarkId::new(format!("encode/{}", codec.label()), payload_size),
                &pdu,
                |b, pdu| b.iter(|| codec.encode(std::hint::black_box(pdu))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("decode/{}", codec.label()), payload_size),
                &encoded,
                |b, buf| b.iter(|| codec.decode(std::hint::black_box(buf)).unwrap()),
            );
            // The Fig. 8b mechanism: peek is O(1) for FB, a full decode
            // for ASN.1-PER.
            group.bench_with_input(
                BenchmarkId::new(format!("peek/{}", codec.label()), payload_size),
                &encoded,
                |b, buf| b.iter(|| codec.peek(std::hint::black_box(buf)).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_sm(c: &mut Criterion) {
    let mut group = c.benchmark_group("mac_stats_32ue");
    let ind = mac_snapshot(32);
    for codec in SmCodec::ALL {
        let encoded = ind.encode(codec);
        group.bench_function(format!("encode/{}", codec.label()), |b| {
            b.iter(|| std::hint::black_box(&ind).encode(codec))
        });
        group.bench_function(format!("decode/{}", codec.label()), |b| {
            b.iter(|| MacStatsInd::decode(codec, std::hint::black_box(&encoded)).unwrap())
        });
    }
    // Allocate-per-message `encode` vs the scratch-reusing `encode_into`
    // path the agent report loop runs on: same generic body, but the
    // frozen-split buffer reclaims its capacity between messages.
    let mut scratch = BytesMut::with_capacity(4096);
    for codec in SmCodec::ALL {
        group.bench_function(format!("encode_into/{}", codec.label()), |b| {
            b.iter(|| std::hint::black_box(&ind).encode_into(codec, &mut scratch))
        });
    }
    // FlexRAN's protobuf baseline on the same snapshot.
    let pb = encode_stats_pb(&ind);
    group.bench_function("encode/PB", |b| b.iter(|| encode_stats_pb(std::hint::black_box(&ind))));
    group.bench_function("decode/PB", |b| {
        b.iter(|| decode_stats_pb(std::hint::black_box(&pb)).unwrap())
    });
    group.finish();
}

/// Word-level vs bit-by-bit bit packing on raw PER primitives.
fn bench_per_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_bits");
    // A representative mix of field widths (presence bits, enums, lengths,
    // 16/32/64-bit integers).
    let ops: Vec<(u64, u32)> = (0..256)
        .map(|i| {
            let n = [1, 3, 5, 8, 13, 16, 24, 32, 48, 64][i % 10];
            (0xDEAD_BEEF_CAFE_F00Du64.rotate_left(i as u32), n)
        })
        .collect();
    group.bench_function("put_bits/word", |b| {
        b.iter(|| {
            let mut w = BitWriter::with_capacity(2048);
            for &(v, n) in std::hint::black_box(&ops) {
                w.put_bits(v, n);
            }
            w.finish()
        })
    });
    group.bench_function("put_bits/bitwise", |b| {
        b.iter(|| {
            let mut w = BitWriter::with_capacity(2048);
            for &(v, n) in std::hint::black_box(&ops) {
                w.put_bits_bitwise(v, n);
            }
            w.finish()
        })
    });
    let mut w = BitWriter::new();
    for &(v, n) in &ops {
        w.put_bits(v, n);
    }
    let buf = w.finish();
    group.bench_function("get_bits/word", |b| {
        b.iter(|| {
            let mut r = BitReader::new(std::hint::black_box(&buf));
            for &(_, n) in &ops {
                r.get_bits(n).unwrap();
            }
        })
    });
    group.bench_function("get_bits/bitwise", |b| {
        b.iter(|| {
            let mut r = BitReader::new(std::hint::black_box(&buf));
            for &(_, n) in &ops {
                r.get_bits_bitwise(n).unwrap();
            }
        })
    });
    group.finish();
}

/// Allocate-per-message `encode` vs scratch-reusing `encode_into`, and
/// legacy framing vs the single-buffer frame path.
fn bench_encode_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_path");
    for payload_size in [100usize, 1500] {
        let pdu = indication(Bytes::from(vec![0xA5u8; payload_size]));
        for codec in E2apCodec::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("encode/{}", codec.label()), payload_size),
                &pdu,
                |b, pdu| b.iter(|| codec.encode(std::hint::black_box(pdu))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("encode_into/{}", codec.label()), payload_size),
                &pdu,
                |b, pdu| {
                    let mut scratch = BytesMut::with_capacity(4096);
                    b.iter(|| {
                        codec.encode_into(std::hint::black_box(pdu), &mut scratch);
                        scratch.split().freeze()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("encode+frame/{}", codec.label()), payload_size),
                &pdu,
                |b, pdu| {
                    b.iter(|| {
                        let payload = Bytes::from(codec.encode(std::hint::black_box(pdu)));
                        frame::encode_frame(0, 70, &payload)
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("encode_into+frame/{}", codec.label()), payload_size),
                &pdu,
                |b, pdu| {
                    let mut scratch = BytesMut::with_capacity(4096);
                    let mut framed = BytesMut::with_capacity(4096);
                    b.iter(|| {
                        codec.encode_into(std::hint::black_box(pdu), &mut scratch);
                        let payload = scratch.split().freeze();
                        frame::encode_frame_into(0, 70, &payload, &mut framed);
                        framed.split().freeze()
                    })
                },
            );
        }
    }
    group.finish();
}

/// 1→N indication fan-out: N independent encodes (old path) vs one encode
/// shared across N targets (new path).
fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("fanout_8");
    let pdu = indication(Bytes::from(mac_snapshot(32).encode(SmCodec::Flatb)));
    const N: usize = 8;
    for codec in E2apCodec::ALL {
        group.bench_function(format!("per_target_encode/{}", codec.label()), |b| {
            b.iter(|| {
                let mut frames = Vec::with_capacity(N);
                for _ in 0..N {
                    frames.push(Bytes::from(codec.encode(std::hint::black_box(&pdu))));
                }
                frames
            })
        });
        group.bench_function(format!("encode_once/{}", codec.label()), |b| {
            let mut scratch = EncodeScratch::with_capacity(4096);
            b.iter(|| {
                let mut outbox =
                    vec![(Targets::Many((0..N).collect()), std::hint::black_box(&pdu).clone())];
                let mut frames = Vec::with_capacity(N);
                flush_outbox(&mut scratch, codec, &mut outbox, |_, f| frames.push(f));
                frames
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_e2ap,
    bench_sm,
    bench_per_primitives,
    bench_encode_paths,
    bench_fanout
);
criterion_main!(benches);
