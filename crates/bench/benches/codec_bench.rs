//! Codec micro-benchmarks: encode / decode / peek across the three wire
//! formats — the per-message costs behind the paper's Figs. 7 and 8b.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexric_codec::E2apCodec;
use flexric_ctrl::flexran_emu::{decode_stats_pb, encode_stats_pb};
use flexric_e2ap::*;
use flexric_sm::mac::{MacStatsInd, MacUeStats};
use flexric_sm::{SmCodec, SmPayload};

fn mac_snapshot(ues: u16) -> MacStatsInd {
    MacStatsInd {
        tstamp_ms: 123_456,
        cell_prbs: 106,
        ues: (0..ues)
            .map(|i| MacUeStats {
                rnti: 0x4601 + i,
                cqi: 15,
                mcs: 20,
                prbs_dl: 50,
                prbs_ul: 10,
                tbs_dl_bytes: 61_600,
                tbs_ul_bytes: 8_000,
                dl_aggr_bytes: 1 << 33,
                ul_aggr_bytes: 1 << 20,
                bsr: 1200,
                dl_backlog_bytes: 95_000,
                slice_id: (i % 2) as u32,
                plmn_mcc: 208,
                plmn_mnc: 95,
            })
            .collect(),
    }
}

fn indication(payload: Bytes) -> E2apPdu {
    E2apPdu::RicIndication(RicIndication {
        req_id: RicRequestId::new(7, 3),
        ran_function: RanFunctionId::new(142),
        action: RicActionId(0),
        sn: Some(42),
        ind_type: RicIndicationType::Report,
        header: Bytes::new(),
        message: payload,
        call_process_id: None,
    })
}

fn bench_e2ap(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2ap");
    for payload_size in [100usize, 1500] {
        let pdu = indication(Bytes::from(vec![0xA5u8; payload_size]));
        for codec in E2apCodec::ALL {
            let encoded = codec.encode(&pdu);
            group.bench_with_input(
                BenchmarkId::new(format!("encode/{}", codec.label()), payload_size),
                &pdu,
                |b, pdu| b.iter(|| codec.encode(std::hint::black_box(pdu))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("decode/{}", codec.label()), payload_size),
                &encoded,
                |b, buf| b.iter(|| codec.decode(std::hint::black_box(buf)).unwrap()),
            );
            // The Fig. 8b mechanism: peek is O(1) for FB, a full decode
            // for ASN.1-PER.
            group.bench_with_input(
                BenchmarkId::new(format!("peek/{}", codec.label()), payload_size),
                &encoded,
                |b, buf| b.iter(|| codec.peek(std::hint::black_box(buf)).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_sm(c: &mut Criterion) {
    let mut group = c.benchmark_group("mac_stats_32ue");
    let ind = mac_snapshot(32);
    for codec in SmCodec::ALL {
        let encoded = ind.encode(codec);
        group.bench_function(format!("encode/{}", codec.label()), |b| {
            b.iter(|| std::hint::black_box(&ind).encode(codec))
        });
        group.bench_function(format!("decode/{}", codec.label()), |b| {
            b.iter(|| MacStatsInd::decode(codec, std::hint::black_box(&encoded)).unwrap())
        });
    }
    // FlexRAN's protobuf baseline on the same snapshot.
    let pb = encode_stats_pb(&ind);
    group.bench_function("encode/PB", |b| {
        b.iter(|| encode_stats_pb(std::hint::black_box(&ind)))
    });
    group.bench_function("decode/PB", |b| {
        b.iter(|| decode_stats_pb(std::hint::black_box(&pb)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_e2ap, bench_sm);
criterion_main!(benches);
