//! Scheduler micro-benchmarks: NVS decisions, the two-level MAC pipeline,
//! and the TC classifier — the per-TTI costs of the RAN substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexric_ransim::{CellConfig, FlowConfig, FlowKind, PathConfig, Sim, UeConfig};
use flexric_sm::slice::{SliceAlgo, SliceConf, SliceCtrl, SliceParams, UeSchedAlgo};
use flexric_sm::tc::FiveTupleRule;

fn loaded_sim(ues: u16, slices: u32) -> Sim {
    let mut sim = Sim::new(vec![CellConfig::nr("cell", 106)], PathConfig::default());
    for i in 0..ues {
        sim.attach_ue(0, UeConfig::new(0x4601 + i, 20));
        sim.add_flow(FlowConfig {
            cell: 0,
            rnti: 0x4601 + i,
            drb: 1,
            kind: FlowKind::GreedyTcp { mss: 1500 },
            tuple: (1, 100 + i as u32, 1000, 80, 6),
            start_ms: 0,
            stop_ms: None,
        });
    }
    if slices > 0 {
        sim.cells[0].apply_slice_ctrl(&SliceCtrl::SetAlgo { algo: SliceAlgo::Nvs }).unwrap();
        let share = 1000 / slices;
        let confs = (0..slices)
            .map(|id| SliceConf {
                id,
                label: format!("s{id}"),
                params: SliceParams::NvsCapacity { share_milli: share },
                ue_sched: UeSchedAlgo::PropFair,
            })
            .collect();
        sim.cells[0].apply_slice_ctrl(&SliceCtrl::AddModSlices { slices: confs }).unwrap();
        let assoc = (0..ues).map(|i| (0x4601 + i, i as u32 % slices)).collect();
        sim.cells[0].apply_slice_ctrl(&SliceCtrl::AssocUeSlice { assoc }).unwrap();
    }
    // Warm up queues so every tick does real scheduling work.
    sim.run_ms(200);
    sim
}

fn bench_tti(c: &mut Criterion) {
    let mut group = c.benchmark_group("tti");
    for (ues, slices) in [(4u16, 0u32), (32, 0), (32, 4)] {
        group.bench_with_input(
            BenchmarkId::new("tick", format!("{ues}ue_{slices}slices")),
            &(ues, slices),
            |b, &(ues, slices)| {
                let mut sim = loaded_sim(ues, slices);
                b.iter(|| sim.tick());
            },
        );
    }
    group.finish();
}

fn bench_classifier(c: &mut Criterion) {
    use flexric_ransim::rlc::{Packet, RlcBearer};
    use flexric_ransim::tc::TcLayer;
    use flexric_sm::tc::QueueKind;

    let mut group = c.benchmark_group("tc_classifier");
    for rules in [1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("ingress", rules), &rules, |b, &rules| {
            let mut tc = TcLayer::new();
            for r in 0..rules as u32 {
                tc.add_queue(r + 1, QueueKind::Fifo { cap_bytes: 0 });
                tc.add_rule(
                    FiveTupleRule {
                        id: r,
                        dst_port: Some(5000 + r as u16),
                        proto: Some(17),
                        ..Default::default()
                    },
                    r + 1,
                    r,
                )
                .unwrap();
            }
            let mut rlc = RlcBearer::new(0);
            let pkt = Packet {
                flow: 0,
                seq: 0,
                bytes: 1500,
                sent_ms: 0,
                enq_ms: 0,
                src_ip: 1,
                dst_ip: 2,
                src_port: 1000,
                dst_port: 80, // matches no rule: worst case, full scan
                proto: 6,
            };
            b.iter(|| {
                tc.ingress(std::hint::black_box(pkt), 0);
                tc.egress(&mut rlc, 0);
                rlc.drain(1_000_000, 0);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tti, bench_classifier);
criterion_main!(benches);
