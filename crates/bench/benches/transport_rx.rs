//! A/B micro-benchmarks of the transport receive path: the zero-copy slab
//! reassembler vs the legacy copy-per-frame receive it replaced.
//!
//! Two levels:
//!
//! * `rx_reassembly` — pure framing cost over an in-memory burst: the
//!   bytes enter the slab once (standing in for the kernel→user copy of
//!   `read`), then either every frame is sliced out as a refcounted view
//!   (`zero_copy`) or allocated+zeroed+copied per frame exactly as the
//!   old `recv` did (`copying`).
//! * `rx_socket` — the full `FramedReader` over a `tokio::io::duplex`
//!   pipe: `recv` (assembler) vs `recv_copying` (one header read + one
//!   payload read + per-frame allocation), which is the same code the
//!   `rx-copy` cargo feature switches the TCP transport back to.
//!
//! Run with `cargo bench -p flexric-bench --bench transport_rx`.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flexric_transport::frame::{decode_header, encode_frame_into, HEADER_LEN};
use flexric_transport::rx::FrameAssembler;
use flexric_transport::tcp::FramedReader;
use flexric_transport::WireMsg;

/// An encoded burst of `n` frames with `payload`-byte bodies, as it would
/// sit in the receive buffer after one large socket read.
fn burst(n: usize, payload: usize) -> Vec<u8> {
    let body = vec![0xA5u8; payload];
    let mut out = BytesMut::with_capacity(n * (HEADER_LEN + payload));
    for i in 0..n {
        encode_frame_into((i % 2) as u16, 70, &body, &mut out);
    }
    out.to_vec()
}

/// The legacy per-frame path: parse the header out of the burst, allocate
/// a fresh zeroed buffer for the payload, copy it in, freeze.  This is
/// byte-for-byte what the pre-assembler `recv` did per frame (minus the
/// syscalls, which `rx_socket` adds back).
fn drain_copying(mut buf: &[u8]) -> u64 {
    let mut frames = 0u64;
    while buf.len() >= HEADER_LEN {
        let mut hdr = [0u8; HEADER_LEN];
        hdr.copy_from_slice(&buf[..HEADER_LEN]);
        let (len, stream, ppid) = decode_header(&hdr);
        let len = len as usize;
        buf = &buf[HEADER_LEN..];
        let mut payload = BytesMut::zeroed(len);
        payload.copy_from_slice(&buf[..len]);
        buf = &buf[len..];
        std::hint::black_box(WireMsg { stream, ppid, payload: payload.freeze() });
        frames += 1;
    }
    frames
}

/// The zero-copy path: burst enters the slab once, frames come out as
/// refcounted views.
fn drain_assembler(asm: &mut FrameAssembler, buf: &[u8]) -> u64 {
    let mut frames = 0u64;
    asm.feed(buf);
    while let Ok(Some(msg)) = asm.next_frame() {
        std::hint::black_box(msg);
        frames += 1;
    }
    frames
}

fn bench_reassembly(c: &mut Criterion) {
    const FRAMES: usize = 64;
    let mut group = c.benchmark_group("rx_reassembly");
    for payload in [64usize, 1024, 16 * 1024] {
        let data = burst(FRAMES, payload);
        group.throughput(Throughput::Elements(FRAMES as u64));
        group.bench_with_input(BenchmarkId::new("copying", payload), &data, |b, data| {
            b.iter(|| {
                let n = drain_copying(std::hint::black_box(data));
                assert_eq!(n, FRAMES as u64);
            })
        });
        group.bench_with_input(BenchmarkId::new("zero_copy", payload), &data, |b, data| {
            let mut asm = FrameAssembler::new();
            b.iter(|| {
                let n = drain_assembler(&mut asm, std::hint::black_box(data));
                assert_eq!(n, FRAMES as u64);
            })
        });
    }
    group.finish();
}

fn bench_socket(c: &mut Criterion) {
    const FRAMES: usize = 64;
    let rt = tokio::runtime::Builder::new_current_thread().enable_all().build().unwrap();
    let mut group = c.benchmark_group("rx_socket");
    for payload in [64usize, 1024, 16 * 1024] {
        let data = burst(FRAMES, payload);
        let cap = data.len() + 1;
        group.throughput(Throughput::Elements(FRAMES as u64));
        for copying in [true, false] {
            let name = if copying { "copying" } else { "zero_copy" };
            group.bench_with_input(BenchmarkId::new(name, payload), &data, |b, data| {
                b.iter(|| {
                    rt.block_on(async {
                        // A duplex wide enough to hold the whole burst, so
                        // the reader sees the same single-wakeup shape a
                        // loaded TCP socket produces.
                        let (mut w, r) = tokio::io::duplex(cap);
                        tokio::io::AsyncWriteExt::write_all(&mut w, data).await.unwrap();
                        drop(w);
                        let mut rd = FramedReader::new(r);
                        let mut n = 0u64;
                        loop {
                            let msg = if copying {
                                rd.recv_copying().await.unwrap()
                            } else {
                                rd.recv().await.unwrap()
                            };
                            match msg {
                                Some(m) => {
                                    std::hint::black_box(m);
                                    n += 1;
                                }
                                None => break,
                            }
                        }
                        assert_eq!(n, FRAMES as u64);
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_reassembly, bench_socket);
criterion_main!(benches);
