//! Stack micro-benchmarks: the server's indication dispatch path (peek +
//! subscription lookup + iApp callback) under FB vs ASN.1, and the agent's
//! per-tick statistics export.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use flexric_codec::E2apCodec;
use flexric_e2ap::*;
use flexric_sm::{mac::MacStatsInd, SmCodec, SmPayload};

/// Simulates the server hot path: what happens per arriving indication.
fn dispatch_cost(codec: E2apCodec, raw: &[u8]) -> usize {
    // 1. Routing lookup.
    let hdr = codec.peek(raw).unwrap();
    // 2. Payload slice for the monitoring iApp.
    match codec {
        E2apCodec::Flatb => {
            let (_h, m) = flexric_codec::e2ap_fb::indication_payload(raw).unwrap();
            hdr.req_id.map(|r| r.instance as usize).unwrap_or(0) + m.len()
        }
        E2apCodec::Asn1Per => {
            // ASN.1: peek already decoded; a real dispatch decodes once —
            // model exactly one decode.
            match codec.decode(raw).unwrap() {
                E2apPdu::RicIndication(ind) => {
                    hdr.req_id.map(|r| r.instance as usize).unwrap_or(0) + ind.message.len()
                }
                _ => unreachable!(),
            }
        }
    }
}

fn bench_dispatch(c: &mut Criterion) {
    let stats = MacStatsInd {
        tstamp_ms: 1,
        cell_prbs: 106,
        ues: (0..32)
            .map(|i| flexric_sm::mac::MacUeStats {
                rnti: 0x4601 + i,
                tbs_dl_bytes: 1500,
                ..Default::default()
            })
            .collect(),
    };
    let mut group = c.benchmark_group("server_dispatch_32ue");
    for (codec, sm) in [(E2apCodec::Flatb, SmCodec::Flatb), (E2apCodec::Asn1Per, SmCodec::Asn1Per)]
    {
        let pdu = E2apPdu::RicIndication(RicIndication {
            req_id: RicRequestId::new(1, 1),
            ran_function: RanFunctionId::new(142),
            action: RicActionId(0),
            sn: None,
            ind_type: RicIndicationType::Report,
            header: Bytes::new(),
            message: Bytes::from(stats.encode(sm)),
            call_process_id: None,
        });
        let raw = codec.encode(&pdu);
        group.bench_function(codec.label(), |b| {
            b.iter(|| dispatch_cost(codec, std::hint::black_box(&raw)))
        });
    }
    group.finish();
}

fn bench_agent_export(c: &mut Criterion) {
    // One agent tick on the export path: snapshot → SM encode → E2AP encode.
    let stats = MacStatsInd {
        tstamp_ms: 1,
        cell_prbs: 106,
        ues: (0..32)
            .map(|i| flexric_sm::mac::MacUeStats { rnti: 0x4601 + i, ..Default::default() })
            .collect(),
    };
    let mut group = c.benchmark_group("agent_export_32ue");
    for (codec, sm) in [(E2apCodec::Flatb, SmCodec::Flatb), (E2apCodec::Asn1Per, SmCodec::Asn1Per)]
    {
        group.bench_function(codec.label(), |b| {
            b.iter(|| {
                let msg = Bytes::from(std::hint::black_box(&stats).encode(sm));
                let pdu = E2apPdu::RicIndication(RicIndication {
                    req_id: RicRequestId::new(1, 1),
                    ran_function: RanFunctionId::new(142),
                    action: RicActionId(0),
                    sn: None,
                    ind_type: RicIndicationType::Report,
                    header: Bytes::new(),
                    message: msg,
                    call_process_id: None,
                });
                codec.encode(&pdu)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch, bench_agent_export);
criterion_main!(benches);
