//! CPU and memory metering via `/proc` — the substitute for the paper's
//! `docker stats` (same kernel counters, no container layer).

use std::fs;
use std::io;
use std::time::Instant;

/// Kernel clock ticks per second.  Linux has used 100 for USER_HZ-visible
/// interfaces for decades; the value is part of the kernel ABI for
/// `/proc/<pid>/stat`.
pub const CLK_TCK: f64 = 100.0;

/// One CPU/memory sample of a process.
#[derive(Debug, Clone, Copy)]
pub struct ProcSample {
    /// utime + stime, in clock ticks.
    pub cpu_ticks: u64,
    /// Resident set size, KiB.
    pub rss_kb: u64,
    /// Peak resident set size, KiB.
    pub hwm_kb: u64,
    /// When the sample was taken.
    pub at: Instant,
}

/// Reads `/proc/<pid>/stat` + `/proc/<pid>/status` (pid `None` = self).
pub fn sample(pid: Option<u32>) -> io::Result<ProcSample> {
    let base = match pid {
        Some(p) => format!("/proc/{p}"),
        None => "/proc/self".to_owned(),
    };
    let stat = fs::read_to_string(format!("{base}/stat"))?;
    // Field 2 (comm) may contain spaces; split after the closing paren.
    let after = stat
        .rsplit_once(')')
        .map(|(_, rest)| rest)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad stat format"))?;
    let fields: Vec<&str> = after.split_whitespace().collect();
    // After the comm field: state is index 0, utime is index 11, stime 12.
    let utime: u64 = fields
        .get(11)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no utime"))?;
    let stime: u64 = fields
        .get(12)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no stime"))?;

    let status = fs::read_to_string(format!("{base}/status"))?;
    let grab = |key: &str| -> u64 {
        status
            .lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    Ok(ProcSample {
        cpu_ticks: utime + stime,
        rss_kb: grab("VmRSS:"),
        hwm_kb: grab("VmHWM:"),
        at: Instant::now(),
    })
}

/// CPU usage in percent of one core between two samples.
pub fn cpu_pct(a: &ProcSample, b: &ProcSample) -> f64 {
    let wall = b.at.duration_since(a.at).as_secs_f64();
    if wall <= 0.0 {
        return 0.0;
    }
    let cpu_s = (b.cpu_ticks.saturating_sub(a.cpu_ticks)) as f64 / CLK_TCK;
    cpu_s / wall * 100.0
}

/// CPU usage normalized by a machine core count, as the paper reports
/// ("note that the LTE cell has 8 cores, the NR cell 16").
pub fn cpu_pct_normalized(a: &ProcSample, b: &ProcSample, cores: u32) -> f64 {
    cpu_pct(a, b) / cores.max(1) as f64
}

/// A meter wrapping start/stop sampling of one process.
#[derive(Debug)]
pub struct Meter {
    pid: Option<u32>,
    start: ProcSample,
}

impl Meter {
    /// Starts metering a process (`None` = self).
    pub fn start(pid: Option<u32>) -> io::Result<Meter> {
        Ok(Meter { pid, start: sample(pid)? })
    }

    /// Reads the meter: `(cpu % of one core, current RSS KiB, peak KiB)`.
    pub fn read(&self) -> io::Result<(f64, u64, u64)> {
        let now = sample(self.pid)?;
        Ok((cpu_pct(&self.start, &now), now.rss_kb, now.hwm_kb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_self_is_sane() {
        let s = sample(None).unwrap();
        assert!(s.rss_kb > 100, "some resident memory: {}", s.rss_kb);
        assert!(s.hwm_kb >= s.rss_kb);
    }

    #[test]
    fn busy_loop_registers_cpu() {
        let a = sample(None).unwrap();
        // Burn ~80 ms of CPU.
        let t0 = Instant::now();
        let mut x = 0u64;
        while t0.elapsed().as_millis() < 80 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(x);
        let b = sample(None).unwrap();
        let pct = cpu_pct(&a, &b);
        assert!(pct > 30.0, "busy loop should register: {pct:.1}%");
        assert!(cpu_pct_normalized(&a, &b, 8) < pct);
    }

    #[test]
    fn meter_reads() {
        let m = Meter::start(None).unwrap();
        let (_cpu, rss, hwm) = m.read().unwrap();
        assert!(rss > 0);
        assert!(hwm >= rss);
    }

    #[test]
    fn missing_pid_errors() {
        assert!(sample(Some(u32::MAX - 3)).is_err());
    }
}
