//! Reusable process roles for the multi-process experiments: each CPU/RSS
//! figure runs its components in separate processes (spawned via
//! [`crate::spawn_role`]) so `/proc` attribution is clean, mirroring the
//! paper's per-container `docker stats` measurements.

use std::sync::Arc;

use parking_lot::Mutex;

use flexric::agent::{Agent, AgentConfig};
use flexric::server::{Server, ServerConfig};
use flexric_codec::E2apCodec;
use flexric_ctrl::dummy::{dummy_bundle, dummy_mac_only};
use flexric_ctrl::flexran_emu::{FlexranAgent, FlexranSnapshot};
use flexric_ctrl::monitoring::{MonitorApp, MonitorConfig};
use flexric_ctrl::ranfun::{stats_bundle, SimBs};
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_ransim::{CellConfig, FlowConfig, FlowKind, PathConfig, Sim, UeConfig};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;

use crate::Args;

/// Parses the `--codec` flag (`fb` | `asn`).
pub fn codec_arg(args: &Args) -> E2apCodec {
    match args.get("codec") {
        Some("asn") => E2apCodec::Asn1Per,
        _ => E2apCodec::Flatb,
    }
}

/// SM codec matching the E2AP choice of [`codec_arg`].
pub fn sm_codec_of(codec: E2apCodec) -> SmCodec {
    match codec {
        E2apCodec::Asn1Per => SmCodec::Asn1Per,
        E2apCodec::Flatb => SmCodec::Flatb,
    }
}

/// Parses `--sm fb|asn`, defaulting to match the E2AP codec.  Fig. 8b
/// holds the SM encoding at FB while sweeping only the E2AP encoding, as
/// the paper does ("dummy test agents that export the same statistics (in
/// FB)").
pub fn sm_arg(args: &Args, e2ap: E2apCodec) -> SmCodec {
    match args.get("sm") {
        Some("asn") => SmCodec::Asn1Per,
        Some("fb") => SmCodec::Flatb,
        _ => sm_codec_of(e2ap),
    }
}

/// Builds the simulated cell of `--cell lte25|lte50|nr106` with `--ues`
/// UEs at `--mcs`, each with one greedy TCP downlink flow.
pub fn build_sim(args: &Args) -> Arc<Mutex<Sim>> {
    let cell = match args.get("cell") {
        Some("lte25") => CellConfig::lte("cell0", 25),
        Some("lte50") => CellConfig::lte("cell0", 50),
        _ => CellConfig::nr("cell0", 106),
    };
    let mcs: u8 =
        args.get_or("mcs", if matches!(args.get("cell"), Some("lte25")) { 28 } else { 20 });
    let ues: u16 = args.get_or("ues", 3);
    let mut sim = Sim::new(vec![cell], PathConfig::default());
    for i in 0..ues {
        sim.attach_ue(0, UeConfig::new(0x4601 + i, mcs));
        sim.add_flow(FlowConfig {
            cell: 0,
            rnti: 0x4601 + i,
            drb: 1,
            kind: FlowKind::GreedyTcp { mss: 1500 },
            tuple: (0x0A00_0001, 0x0A00_0100 + i as u32, 1000, 80, 6),
            start_ms: 0,
            stop_ms: None,
        });
    }
    Arc::new(Mutex::new(sim))
}

/// Role: a simulated base station driven in real time at 1 ms TTI, with
/// an optional agent variant (`--variant flexric|flexran|none`).
/// Runs for `--duration` seconds, then exits.
pub async fn role_bs(args: &Args) {
    let sim = build_sim(args);
    let duration_s: u64 = args.get_or("duration", 10);
    let variant = args.get("variant").unwrap_or("flexric").to_owned();
    let ctrl_addr = args.get("ctrl").map(|a| TransportAddr::parse(a).expect("ctrl addr"));
    let codec = codec_arg(args);
    let sm_codec = sm_codec_of(codec);

    // Attach the agent variant.
    let mut flexric_agent = None;
    let mut flexran_agent = None;
    match variant.as_str() {
        "flexric" => {
            let addr = ctrl_addr.expect("--ctrl required for flexric variant");
            let mut acfg =
                AgentConfig::new(GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1), addr);
            acfg.codec = codec;
            acfg.tick_ms = None; // driven by the sim loop below
            let bs = SimBs::new(sim.clone(), 0);
            let agent = Agent::spawn(acfg, stats_bundle(&bs, sm_codec)).await.expect("agent");
            flexric_agent = Some(agent);
        }
        "flexran" => {
            let addr = ctrl_addr.expect("--ctrl required for flexran variant");
            let sim2 = sim.clone();
            let agent = FlexranAgent::spawn(&addr, move |_now| {
                let mut sim = sim2.lock();
                let cell = &mut sim.cells[0];
                FlexranSnapshot {
                    mac: cell.mac_stats(),
                    rlc: cell.rlc_stats(),
                    pdcp: cell.pdcp_stats(),
                }
            })
            .await
            .expect("flexran agent");
            flexran_agent = Some(agent);
        }
        _ => {}
    }

    // Real-time TTI driver.
    let mut iv = tokio::time::interval(std::time::Duration::from_millis(1));
    iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
    let t0 = std::time::Instant::now();
    while t0.elapsed().as_secs() < duration_s {
        iv.tick().await;
        let now = {
            let mut s = sim.lock();
            s.tick();
            s.now_ms()
        };
        if let Some(a) = &flexric_agent {
            a.tick(now);
        }
        if let Some(a) = &flexran_agent {
            a.tick(now);
        }
    }
}

/// Role: a FlexRIC monitoring controller (stats iApp) listening on
/// `--listen`, with `--period` ms subscriptions, running until killed.
/// `--shards N` runs a sharded server with one monitor replica per shard
/// sharing the same store (`0` = one shard per core; default `1`).
pub async fn role_monitor(args: &Args) {
    let listen = TransportAddr::parse(args.get("listen").expect("--listen")).expect("addr");
    let codec = codec_arg(args);
    let period: u32 = args.get_or("period", 1);
    let store = !args.has("no-store");
    let mcfg = MonitorConfig {
        period_ms: period,
        sm_codec: sm_arg(args, codec),
        store,
        ..Default::default()
    };
    let mut cfg = ServerConfig::new(GlobalRicId::new(Plmn::TEST, 1), listen);
    cfg.codec = codec;
    cfg.tick_ms = Some(100);
    cfg.shards = args.get_or("shards", 1);
    let (app, db, counters) = MonitorApp::new(mcfg);
    let mut first = Some(app);
    let _server = Server::spawn_sharded(cfg, move |_shard| {
        let app =
            first.take().unwrap_or_else(|| MonitorApp::replica(mcfg, db.clone(), counters.clone()));
        vec![Box::new(app) as Box<dyn flexric::server::IApp>]
    })
    .await
    .expect("server");
    futures_park().await;
}

/// Role: a FlexRAN controller (RIB + 1 ms polling app) on `--listen`.
pub async fn role_flexran_ctrl(args: &Args) {
    let listen = TransportAddr::parse(args.get("listen").expect("--listen")).expect("addr");
    let period: u32 = args.get_or("period", 1);
    let _ctrl = flexric_ctrl::flexran_emu::FlexranController::spawn(&listen, period)
        .await
        .expect("flexran controller");
    futures_park().await;
}

/// Role: `--agents` dummy test agents (32 UEs each) connected to
/// `--ctrl`, self-ticked at 1 ms; exports MAC(+RLC+PDCP unless
/// `--mac-only`) statistics.
pub async fn role_dummy_agents(args: &Args) {
    let ctrl = TransportAddr::parse(args.get("ctrl").expect("--ctrl")).expect("addr");
    let n: usize = args.get_or("agents", 10);
    let ues: u16 = args.get_or("ues", 32);
    let codec = codec_arg(args);
    let sm_codec = sm_arg(args, codec);
    let mac_only = args.has("mac-only");
    let mut handles = Vec::new();
    for i in 0..n {
        let mut acfg = AgentConfig::new(
            GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 100 + i as u64),
            ctrl.clone(),
        );
        acfg.codec = codec;
        acfg.tick_ms = Some(1);
        let fns =
            if mac_only { dummy_mac_only(ues, sm_codec) } else { dummy_bundle(ues, sm_codec) };
        let agent = Agent::spawn(acfg, fns).await.expect("dummy agent");
        handles.push(agent);
    }
    futures_park().await;
}

/// Role: `--agents` FlexRAN agents with synthetic 32-UE statistics.
pub async fn role_flexran_dummy_agents(args: &Args) {
    let ctrl = TransportAddr::parse(args.get("ctrl").expect("--ctrl")).expect("addr");
    let n: usize = args.get_or("agents", 10);
    let ues: u16 = args.get_or("ues", 32);
    let mut handles = Vec::new();
    for _ in 0..n {
        let agent = FlexranAgent::spawn(&ctrl, move |now| synthetic_snapshot(now, ues))
            .await
            .expect("flexran dummy");
        handles.push(agent);
    }
    // Self-tick at 1 ms.
    let mut iv = tokio::time::interval(std::time::Duration::from_millis(1));
    iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
    let t0 = std::time::Instant::now();
    loop {
        iv.tick().await;
        let now = t0.elapsed().as_millis() as u64;
        for a in &handles {
            a.tick(now);
        }
    }
}

/// Synthetic statistics equivalent to the dummy E2 agents' payload.
pub fn synthetic_snapshot(now: u64, ues: u16) -> FlexranSnapshot {
    use flexric_sm::{mac::*, pdcp::*, rlc::*};
    FlexranSnapshot {
        mac: MacStatsInd {
            tstamp_ms: now,
            cell_prbs: 106,
            ues: (0..ues)
                .map(|i| MacUeStats {
                    rnti: 0x4601 + i,
                    cqi: 15,
                    mcs: 20,
                    prbs_dl: 3,
                    tbs_dl_bytes: 1500 + now % 512,
                    dl_aggr_bytes: now * 1500,
                    bsr: (now % 4000) as u32,
                    dl_backlog_bytes: now % 90_000,
                    ..Default::default()
                })
                .collect(),
        },
        rlc: RlcStatsInd {
            tstamp_ms: now,
            bearers: (0..ues)
                .map(|i| RlcBearerStats {
                    rnti: 0x4601 + i,
                    drb_id: 1,
                    tx_pdus: now,
                    tx_bytes: now * 1400,
                    buffer_bytes: now % 250_000,
                    sojourn_us_avg: 1000 + now % 9000,
                    ..Default::default()
                })
                .collect(),
        },
        pdcp: PdcpStatsInd {
            tstamp_ms: now,
            bearers: (0..ues)
                .map(|i| PdcpBearerStats {
                    rnti: 0x4601 + i,
                    drb_id: 1,
                    tx_pdus: now,
                    tx_bytes: now * 1400,
                    tx_aggr_bytes: now * 1400,
                    ..Default::default()
                })
                .collect(),
        },
    }
}

/// Parks the task forever (roles run until the orchestrator kills them).
pub async fn futures_park() {
    std::future::pending::<()>().await;
}

/// Dispatches `--role` subprocesses; returns `false` when no role flag is
/// present (the caller is the orchestrator).
pub async fn dispatch(args: &Args) -> bool {
    match args.get("role") {
        Some("bs") => {
            role_bs(args).await;
            true
        }
        Some("monitor") => {
            role_monitor(args).await;
            true
        }
        Some("flexran-ctrl") => {
            role_flexran_ctrl(args).await;
            true
        }
        Some("dummy-agents") => {
            role_dummy_agents(args).await;
            true
        }
        Some("flexran-dummy-agents") => {
            role_flexran_dummy_agents(args).await;
            true
        }
        Some(other) => panic!("unknown role {other}"),
        None => false,
    }
}
