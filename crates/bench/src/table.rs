//! Plain-text table/series output, in the shape of the paper's figures.

/// Prints a header block naming the experiment.
pub fn experiment(id: &str, title: &str) {
    println!();
    println!("== {id}: {title} ==");
}

/// Prints a table from a header row and data rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Prints a time series as `t<TAB>v…` rows (easily plottable).
pub fn series(name: &str, points: &[(f64, f64)]) {
    println!("# series: {name}");
    for (t, v) in points {
        println!("{t:.3}\t{v:.3}");
    }
}

/// Formats a float with limited digits.
pub fn f(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}
