//! Shared infrastructure of the experiment harness: CPU/memory metering,
//! percentile helpers, table printing, and multi-process orchestration.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; Criterion
//! micro-benchmarks live in `benches/`.  See DESIGN.md §3 for the
//! experiment index and EXPERIMENTS.md for recorded results.

pub mod metrics;
pub mod roles;
pub mod table;

use std::io;
use std::process::{Child, Command, Stdio};

/// Re-executes the current binary with `args`, inheriting stdout/stderr.
/// Used to place components in separate processes so `/proc` attribution
/// is clean (the paper measures per-component CPU the same way via
/// `docker stats`).
pub fn spawn_role(args: &[String]) -> io::Result<Child> {
    let exe = std::env::current_exe()?;
    Command::new(exe)
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit())
        .spawn()
}

// Percentile/summary helpers are shared with the always-on observability
// subsystem — the exact-sample statistics live in `flexric_obs::stats`,
// the table formatting stays here.
pub use flexric_obs::stats::{percentile, summarize, Summary};

/// Simple flag parser: `--key value` pairs after the binary name.
pub struct Args {
    args: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Args { args: std::env::args().skip(1).collect() }
    }

    /// The value following `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        let flag = format!("--{key}");
        self.args
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.args.get(i + 1))
            .map(|s| s.as_str())
    }

    /// Typed getter with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Whether a bare flag is present.
    pub fn has(&self, key: &str) -> bool {
        let flag = format!("--{key}");
        self.args.iter().any(|a| a == &flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 99.0), 99);
        assert_eq!(percentile(&s, 100.0), 100);
        assert_eq!(percentile(&s, 1.0), 1);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn summary_fields() {
        let mut s = vec![5, 1, 3, 2, 4];
        let sum = summarize(&mut s);
        assert_eq!(sum.n, 5);
        assert_eq!(sum.min, 1);
        assert_eq!(sum.max, 5);
        assert_eq!(sum.p50, 3);
        assert!((sum.mean - 3.0).abs() < 1e-9);
        let sum = summarize(&mut vec![]);
        assert_eq!(sum.n, 0);
    }
}
