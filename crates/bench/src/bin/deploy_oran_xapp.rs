//! Deployable unit: an O-RAN-style monitoring xApp (the "Stats xApp" row
//! of the paper's Table 2).
//!
//! ```text
//! deploy_oran_xapp --rmr-listen 127.0.0.1:4560
//! ```

use flexric_bench::Args;
use flexric_transport::TransportAddr;

#[tokio::main]
async fn main() {
    let args = Args::parse();
    let listen = TransportAddr::parse(args.get("rmr-listen").unwrap_or("127.0.0.1:4560")).unwrap();
    let xapp = flexric_ctrl::oran_emu::OranXapp::spawn(listen, flexric_sm::SmCodec::Asn1Per)
        .await
        .expect("xapp");
    println!("oran-xapp RMR listening on {}", xapp.rmr_addr);
    std::future::pending::<()>().await;
}
