//! Deployable unit: one O-RAN-style platform component (database /
//! manager / monitor stand-in).  The reference RIC runs ~15 of these.
//!
//! ```text
//! deploy_oran_platform --components 1 --mb 12
//! ```

use flexric_bench::Args;

#[tokio::main]
async fn main() {
    let args = Args::parse();
    let components: usize = args.get_or("components", 1);
    let mb: usize = args.get_or("mb", 12);
    let _guard = flexric_ctrl::oran_emu::spawn_platform(components, mb);
    println!("oran-platform: {components} component(s), {mb} MiB each");
    std::future::pending::<()>().await;
}
