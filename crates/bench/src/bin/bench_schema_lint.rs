//! Schema lint for the committed `BENCH_*.json` snapshots.
//!
//! Every benchmark snapshot must carry the honesty header — `bench`,
//! `source`, `status`, `note` — and a non-empty `points` array, so a
//! reader can always tell what was measured, where, and under which
//! caveats.  Run from the repository root (CI does):
//!
//! ```text
//! cargo run --release -p flexric-bench --bin bench_schema_lint [-- DIR]
//! ```

use serde_json::Value;

const REQUIRED_STR: &[&str] = &["bench", "source", "status", "note"];

fn lint(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let v: Value = serde_json::from_str(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let obj = v.as_object().ok_or("top level is not an object")?;
    for key in REQUIRED_STR {
        match obj.get(*key) {
            Some(Value::String(s)) if !s.trim().is_empty() => {}
            Some(_) => return Err(format!("`{key}` is not a non-empty string")),
            None => return Err(format!("missing `{key}`")),
        }
    }
    match obj.get("points") {
        Some(Value::Array(a)) if !a.is_empty() => {}
        Some(Value::Array(_)) => return Err("`points` is empty".into()),
        Some(_) => return Err("`points` is not an array".into()),
        None => return Err("missing `points`".into()),
    }
    Ok(())
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());
    let mut seen = 0usize;
    let mut failed = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                .unwrap_or(false)
        })
        .collect();
    entries.sort();
    for path in &entries {
        seen += 1;
        match lint(path) {
            Ok(()) => println!("ok   {}", path.display()),
            Err(e) => {
                failed += 1;
                eprintln!("FAIL {}: {e}", path.display());
            }
        }
    }
    if seen == 0 {
        eprintln!("FAIL: no BENCH_*.json found in {dir}");
        std::process::exit(1);
    }
    if failed > 0 {
        eprintln!("{failed}/{seen} snapshots fail the schema lint");
        std::process::exit(1);
    }
    println!("{seen} snapshot(s) pass the schema lint");
}
