//! Fig. 8b — Controller CPU vs. number of agents, ASN.1 vs FB E2AP
//! encoding (paper §5.3).
//!
//! Dummy test agents (32 UEs each, MAC+RLC+PDCP at `--period` ms) feed a
//! FlexRIC monitoring controller.  With FB, the controller's subscription
//! lookup peeks the header straight from the raw bytes; with ASN.1 every
//! message must be fully decoded first — the paper measures ~4× more CPU
//! for ASN.1.  `--period 10` reproduces the §5.3 side-note that ~100
//! agents are sustainable at a 10 ms export period.
//!
//! `--shards N` runs the controller role sharded (`0` = one per core);
//! see `fig8b_sharded_sweep` for the mem-transport sweep toward 10k
//! agents.  Results are also written as a machine-readable snapshot to
//! `--out` (default `BENCH_fig8b.json`, `--out -` to skip).
//!
//! ```text
//! cargo run --release -p flexric-bench --bin fig8b_controller_scaling \
//!     [--duration 8] [--max-agents 18] [--step 4] [--period 1] [--shards 1]
//! ```

use flexric_bench::{metrics, roles, spawn_role, table, Args};
use serde_json::json;

async fn run_point(
    codec: &str,
    agents: usize,
    period: u32,
    duration: u64,
    port: u16,
    shards: usize,
) -> f64 {
    let mut ctrl = spawn_role(&[
        "--role".into(),
        "monitor".into(),
        "--listen".into(),
        format!("127.0.0.1:{port}"),
        "--period".into(),
        period.to_string(),
        "--codec".into(),
        codec.into(),
        "--sm".into(),
        "fb".into(),
        "--shards".into(),
        shards.to_string(),
        // Scaling run: measure the dispatch path, not the store.
        "--no-store".into(),
        "x".into(),
    ])
    .expect("spawn controller");
    tokio::time::sleep(std::time::Duration::from_millis(300)).await;
    let mut ag = spawn_role(&[
        "--role".into(),
        "dummy-agents".into(),
        "--ctrl".into(),
        format!("127.0.0.1:{port}"),
        "--agents".into(),
        agents.to_string(),
        "--ues".into(),
        "32".into(),
        "--codec".into(),
        codec.into(),
        "--sm".into(),
        "fb".into(),
    ])
    .expect("spawn agents");
    tokio::time::sleep(std::time::Duration::from_millis(1500)).await;
    let a = metrics::sample(Some(ctrl.id())).expect("sample");
    tokio::time::sleep(std::time::Duration::from_secs(duration)).await;
    let b = metrics::sample(Some(ctrl.id())).expect("sample");
    let cpu = metrics::cpu_pct(&a, &b);
    let _ = ag.kill();
    let _ = ag.wait();
    let _ = ctrl.kill();
    let _ = ctrl.wait();
    cpu
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args = Args::parse();
    if roles::dispatch(&args).await {
        return;
    }
    let duration: u64 = args.get_or("duration", 8);
    let max_agents: usize = args.get_or("max-agents", 18);
    let step: usize = args.get_or("step", 4);
    let period: u32 = args.get_or("period", 1);
    let shards: usize = args.get_or("shards", 1);
    let out = args.get("out").unwrap_or("BENCH_fig8b.json").to_owned();

    table::experiment(
        "Fig. 8b",
        "Controller CPU vs #agents, FB vs ASN.1 E2AP (32 UEs/agent, stats every period)",
    );
    println!("period = {period} ms, shards = {shards}");
    let mut rows = Vec::new();
    let mut json_points = Vec::new();
    let mut port = 39400u16;
    let mut points: Vec<usize> = (1..=max_agents).step_by(step.max(1)).collect();
    if *points.last().unwrap_or(&0) != max_agents {
        points.push(max_agents);
    }
    for agents in points {
        let mut row = vec![agents.to_string()];
        let mut point = vec![("agents".to_owned(), json!(agents))];
        for codec in ["asn", "fb"] {
            port += 1;
            let cpu = run_point(codec, agents, period, duration, port, shards).await;
            eprintln!("  agents={agents} {codec}: {cpu:.1} %");
            row.push(table::f(cpu));
            point.push((format!("{codec}_cpu_pct"), json!((cpu * 10.0).round() / 10.0)));
        }
        rows.push(row);
        json_points.push(serde_json::Value::Object(point.into_iter().collect()));
    }
    table::table(&["agents", "asn1_cpu_%", "fb_cpu_%"], &rows);
    if out != "-" {
        let snapshot = json!({
            "bench": "fig8b",
            "source": "fig8b_controller_scaling",
            "transport": "tcp-loopback",
            "sm_codec": "fb",
            "period_ms": period,
            "ues_per_agent": 32,
            "shards": shards,
            "duration_s": duration,
            "points": json_points,
        });
        let text = serde_json::to_string_pretty(&snapshot).expect("json") + "\n";
        std::fs::write(&out, text).expect("write snapshot");
        println!("snapshot written to {out}");
    }
    println!();
    println!("Paper shape check: ASN.1 ≈4x the CPU of FB at equal agent counts —");
    println!("the FB path peeks the routing header from raw bytes, the ASN.1 path");
    println!("must fully decode every indication before dispatch.");
}
