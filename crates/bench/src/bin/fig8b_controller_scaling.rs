//! Fig. 8b — Controller CPU vs. number of agents, ASN.1 vs FB E2AP
//! encoding (paper §5.3).
//!
//! Dummy test agents (32 UEs each, MAC+RLC+PDCP at `--period` ms) feed a
//! FlexRIC monitoring controller.  With FB, the controller's subscription
//! lookup peeks the header straight from the raw bytes; with ASN.1 every
//! message must be fully decoded first — the paper measures ~4× more CPU
//! for ASN.1.  `--period 10` reproduces the §5.3 side-note that ~100
//! agents are sustainable at a 10 ms export period.
//!
//! ```text
//! cargo run --release -p flexric-bench --bin fig8b_controller_scaling \
//!     [--duration 8] [--max-agents 18] [--step 4] [--period 1]
//! ```

use flexric_bench::{metrics, roles, spawn_role, table, Args};

async fn run_point(codec: &str, agents: usize, period: u32, duration: u64, port: u16) -> f64 {
    let mut ctrl = spawn_role(&[
        "--role".into(),
        "monitor".into(),
        "--listen".into(),
        format!("127.0.0.1:{port}"),
        "--period".into(),
        period.to_string(),
        "--codec".into(),
        codec.into(),
        "--sm".into(),
        "fb".into(),
        // Scaling run: measure the dispatch path, not the store.
        "--no-store".into(),
        "x".into(),
    ])
    .expect("spawn controller");
    tokio::time::sleep(std::time::Duration::from_millis(300)).await;
    let mut ag = spawn_role(&[
        "--role".into(),
        "dummy-agents".into(),
        "--ctrl".into(),
        format!("127.0.0.1:{port}"),
        "--agents".into(),
        agents.to_string(),
        "--ues".into(),
        "32".into(),
        "--codec".into(),
        codec.into(),
        "--sm".into(),
        "fb".into(),
    ])
    .expect("spawn agents");
    tokio::time::sleep(std::time::Duration::from_millis(1500)).await;
    let a = metrics::sample(Some(ctrl.id())).expect("sample");
    tokio::time::sleep(std::time::Duration::from_secs(duration)).await;
    let b = metrics::sample(Some(ctrl.id())).expect("sample");
    let cpu = metrics::cpu_pct(&a, &b);
    let _ = ag.kill();
    let _ = ag.wait();
    let _ = ctrl.kill();
    let _ = ctrl.wait();
    cpu
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args = Args::parse();
    if roles::dispatch(&args).await {
        return;
    }
    let duration: u64 = args.get_or("duration", 8);
    let max_agents: usize = args.get_or("max-agents", 18);
    let step: usize = args.get_or("step", 4);
    let period: u32 = args.get_or("period", 1);

    table::experiment(
        "Fig. 8b",
        "Controller CPU vs #agents, FB vs ASN.1 E2AP (32 UEs/agent, stats every period)",
    );
    println!("period = {period} ms");
    let mut rows = Vec::new();
    let mut port = 39400u16;
    let mut points: Vec<usize> = (1..=max_agents).step_by(step.max(1)).collect();
    if *points.last().unwrap_or(&0) != max_agents {
        points.push(max_agents);
    }
    for agents in points {
        let mut row = vec![agents.to_string()];
        for codec in ["asn", "fb"] {
            port += 1;
            let cpu = run_point(codec, agents, period, duration, port).await;
            eprintln!("  agents={agents} {codec}: {cpu:.1} %");
            row.push(table::f(cpu));
        }
        rows.push(row);
    }
    table::table(&["agents", "asn1_cpu_%", "fb_cpu_%"], &rows);
    println!();
    println!("Paper shape check: ASN.1 ≈4x the CPU of FB at equal agent counts —");
    println!("the FB path peeks the routing header from raw bytes, the ASN.1 path");
    println!("must fully decode every indication before dispatch.");
}
