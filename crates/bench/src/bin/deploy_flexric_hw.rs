//! Deployable unit: a FlexRIC controller specialized for the HW (ping) SM
//! — the "FlexRIC + HW-E2SM" row of the paper's Table 2.
//!
//! ```text
//! deploy_flexric_hw --listen 127.0.0.1:36421
//! ```

use flexric::server::{Server, ServerConfig};
use flexric_bench::Args;
use flexric_ctrl::relay::PingApp;
use flexric_e2ap::{GlobalRicId, Plmn};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;

#[tokio::main]
async fn main() {
    let args = Args::parse();
    let listen = args.get("listen").unwrap_or("127.0.0.1:36421");
    let (app, _rtts) = PingApp::new(SmCodec::Flatb, 100, 1000);
    let cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 1),
        TransportAddr::parse(listen).expect("listen addr"),
    );
    let server = Server::spawn(cfg, vec![Box::new(app)]).await.expect("server");
    println!("flexric-hw controller listening on {}", server.addrs[0]);
    std::future::pending::<()>().await;
}
