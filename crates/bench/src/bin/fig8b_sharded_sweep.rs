//! Fig. 8b extension — sharded controller scaling over the mem transport:
//! sustainable agents at a fixed export period, single-loop vs shard-per-core.
//!
//! The paper's §5.3 side-note puts the single-loop ceiling at ~100 agents
//! for a 10 ms export period; the ROADMAP asks for the jump toward 10k.
//! Everything runs in ONE process over the in-memory transport so the
//! sweep isolates the controller's dispatch architecture from kernel
//! networking: dummy test agents (MAC+RLC+PDCP at `--period` ms) feed a
//! sharded monitoring controller (`--no-store` equivalent: store off), and
//! a point is *sustained* when ≥ 95 % of the nominally offered indications
//! are received by the server within the measurement window — an
//! unsustainable point falls behind visibly because the delivery ratio
//! collapses as queues grow.
//!
//! Because agents, drivers, and server share the process, per-component
//! CPU attribution is meaningless here; this sweep measures *throughput
//! sustainability* and dispatch latency, while `fig8b_controller_scaling`
//! keeps the per-process CPU measurement over loopback TCP.
//!
//! ```text
//! cargo run --release -p flexric-bench --bin fig8b_sharded_sweep -- \
//!     [--shards 0] [--agents 100,500,1000,2500,5000,10000] [--ues 32] \
//!     [--period 10] [--duration 5] [--out BENCH_fig8b.json] \
//!     [--require-sustained 1000]
//! ```
//!
//! `--shards 0` (default) resolves to one shard per core.  The per-shard
//! balance is reported from the `flexric_server_shard_rx_total` /
//! `flexric_server_shard_agents` series, the same series `/metrics` shows
//! in production.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde_json::json;

use flexric::agent::{Agent, AgentConfig, AgentHandle};
use flexric::server::{IApp, Server, ServerConfig};
use flexric_bench::{table, Args};
use flexric_codec::E2apCodec;
use flexric_ctrl::dummy::dummy_bundle;
use flexric_ctrl::monitoring::{MonitorApp, MonitorConfig};
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_obs::{HistSnapshot, SnapValue, Snapshot};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;

/// MAC + RLC + PDCP.
const SMS_PER_AGENT: u64 = 3;

fn counter(snap: &Snapshot, name: &str) -> u64 {
    snap.counter_value(name).unwrap_or(0)
}

/// All labeled series of a counter as `(labels, value)` pairs.
fn labeled_counters(snap: &Snapshot, name: &str) -> Vec<(String, u64)> {
    snap.metrics
        .iter()
        .filter(|m| m.name == name && !m.labels.is_empty())
        .filter_map(|m| match m.value {
            SnapValue::Counter(v) => Some((m.labels.clone(), v)),
            _ => None,
        })
        .collect()
}

/// All labeled series of a gauge as `(labels, value)` pairs.
fn labeled_gauges(snap: &Snapshot, name: &str) -> Vec<(String, i64)> {
    snap.metrics
        .iter()
        .filter(|m| m.name == name && !m.labels.is_empty())
        .filter_map(|m| match m.value {
            SnapValue::Gauge(v) => Some((m.labels.clone(), v)),
            _ => None,
        })
        .collect()
}

fn dispatch_hist(snap: &Snapshot) -> HistSnapshot {
    snap.metrics
        .iter()
        .find(|m| m.name == "flexric_server_dispatch_ns")
        .and_then(|m| match &m.value {
            SnapValue::Hist(h) => Some(h.clone()),
            _ => None,
        })
        .unwrap_or_default()
}

/// Bucket-wise window between two cumulative snapshots of one histogram
/// (the registry is process-global and the points share the process).
fn hist_window(after: &HistSnapshot, before: &HistSnapshot) -> HistSnapshot {
    let mut buckets = after.buckets.clone();
    for (dst, src) in buckets.iter_mut().zip(before.buckets.iter()) {
        *dst = dst.saturating_sub(*src);
    }
    let count = buckets.iter().sum();
    HistSnapshot {
        buckets,
        count,
        sum: after.sum.wrapping_sub(before.sum),
        // min/max are lifetime extrema; close enough for percentile clamping.
        min: after.min,
        max: after.max,
    }
}

/// Per-shard deltas between two snapshots of one labeled counter, keyed by
/// label set and rendered sorted.
fn shard_deltas(before: &Snapshot, after: &Snapshot, name: &str) -> Vec<(String, u64)> {
    let base: std::collections::HashMap<String, u64> =
        labeled_counters(before, name).into_iter().collect();
    let mut out: Vec<(String, u64)> = labeled_counters(after, name)
        .into_iter()
        .map(|(l, v)| (l.clone(), v - base.get(&l).copied().unwrap_or(0)))
        .collect();
    out.sort();
    out
}

struct Point {
    agents: usize,
    expected: u64,
    sent: u64,
    rx: u64,
    ratio: f64,
    sustained: bool,
    p50_ns: u64,
    p99_ns: u64,
    shard_rx: Vec<(String, u64)>,
    shard_agents: Vec<(String, i64)>,
}

async fn run_point(shards: usize, agents: usize, ues: u16, period: u32, duration_s: u64) -> Point {
    let addr = TransportAddr::Mem(format!("fig8b-sweep-{agents}"));
    let mcfg = MonitorConfig {
        period_ms: period,
        sm_codec: SmCodec::Flatb,
        store: false, // measure the dispatch path, not the store
        ..Default::default()
    };
    let mut cfg = ServerConfig::new(GlobalRicId::new(Plmn::TEST, 1), addr.clone());
    cfg.codec = E2apCodec::Flatb;
    cfg.tick_ms = Some(100);
    cfg.shards = shards;
    let (app, db, counters) = MonitorApp::new(mcfg);
    let mut first = Some(app);
    let server = Server::spawn_sharded(cfg, move |_shard| {
        let app =
            first.take().unwrap_or_else(|| MonitorApp::replica(mcfg, db.clone(), counters.clone()));
        vec![Box::new(app) as Box<dyn IApp>]
    })
    .await
    .expect("server");

    // Spawn the agent fleet concurrently; each is externally ticked.
    let mut spawns = Vec::with_capacity(agents);
    for i in 0..agents {
        let addr = addr.clone();
        spawns.push(tokio::spawn(async move {
            let mut acfg = AgentConfig::new(
                GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 100 + i as u64),
                addr,
            );
            acfg.codec = E2apCodec::Flatb;
            acfg.tick_ms = None;
            Agent::spawn(acfg, dummy_bundle(ues, SmCodec::Flatb)).await.expect("agent")
        }));
    }
    let mut handles: Vec<AgentHandle> = Vec::with_capacity(agents);
    for s in spawns {
        handles.push(s.await.expect("agent spawn task"));
    }

    // Wait until every subscription is established before measuring.
    let want_subs = agents as u64 * SMS_PER_AGENT;
    let t0 = Instant::now();
    loop {
        let stats = server.stats().await.expect("stats");
        if stats.subs >= want_subs {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "only {}/{want_subs} subscriptions after 60 s",
            stats.subs
        );
        tokio::time::sleep(Duration::from_millis(100)).await;
    }

    // Drive the fleet from a handful of tasks so agent-side work spreads
    // over the runtime's worker threads; ticking at the export period is
    // enough for every report to fire on time.
    let stop = Arc::new(AtomicBool::new(false));
    let drivers = 8.min(agents.max(1));
    let mut driver_tasks = Vec::new();
    let t0 = Instant::now();
    for d in 0..drivers {
        let slice: Vec<AgentHandle> = handles.iter().skip(d).step_by(drivers).cloned().collect();
        let stop = stop.clone();
        driver_tasks.push(tokio::spawn(async move {
            let mut iv = tokio::time::interval(Duration::from_millis(period.max(1) as u64));
            iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
            while !stop.load(Ordering::Relaxed) {
                iv.tick().await;
                let now = t0.elapsed().as_millis() as u64;
                for a in &slice {
                    a.tick(now);
                }
            }
        }));
    }

    // Warm up one period, then measure a fixed wall window.
    tokio::time::sleep(Duration::from_millis(period as u64 * 2)).await;
    let before = flexric_obs::snapshot();
    let w0 = Instant::now();
    tokio::time::sleep(Duration::from_secs(duration_s)).await;
    let after = flexric_obs::snapshot();
    let window_ms = w0.elapsed().as_millis() as u64;

    stop.store(true, Ordering::Relaxed);
    for t in driver_tasks {
        let _ = t.await;
    }
    for a in &handles {
        a.stop();
    }
    server.stop();
    // Let the teardown drain before the next point reuses the runtime.
    tokio::time::sleep(Duration::from_millis(200)).await;

    let expected = agents as u64 * SMS_PER_AGENT * (window_ms / period as u64);
    let sent = counter(&after, "flexric_agent_indications_sent_total")
        - counter(&before, "flexric_agent_indications_sent_total");
    let rx = counter(&after, "flexric_server_indications_rx_total")
        - counter(&before, "flexric_server_indications_rx_total");
    let ratio = if expected == 0 { 0.0 } else { rx as f64 / expected as f64 };
    let h = hist_window(&dispatch_hist(&after), &dispatch_hist(&before));
    Point {
        agents,
        expected,
        sent,
        rx,
        ratio,
        sustained: ratio >= 0.95,
        p50_ns: h.percentile(50.0),
        p99_ns: h.percentile(99.0),
        shard_rx: shard_deltas(&before, &after, "flexric_server_shard_rx_total"),
        shard_agents: labeled_gauges(&after, "flexric_server_shard_agents"),
    }
}

#[tokio::main(flavor = "multi_thread")]
async fn main() {
    let args = Args::parse();
    let shards: usize = args.get_or("shards", 0);
    let ues: u16 = args.get_or("ues", 32);
    let period: u32 = args.get_or("period", 10);
    let duration_s: u64 = args.get_or("duration", 5);
    let out = args.get("out").unwrap_or("BENCH_fig8b.json").to_owned();
    let require: usize = args.get_or("require-sustained", 0);
    let points: Vec<usize> = args
        .get("agents")
        .unwrap_or("100,500,1000,2500,5000,10000")
        .split(',')
        .map(|s| s.trim().parse().expect("--agents takes a comma-separated list"))
        .collect();

    let resolved = if shards == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        shards
    };
    table::experiment(
        "Fig. 8b (sharded sweep)",
        "Sustainable agents vs shard count, mem transport, FB E2AP, store off",
    );
    println!(
        "shards = {resolved}, period = {period} ms, ues/agent = {ues}, window = {duration_s} s"
    );

    let mut rows = Vec::new();
    let mut results = Vec::new();
    let mut max_sustained = 0usize;
    for &agents in &points {
        let p = run_point(shards, agents, ues, period, duration_s).await;
        eprintln!(
            "  agents={agents}: delivered {}/{} ({:.1} %) p99 dispatch {} ns {}",
            p.rx,
            p.expected,
            p.ratio * 100.0,
            p.p99_ns,
            if p.sustained { "SUSTAINED" } else { "falling behind" }
        );
        for (labels, rx) in &p.shard_rx {
            eprintln!("    shard[{labels}] rx={rx}");
        }
        if p.sustained {
            max_sustained = max_sustained.max(agents);
        }
        rows.push(vec![
            p.agents.to_string(),
            p.expected.to_string(),
            p.rx.to_string(),
            format!("{:.3}", p.ratio),
            if p.sustained { "yes".into() } else { "no".into() },
            p.p50_ns.to_string(),
            p.p99_ns.to_string(),
        ]);
        results.push(p);
    }
    table::table(
        &["agents", "expected_ind", "rx_ind", "delivery", "sustained", "p50_ns", "p99_ns"],
        &rows,
    );

    let snapshot = json!({
        "bench": "fig8b",
        "source": "fig8b_sharded_sweep",
        "transport": "mem",
        "e2ap_codec": "fb",
        "sm_codec": "fb",
        "period_ms": period,
        "ues_per_agent": ues,
        "sms_per_agent": SMS_PER_AGENT,
        "shards_requested": shards,
        "shards_resolved": resolved,
        "window_s": duration_s,
        "sustained_threshold": 0.95,
        "max_sustained_agents": max_sustained,
        "points": results.iter().map(|p| json!({
            "agents": p.agents,
            "expected_indications": p.expected,
            "sent_indications": p.sent,
            "rx_indications": p.rx,
            "delivery_ratio": p.ratio,
            "sustained": p.sustained,
            "dispatch_p50_ns": p.p50_ns,
            "dispatch_p99_ns": p.p99_ns,
            "shard_rx": p.shard_rx.iter()
                .map(|(l, v)| json!({"labels": l, "rx": v})).collect::<Vec<_>>(),
            "shard_agents": p.shard_agents.iter()
                .map(|(l, v)| json!({"labels": l, "agents": v})).collect::<Vec<_>>(),
        })).collect::<Vec<_>>(),
    });
    if out != "-" {
        std::fs::write(&out, serde_json::to_string_pretty(&snapshot).expect("json") + "\n")
            .expect("write snapshot");
        println!();
        println!("snapshot written to {out}");
    }
    println!(
        "max sustained agents at {period} ms period with {resolved} shard(s): {max_sustained}"
    );
    if require > 0 && max_sustained < require {
        eprintln!("FAIL: required ≥ {require} sustained agents, got {max_sustained}");
        std::process::exit(1);
    }
}
