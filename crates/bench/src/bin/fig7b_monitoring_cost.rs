//! Fig. 7b extension — monitoring cost under adaptive reporting: signaling
//! bytes/s at the controller for full-snapshot vs delta-encoded vs
//! adaptive (delta + server-driven retuning) subscriptions.
//!
//! Everything runs in ONE process over the in-memory transport: dummy
//! agents over the time-varying KPI workload (quiet/active/burst phases,
//! `flexric_ransim::kpi`) feed a monitoring controller that subscribes in
//! the mode under test.  The store stays ON so the delta modes pay their
//! reconstruction cost in the measurement, and the adaptive mode's
//! retunes (backoff on quiescence, tighten on anomaly, resync on loss)
//! ride the regular subscription procedure.
//!
//! ```text
//! cargo run --release -p flexric-bench --bin fig7b_monitoring_cost -- \
//!     [--agents 100,500,1000] [--ues 32] [--period 10] [--duration 5] \
//!     [--out BENCH_fig7b.json] [--require-savings 3.0]
//! ```
//!
//! `--require-savings X` exits non-zero unless delta AND adaptive cut the
//! monitoring bytes/s by ≥ X× vs full at the largest agent count.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde_json::json;

use flexric::agent::{Agent, AgentConfig, AgentHandle};
use flexric::server::{IApp, Server, ServerConfig};
use flexric_bench::{table, Args};
use flexric_codec::E2apCodec;
use flexric_ctrl::dummy::dummy_bundle_time_varying;
use flexric_ctrl::monitoring::{MonitorApp, MonitorConfig, MonitorMode};
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;

/// MAC + RLC + PDCP.
const SMS_PER_AGENT: u64 = 3;

struct Point {
    agents: usize,
    mode: &'static str,
    window_ms: u64,
    indications: u64,
    sm_bytes: u64,
    bytes_per_s: f64,
    decode_errors: u64,
    resyncs: u64,
    retunes: u64,
}

fn mode_name(mode: MonitorMode) -> &'static str {
    match mode {
        MonitorMode::Full => "full",
        MonitorMode::Delta => "delta",
        MonitorMode::Adaptive => "adaptive",
    }
}

async fn run_point(
    agents: usize,
    ues: u16,
    period: u32,
    duration_s: u64,
    mode: MonitorMode,
) -> Point {
    let addr = TransportAddr::Mem(format!("fig7b-{}-{agents}", mode_name(mode)));
    let mcfg =
        MonitorConfig { period_ms: period, sm_codec: SmCodec::Flatb, mode, ..Default::default() };
    let mut cfg = ServerConfig::new(GlobalRicId::new(Plmn::TEST, 1), addr.clone());
    cfg.codec = E2apCodec::Flatb;
    cfg.tick_ms = Some(50);
    cfg.shards = 0; // one shard per core
    let (app, db, counters) = MonitorApp::new(mcfg);
    let mut first = Some(app);
    let server = Server::spawn_sharded(cfg, move |_shard| {
        let app =
            first.take().unwrap_or_else(|| MonitorApp::replica(mcfg, db.clone(), counters.clone()));
        vec![Box::new(app) as Box<dyn IApp>]
    })
    .await
    .expect("server");

    let mut spawns = Vec::with_capacity(agents);
    for i in 0..agents {
        let addr = addr.clone();
        spawns.push(tokio::spawn(async move {
            let mut acfg = AgentConfig::new(
                GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 100 + i as u64),
                addr,
            );
            acfg.codec = E2apCodec::Flatb;
            acfg.tick_ms = None;
            Agent::spawn(acfg, dummy_bundle_time_varying(ues, SmCodec::Flatb, i as u64))
                .await
                .expect("agent")
        }));
    }
    let mut handles: Vec<AgentHandle> = Vec::with_capacity(agents);
    for s in spawns {
        handles.push(s.await.expect("agent spawn task"));
    }

    let want_subs = agents as u64 * SMS_PER_AGENT;
    let t0 = Instant::now();
    loop {
        let stats = server.stats().await.expect("stats");
        if stats.subs >= want_subs {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "only {}/{want_subs} subscriptions after 60 s",
            stats.subs
        );
        tokio::time::sleep(Duration::from_millis(100)).await;
    }

    let stop = Arc::new(AtomicBool::new(false));
    let drivers = 8.min(agents.max(1));
    let mut driver_tasks = Vec::new();
    let t0 = Instant::now();
    for d in 0..drivers {
        let slice: Vec<AgentHandle> = handles.iter().skip(d).step_by(drivers).cloned().collect();
        let stop = stop.clone();
        driver_tasks.push(tokio::spawn(async move {
            let mut iv = tokio::time::interval(Duration::from_millis(period.max(1) as u64));
            iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
            while !stop.load(Ordering::Relaxed) {
                iv.tick().await;
                let now = t0.elapsed().as_millis() as u64;
                for a in &slice {
                    a.tick(now);
                }
            }
        }));
    }

    // Warm up across one full workload cycle so every phase contributes,
    // then measure a fixed wall window via the shared counters.
    tokio::time::sleep(Duration::from_millis(period as u64 * 4)).await;
    let before = flexric_obs::snapshot();
    let ind0 = before.counter_value("flexric_ctrl_indications_total").unwrap_or(0);
    let bytes0 = before.counter_value("flexric_ctrl_indication_bytes_total").unwrap_or(0);
    let w0 = Instant::now();
    tokio::time::sleep(Duration::from_secs(duration_s)).await;
    let after = flexric_obs::snapshot();
    let window_ms = w0.elapsed().as_millis() as u64;
    let ind1 = after.counter_value("flexric_ctrl_indications_total").unwrap_or(0);
    let bytes1 = after.counter_value("flexric_ctrl_indication_bytes_total").unwrap_or(0);
    let errs = |s: &flexric_obs::Snapshot, n: &str| s.counter_value(n).unwrap_or(0);
    let decode_errors = errs(&after, "flexric_sm_delta_decode_errors_total")
        - errs(&before, "flexric_sm_delta_decode_errors_total");
    let resyncs = errs(&after, "flexric_sm_delta_resyncs_total")
        - errs(&before, "flexric_sm_delta_resyncs_total");
    let retunes: u64 = after
        .metrics
        .iter()
        .filter(|m| m.name == "flexric_ctrl_retunes_total")
        .filter_map(|m| match m.value {
            flexric_obs::SnapValue::Counter(v) => Some(v),
            _ => None,
        })
        .sum::<u64>()
        - before
            .metrics
            .iter()
            .filter(|m| m.name == "flexric_ctrl_retunes_total")
            .filter_map(|m| match m.value {
                flexric_obs::SnapValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum::<u64>();

    stop.store(true, Ordering::Relaxed);
    for t in driver_tasks {
        let _ = t.await;
    }
    for a in &handles {
        a.stop();
    }
    server.stop();
    tokio::time::sleep(Duration::from_millis(200)).await;

    let sm_bytes = bytes1 - bytes0;
    Point {
        agents,
        mode: mode_name(mode),
        window_ms,
        indications: ind1 - ind0,
        sm_bytes,
        bytes_per_s: sm_bytes as f64 * 1_000.0 / window_ms.max(1) as f64,
        decode_errors,
        resyncs,
        retunes,
    }
}

#[tokio::main(flavor = "multi_thread")]
async fn main() {
    let args = Args::parse();
    let ues: u16 = args.get_or("ues", 32);
    let period: u32 = args.get_or("period", 10);
    let duration_s: u64 = args.get_or("duration", 5);
    let out = args.get("out").unwrap_or("BENCH_fig7b.json").to_owned();
    let require: f64 = args.get_or("require-savings", 0.0);
    let agent_points: Vec<usize> = args
        .get("agents")
        .unwrap_or("100,500,1000")
        .split(',')
        .map(|s| s.trim().parse().expect("--agents takes a comma-separated list"))
        .collect();

    table::experiment(
        "Fig. 7b (monitoring cost)",
        "Controller monitoring bytes/s: full vs delta vs adaptive, mem transport, FB",
    );
    println!("period = {period} ms, ues/agent = {ues}, window = {duration_s} s");

    let modes = [MonitorMode::Full, MonitorMode::Delta, MonitorMode::Adaptive];
    let mut rows = Vec::new();
    let mut results: Vec<Point> = Vec::new();
    for &agents in &agent_points {
        for mode in modes {
            let p = run_point(agents, ues, period, duration_s, mode).await;
            eprintln!(
                "  agents={agents} mode={}: {} ind, {:.0} bytes/s, {} retunes",
                p.mode, p.indications, p.bytes_per_s, p.retunes
            );
            rows.push(vec![
                p.agents.to_string(),
                p.mode.to_owned(),
                p.indications.to_string(),
                format!("{:.0}", p.bytes_per_s),
                p.decode_errors.to_string(),
                p.resyncs.to_string(),
                p.retunes.to_string(),
            ]);
            results.push(p);
        }
    }
    table::table(
        &["agents", "mode", "indications", "bytes_per_s", "decode_err", "resyncs", "retunes"],
        &rows,
    );

    // Savings at the largest agent count.
    let last = *agent_points.last().expect("at least one agent count");
    let bytes_of = |mode: &str| {
        results
            .iter()
            .find(|p| p.agents == last && p.mode == mode)
            .map(|p| p.bytes_per_s)
            .unwrap_or(0.0)
    };
    let full = bytes_of("full");
    let delta_savings = if bytes_of("delta") > 0.0 { full / bytes_of("delta") } else { 0.0 };
    let adaptive_savings =
        if bytes_of("adaptive") > 0.0 { full / bytes_of("adaptive") } else { 0.0 };
    println!(
        "savings at {last} agents: delta {delta_savings:.2}x, adaptive {adaptive_savings:.2}x"
    );

    let snapshot = json!({
        "bench": "fig7b",
        "source": "fig7b_monitoring_cost",
        "status": "measured-live",
        "note": "Full-stack A/B over the mem transport: dummy agents on the time-varying \
                 quiet/active/burst KPI workload, monitoring iApp subscribed in each mode; \
                 bytes/s is SM payload bytes at the controller.",
        "transport": "mem",
        "e2ap_codec": "fb",
        "sm_codec": "fb",
        "period_ms": period,
        "ues_per_agent": ues,
        "sms_per_agent": SMS_PER_AGENT,
        "window_s": duration_s,
        "delta_savings_at_max_agents": delta_savings,
        "adaptive_savings_at_max_agents": adaptive_savings,
        "points": results.iter().map(|p| json!({
            "agents": p.agents,
            "mode": p.mode,
            "window_ms": p.window_ms,
            "indications": p.indications,
            "sm_bytes": p.sm_bytes,
            "bytes_per_s": p.bytes_per_s,
            "decode_errors": p.decode_errors,
            "resyncs": p.resyncs,
            "retunes": p.retunes,
        })).collect::<Vec<_>>(),
    });
    if out != "-" {
        std::fs::write(&out, serde_json::to_string_pretty(&snapshot).expect("json") + "\n")
            .expect("write snapshot");
        println!();
        println!("snapshot written to {out}");
    }
    if require > 0.0 && (delta_savings < require || adaptive_savings < require) {
        eprintln!(
            "FAIL: required ≥ {require:.1}x savings, got delta {delta_savings:.2}x / \
             adaptive {adaptive_savings:.2}x"
        );
        std::process::exit(1);
    }
}
