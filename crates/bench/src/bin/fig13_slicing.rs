//! Fig. 13 — RAT-unaware slicing: isolation and sharing (paper §6.1.2).
//!
//! An NR cell (106 RB, MCS 20) with saturating downlink per UE, driven in
//! virtual time through the full slicing-controller stack (SC SM → server
//! library → REST northbound → curl-style xApp commands).
//!
//! **Fig. 13a timeline** (isolation): t1 — two UEs, no slicing (equal
//! share); t2 — a third UE connects (the "white" UE drops below 50 %);
//! t3 — the xApp deploys NVS 50/50 and associates the white UE to slice 0
//! (its 50 % is restored); t4 — slice 0 is reconfigured to 66 %.
//!
//! **Fig. 13b** (sharing): two UEs on slices of 66 %/34 %; the 34 % slice
//! goes idle mid-run.  Without sharing its slots are wasted; with sharing
//! the 66 % slice takes them (+50 % throughput).
//!
//! ```text
//! cargo run --release -p flexric-bench --bin fig13_slicing [--phase-secs 15]
//! ```

use std::sync::Arc;

use parking_lot::Mutex;
use serde_json::json;

use flexric::agent::{Agent, AgentConfig, AgentHandle};
use flexric::server::{Server, ServerConfig, ServerHandle};
use flexric_bench::{table, Args};
use flexric_ctrl::ranfun::{full_bundle, SimBs};
use flexric_ctrl::slicing::{spawn_rest, SliceApp};
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_ransim::{CellConfig, FlowConfig, FlowKind, PathConfig, Sim, UeConfig};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;
use flexric_xapp::http::HttpClient;

const MCS: u8 = 20;

struct Stack {
    sim: Arc<Mutex<Sim>>,
    agent: AgentHandle,
    server: ServerHandle,
    rest: String,
    flows: Vec<usize>,
}

async fn build_stack(name: &str, ues: &[u16]) -> Stack {
    let mut sim = Sim::new(vec![CellConfig::nr("cell0", 106)], PathConfig::default());
    let mut flows = Vec::new();
    for (i, rnti) in ues.iter().enumerate() {
        sim.attach_ue(0, UeConfig::new(*rnti, MCS));
        flows.push(sim.add_flow(FlowConfig {
            cell: 0,
            rnti: *rnti,
            drb: 1,
            kind: FlowKind::GreedyTcp { mss: 1500 },
            tuple: (0x0A00_0001, 0x0A00_0100 + i as u32, 1000, 80, 6),
            start_ms: 0,
            stop_ms: None,
        }));
    }
    let sim = Arc::new(Mutex::new(sim));

    let sm = SmCodec::Flatb;
    let (slice_app, latest) = SliceApp::new(sm, 500);
    let mut cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 1),
        TransportAddr::Mem(format!("fig13-{name}")),
    );
    cfg.tick_ms = None;
    let server = Server::spawn(cfg, vec![Box::new(slice_app)]).await.expect("server");
    let rest = spawn_rest("127.0.0.1:0", server.clone(), latest).await.expect("rest");

    let bs = SimBs::new(sim.clone(), 0);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
        TransportAddr::Mem(format!("fig13-{name}")),
    );
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, full_bundle(&bs, sm)).await.expect("agent");
    tokio::time::sleep(std::time::Duration::from_millis(100)).await;

    Stack { sim, agent, server, rest: rest.addr.to_string(), flows }
}

/// Runs `ms` of virtual time, sampling per-flow throughput every 500 ms.
async fn run_phase(stack: &Stack, ms: u64, series: &mut Vec<(f64, Vec<f64>)>) {
    let mut last: Vec<u64> =
        stack.flows.iter().map(|f| stack.sim.lock().flow(*f).delivered_bytes).collect();
    let mut elapsed = 0u64;
    while elapsed < ms {
        for _ in 0..500 {
            let now = {
                let mut s = stack.sim.lock();
                s.tick();
                s.now_ms()
            };
            stack.agent.tick(now);
            stack.server.tick(now);
            elapsed += 1;
        }
        tokio::task::yield_now().await;
        let t = stack.sim.lock().now_ms() as f64 / 1000.0;
        let mut mbps = Vec::new();
        for (i, f) in stack.flows.iter().enumerate() {
            let b = stack.sim.lock().flow(*f).delivered_bytes;
            mbps.push((b - last[i]) as f64 * 8.0 / 0.5 / 1e6);
            last[i] = b;
        }
        series.push((t, mbps));
    }
}

async fn post(rest: &str, path: &str, body: serde_json::Value) {
    let (status, resp) = HttpClient::post_json(rest, path, &body).await.expect("rest call");
    if status != 200 {
        panic!("{path} failed: {status} {}", String::from_utf8_lossy(&resp));
    }
}

async fn fig13a(phase_ms: u64) {
    println!("\n-- Fig. 13a: isolation timeline (white UE = 0x4601) --");
    // Start with two UEs; the third connects at t2.
    let stack = build_stack("a", &[0x4601, 0x4602]).await;
    let mut series = Vec::new();

    // t1: no slicing, two UEs.
    run_phase(&stack, phase_ms, &mut series).await;
    let t1_end = series.len();

    // t2: third UE connects.
    {
        let mut sim = stack.sim.lock();
        sim.attach_ue(0, UeConfig::new(0x4603, MCS));
    }
    // The new flow needs registering outside the lock scope of build.
    let f3 = stack.sim.lock().add_flow(FlowConfig {
        cell: 0,
        rnti: 0x4603,
        drb: 1,
        kind: FlowKind::GreedyTcp { mss: 1500 },
        tuple: (0x0A00_0001, 0x0A00_0103, 1000, 80, 6),
        start_ms: 0,
        stop_ms: None,
    });
    let mut stack = stack;
    stack.flows.push(f3);
    run_phase(&stack, phase_ms, &mut series).await;
    let t2_end = series.len();

    // t3: deploy NVS 50/50 and associate.
    post(&stack.rest, "/slice/algo", json!({"agent": 0, "algo": "nvs"})).await;
    post(
        &stack.rest,
        "/slice/conf",
        json!({"agent": 0, "slices": [
            {"id": 0, "label": "white", "params": {"type": "nvs_capacity", "share_pct": 50.0}},
            {"id": 1, "label": "rest", "params": {"type": "nvs_capacity", "share_pct": 50.0}},
        ]}),
    )
    .await;
    post(
        &stack.rest,
        "/slice/assoc",
        json!({"agent": 0, "assoc": [[0x4601, 0], [0x4602, 1], [0x4603, 1]]}),
    )
    .await;
    run_phase(&stack, phase_ms, &mut series).await;
    let t3_end = series.len();

    // t4: 66 % for slice 0.
    post(
        &stack.rest,
        "/slice/conf",
        json!({"agent": 0, "slices": [
            {"id": 0, "label": "white", "params": {"type": "nvs_capacity", "share_pct": 66.0}},
            {"id": 1, "label": "rest", "params": {"type": "nvs_capacity", "share_pct": 34.0}},
        ]}),
    )
    .await;
    run_phase(&stack, phase_ms, &mut series).await;

    // Report: mean throughput per phase.
    let phase = |from: usize, to: usize| -> Vec<f64> {
        let slice = &series[from..to];
        let n = slice.len().max(1) as f64;
        let mut sums = vec![0.0; 3];
        for (_, mbps) in slice {
            for (i, v) in mbps.iter().enumerate() {
                sums[i] += v;
            }
        }
        sums.iter().map(|s| s / n).collect()
    };
    // Skip the first samples of each phase (TCP ramp).
    let rows = [
        ("t1 (no slicing, 2 UEs)", phase(t1_end / 2, t1_end)),
        ("t2 (no slicing, 3 UEs)", phase((t1_end + t2_end) / 2, t2_end)),
        ("t3 (NVS 50/50)", phase((t2_end + t3_end) / 2, t3_end)),
        ("t4 (NVS 66/34)", phase((t3_end + series.len()) / 2, series.len())),
    ];
    let mut out = Vec::new();
    for (label, mbps) in rows {
        let total: f64 = mbps.iter().sum();
        out.push(vec![
            label.to_string(),
            table::f(mbps[0]),
            table::f(mbps.get(1).copied().unwrap_or(0.0)),
            table::f(mbps.get(2).copied().unwrap_or(0.0)),
            table::f(mbps[0] / total.max(0.001) * 100.0),
        ]);
    }
    table::table(&["phase", "white_mbps", "ue2_mbps", "ue3_mbps", "white_share_%"], &out);
    stack.agent.stop();
    stack.server.stop();
}

async fn fig13b(phase_ms: u64, sharing: bool) -> (f64, f64) {
    let stack = build_stack(if sharing { "b-share" } else { "b-noshare" }, &[0x4601, 0x4602]).await;
    post(
        &stack.rest,
        "/slice/algo",
        json!({"agent": 0, "algo": if sharing { "nvs" } else { "nvs_nosharing" }}),
    )
    .await;
    post(
        &stack.rest,
        "/slice/conf",
        json!({"agent": 0, "slices": [
            {"id": 0, "label": "gray", "params": {"type": "nvs_capacity", "share_pct": 66.0}},
            {"id": 1, "label": "black", "params": {"type": "nvs_capacity", "share_pct": 34.0}},
        ]}),
    )
    .await;
    post(&stack.rest, "/slice/assoc", json!({"agent": 0, "assoc": [[0x4601, 0], [0x4602, 1]]}))
        .await;

    let mut series = Vec::new();
    // Phase 1: both active.
    run_phase(&stack, phase_ms, &mut series).await;
    let p1_end = series.len();
    // Phase 2: black slice idle.
    stack.sim.lock().set_flow_active(stack.flows[1], false);
    run_phase(&stack, phase_ms, &mut series).await;

    let mean = |from: usize, to: usize, flow: usize| -> f64 {
        let s = &series[from..to];
        s.iter().map(|(_, m)| m[flow]).sum::<f64>() / s.len().max(1) as f64
    };
    let gray_active = mean(p1_end / 2, p1_end, 0);
    let gray_idle = mean((p1_end + series.len()) / 2, series.len(), 0);
    stack.agent.stop();
    stack.server.stop();
    (gray_active, gray_idle)
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args = Args::parse();
    let phase_ms: u64 = args.get_or("phase-secs", 15u64) * 1000;

    table::experiment("Fig. 13", "Slicing isolation (a) and resource sharing (b), NR 106 RB");
    fig13a(phase_ms).await;

    println!("\n-- Fig. 13b: static attribution vs sharing (gray = 66 %, black = 34 %) --");
    let (ns_active, ns_idle) = fig13b(phase_ms, false).await;
    let (sh_active, sh_idle) = fig13b(phase_ms, true).await;
    table::table(
        &["mode", "gray_mbps_both_active", "gray_mbps_black_idle", "gain_%"],
        &[
            vec![
                "no sharing".into(),
                table::f(ns_active),
                table::f(ns_idle),
                table::f((ns_idle / ns_active.max(0.001) - 1.0) * 100.0),
            ],
            vec![
                "sharing (NVS)".into(),
                table::f(sh_active),
                table::f(sh_idle),
                table::f((sh_idle / sh_active.max(0.001) - 1.0) * 100.0),
            ],
        ],
    );
    println!();
    println!("Paper shape check (13a): white UE drops to ~33 % at t2, restored to 50 %");
    println!("at t3, 66 % at t4.  (13b): without sharing the gray slice stays at its");
    println!("66 %; with NVS sharing it gains ≈+50 % when the black slice idles.");
}
