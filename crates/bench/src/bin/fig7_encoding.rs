//! Fig. 7 — Impact of E2AP/E2SM encoding on round-trip time and signaling
//! overhead (paper §5.2).
//!
//! An iApp pings an HW-SM agent over localhost TCP for every E2AP×E2SM
//! encoding combination (ASN/ASN, ASN/FB, FB/ASN, FB/FB) plus the FlexRAN
//! baseline, at two payload sizes (100 B, 1500 B):
//!
//! * **Fig. 7a** — RTT at a relaxed ping rate,
//! * **Fig. 7b** — signaling rate (Mbit/s) at a 1 ms ping interval.
//!
//! ```text
//! cargo run --release -p flexric-bench --bin fig7_encoding [--pings 2000]
//! ```

use bytes::Bytes;
use flexric::agent::{Agent, AgentConfig};
use flexric::server::{Server, ServerConfig};
use flexric_bench::{summarize, table, Args};
use flexric_codec::E2apCodec;
use flexric_ctrl::flexran_emu::{FlexranAgent, FlexranController};
use flexric_ctrl::ranfun::HwFn;
use flexric_ctrl::relay::PingApp;
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;

async fn flexric_combo(
    e2ap: E2apCodec,
    sm: SmCodec,
    payload: usize,
    pings: usize,
) -> (f64, f64, f64, f64) {
    let (ping_app, rtts) = PingApp::new(sm, payload, 1);
    let mut cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 1),
        TransportAddr::parse("127.0.0.1:0").unwrap(),
    );
    cfg.codec = e2ap;
    cfg.tick_ms = Some(1);
    let server = Server::spawn(cfg, vec![Box::new(ping_app)]).await.unwrap();

    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
        server.addrs[0].clone(),
    );
    acfg.codec = e2ap;
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, vec![Box::new(HwFn::new(sm))]).await.unwrap();

    let t0 = std::time::Instant::now();
    let a0 = agent.stats().await.unwrap();
    let s0 = server.stats().await.unwrap();
    loop {
        tokio::time::sleep(std::time::Duration::from_millis(20)).await;
        if rtts.lock().len() >= pings {
            break;
        }
        if t0.elapsed().as_secs() > 120 {
            eprintln!("warning: only {} pings collected", rtts.lock().len());
            break;
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let a1 = agent.stats().await.unwrap();
    let s1 = server.stats().await.unwrap();
    let mut samples: Vec<u64> = rtts.lock().clone();
    let sum = summarize(&mut samples);
    // Signaling rate, agent→controller direction (the paper's Fig. 7b
    // convention: ~12-13 Mbit/s for 1500 B at 1 kHz is one direction).
    let _ = (s0, s1);
    let bytes = a1.tx_bytes - a0.tx_bytes;
    let mbps = bytes as f64 * 8.0 / wall / 1e6;
    agent.stop();
    server.stop();
    (sum.mean / 1000.0, sum.p50 as f64 / 1000.0, sum.p99 as f64 / 1000.0, mbps)
}

async fn flexran_combo(payload: usize, pings: usize) -> (f64, f64, f64, f64) {
    let ctrl = FlexranController::spawn(&TransportAddr::parse("127.0.0.1:0").unwrap(), 1000)
        .await
        .unwrap();
    let agent = FlexranAgent::spawn(&ctrl.addr, |_| Default::default()).await.unwrap();
    // Payload carries the send timestamp in its first 8 bytes.
    let t0 = std::time::Instant::now();
    let mut sent = 0usize;
    let mut iv = tokio::time::interval(std::time::Duration::from_millis(1));
    iv.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
    while sent < pings {
        iv.tick().await;
        let mut buf = vec![0u8; payload.max(8)];
        buf[..8].copy_from_slice(&flexric::mono_ns().to_be_bytes());
        agent.echo(Bytes::from(buf));
        sent += 1;
    }
    // Drain replies.
    for _ in 0..200 {
        if agent.echo_rx.lock().len() >= pings {
            break;
        }
        tokio::time::sleep(std::time::Duration::from_millis(10)).await;
    }
    let wall = t0.elapsed().as_secs_f64();
    let mut samples: Vec<u64> = agent
        .echo_rx
        .lock()
        .iter()
        .filter_map(|(payload, rx_ns)| {
            let t0 = u64::from_be_bytes(payload.get(..8)?.try_into().ok()?);
            Some(rx_ns.saturating_sub(t0))
        })
        .collect();
    let sum = summarize(&mut samples);
    let bytes = agent.tx_bytes.load(std::sync::atomic::Ordering::Relaxed);
    let mbps = bytes as f64 * 8.0 / wall / 1e6;
    ctrl.stop();
    agent.stop();
    (sum.mean / 1000.0, sum.p50 as f64 / 1000.0, sum.p99 as f64 / 1000.0, mbps)
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args = Args::parse();
    let pings: usize = args.get_or("pings", 2000);

    table::experiment("Fig. 7", "Impact of E2AP/E2SM encoding (HW-SM ping over localhost TCP)");
    let combos: [(&str, Option<(E2apCodec, SmCodec)>); 5] = [
        ("ASN/ASN", Some((E2apCodec::Asn1Per, SmCodec::Asn1Per))),
        ("ASN/FB", Some((E2apCodec::Asn1Per, SmCodec::Flatb))),
        ("FB/ASN", Some((E2apCodec::Flatb, SmCodec::Asn1Per))),
        ("FB/FB", Some((E2apCodec::Flatb, SmCodec::Flatb))),
        ("FlexRAN", None),
    ];
    let mut rows = Vec::new();
    for payload in [100usize, 1500] {
        for (label, combo) in &combos {
            let (mean, p50, p99, mbps) = match combo {
                Some((e2ap, sm)) => flexric_combo(*e2ap, *sm, payload, pings).await,
                None => flexran_combo(payload, pings).await,
            };
            rows.push(vec![
                format!("{payload} B"),
                label.to_string(),
                table::f(mean),
                table::f(p50),
                table::f(p99),
                table::f(mbps),
            ]);
            eprintln!("  done: {payload} B {label}");
        }
    }
    println!("\nFig. 7a (RTT, µs) + Fig. 7b (signaling at 1 kHz, Mbit/s):");
    table::table(
        &["payload", "E2AP/E2SM", "rtt_mean_us", "rtt_p50_us", "rtt_p99_us", "signaling_mbps"],
        &rows,
    );
    println!();
    println!("Paper shape check: FB/FB fastest RTT; ASN/ASN smallest signaling;");
    println!("ASN/FB slower than ASN/ASN (double-encoding a larger inner payload);");
    println!("FlexRAN between FB and ASN on RTT, smallest signaling (single layer).");
}
