//! Fig. 6b — Agent CPU vs. number of connected UEs on the L2 simulator
//! (paper §5.1).
//!
//! The paper uses OAI's "L2 simulator" (no physical layer) to scale the
//! UE count; our RAN simulator *is* an L2 simulator, so this sweep runs it
//! directly: for 0–32 UEs, measure the base-station process CPU with the
//! FlexRAN agent, the FlexRIC agent, and no agent, all exporting
//! MAC+RLC+PDCP statistics at 1 ms.
//!
//! ```text
//! cargo run --release -p flexric-bench --bin fig6b_agent_scaling \
//!     [--duration 6] [--step 8]
//! ```

use flexric_bench::{metrics, roles, spawn_role, table, Args};

async fn run_point(variant: &str, ues: u16, duration: u64, port: u16) -> f64 {
    let mut ctrl_child = None;
    let ctrl_role = match variant {
        "flexric" => Some("monitor"),
        "flexran" => Some("flexran-ctrl"),
        _ => None,
    };
    if let Some(role) = ctrl_role {
        let child = spawn_role(&[
            "--role".into(),
            role.into(),
            "--listen".into(),
            format!("127.0.0.1:{port}"),
            "--period".into(),
            "1".into(),
        ])
        .expect("spawn controller");
        ctrl_child = Some(child);
        tokio::time::sleep(std::time::Duration::from_millis(300)).await;
    }
    let mut bs_args: Vec<String> = vec![
        "--role".into(),
        "bs".into(),
        "--variant".into(),
        variant.into(),
        "--cell".into(),
        "lte25".into(),
        "--mcs".into(),
        "28".into(),
        "--ues".into(),
        ues.to_string(),
        "--duration".into(),
        duration.to_string(),
    ];
    if ctrl_role.is_some() {
        bs_args.push("--ctrl".into());
        bs_args.push(format!("127.0.0.1:{port}"));
    }
    let mut bs = spawn_role(&bs_args).expect("spawn bs");
    tokio::time::sleep(std::time::Duration::from_millis(800)).await;
    let a = metrics::sample(Some(bs.id())).expect("sample");
    tokio::time::sleep(std::time::Duration::from_secs(duration.saturating_sub(2).max(3))).await;
    let b = metrics::sample(Some(bs.id())).expect("sample");
    // Normalized to the paper's 8-core LTE machine.
    let pct = metrics::cpu_pct_normalized(&a, &b, 8);
    let _ = bs.wait();
    if let Some(mut c) = ctrl_child {
        let _ = c.kill();
        let _ = c.wait();
    }
    pct
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args = Args::parse();
    if roles::dispatch(&args).await {
        return;
    }
    let duration: u64 = args.get_or("duration", 6);
    let step: u16 = args.get_or("step", 8);

    table::experiment("Fig. 6b", "Agent CPU vs #UEs, L2 simulator (normalized, 8 cores)");
    let mut rows = Vec::new();
    let mut port = 39200u16;
    let mut ue_points: Vec<u16> = (0..=32).step_by(step.max(1) as usize).collect();
    if *ue_points.last().unwrap_or(&0) != 32 {
        ue_points.push(32);
    }
    for ues in ue_points {
        let mut row = vec![ues.to_string()];
        for variant in ["none", "flexric", "flexran"] {
            port += 1;
            let pct = run_point(variant, ues, duration, port).await;
            eprintln!("  ues={ues} {variant}: {pct:.3} %");
            row.push(table::f(pct));
        }
        rows.push(row);
    }
    table::table(&["ues", "no_agent_%", "flexric_%", "flexran_%"], &rows);
    println!();
    println!("Paper shape check: FlexRIC ≤ FlexRAN, gap growing with UE count");
    println!("(more efficient FB encoding of indication messages).");
}
