//! Fig. 8a — Controller CPU and memory: FlexRIC vs FlexRAN (paper §5.3).
//!
//! A statistics controller (FlexRIC: server library + stats iApp saving
//! to an in-memory store; FlexRAN: RIB + 1 ms polling application)
//! receives MAC+RLC+PDCP statistics from `--agents` dummy agents with 32
//! UEs each at 1 ms, in the agent-to-controller direction only.  Each
//! controller runs in its own process; CPU and RSS come from `/proc`.
//!
//! ```text
//! cargo run --release -p flexric-bench --bin fig8a_controller_cmp \
//!     [--agents 10] [--duration 10]
//! ```

use flexric_bench::{metrics, roles, spawn_role, table, Args};

async fn run_side(flexran: bool, agents: usize, duration: u64, port: u16) -> (f64, u64, u64) {
    let ctrl_role = if flexran { "flexran-ctrl" } else { "monitor" };
    let agents_role = if flexran { "flexran-dummy-agents" } else { "dummy-agents" };
    let mut ctrl = spawn_role(&[
        "--role".into(),
        ctrl_role.into(),
        "--listen".into(),
        format!("127.0.0.1:{port}"),
        "--period".into(),
        "1".into(),
        "--codec".into(),
        "fb".into(),
    ])
    .expect("spawn controller");
    tokio::time::sleep(std::time::Duration::from_millis(300)).await;
    let mut ag = spawn_role(&[
        "--role".into(),
        agents_role.into(),
        "--ctrl".into(),
        format!("127.0.0.1:{port}"),
        "--agents".into(),
        agents.to_string(),
        "--ues".into(),
        "32".into(),
        "--codec".into(),
        "fb".into(),
    ])
    .expect("spawn agents");
    tokio::time::sleep(std::time::Duration::from_millis(1500)).await;
    let a = metrics::sample(Some(ctrl.id())).expect("sample");
    tokio::time::sleep(std::time::Duration::from_secs(duration)).await;
    let b = metrics::sample(Some(ctrl.id())).expect("sample");
    let cpu = metrics::cpu_pct(&a, &b);
    let _ = ag.kill();
    let _ = ag.wait();
    let _ = ctrl.kill();
    let _ = ctrl.wait();
    (cpu, b.rss_kb, b.hwm_kb)
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args = Args::parse();
    if roles::dispatch(&args).await {
        return;
    }
    let agents: usize = args.get_or("agents", 10);
    let duration: u64 = args.get_or("duration", 10);

    table::experiment(
        "Fig. 8a",
        "Controller CPU and memory, FlexRIC vs FlexRAN (dummy agents, 32 UEs, 1 ms)",
    );
    let (ric_cpu, ric_rss, ric_hwm) = run_side(false, agents, duration, 39301).await;
    eprintln!("  FlexRIC: {ric_cpu:.2} % cpu, {} MB rss", ric_rss / 1024);
    let (ran_cpu, ran_rss, ran_hwm) = run_side(true, agents, duration, 39302).await;
    eprintln!("  FlexRAN: {ran_cpu:.2} % cpu, {} MB rss", ran_rss / 1024);

    table::table(
        &["controller", "cpu_%", "rss_MB", "peak_MB"],
        &[
            vec![
                "FlexRIC".into(),
                table::f(ric_cpu),
                table::f(ric_rss as f64 / 1024.0),
                table::f(ric_hwm as f64 / 1024.0),
            ],
            vec![
                "FlexRAN".into(),
                table::f(ran_cpu),
                table::f(ran_rss as f64 / 1024.0),
                table::f(ran_hwm as f64 / 1024.0),
            ],
        ],
    );
    println!();
    println!(
        "ratios: FlexRAN/FlexRIC cpu = {:.1}x, memory = {:.1}x",
        ran_cpu / ric_cpu.max(0.01),
        ran_rss as f64 / ric_rss.max(1) as f64
    );
    println!("Paper shape check: FlexRIC ≈1/10 of FlexRAN CPU (FB vs protobuf +");
    println!("event-driven vs polling) and ≈1/3 of its memory (store organization).");
}
