//! Deployable unit: the O-RAN-style E2 termination (one of the RIC
//! platform components of the paper's Table 2).
//!
//! ```text
//! deploy_oran_e2t --listen 127.0.0.1:36421 --rmr 127.0.0.1:4560
//! ```

use flexric_bench::Args;
use flexric_transport::TransportAddr;

#[tokio::main]
async fn main() {
    let args = Args::parse();
    let listen = TransportAddr::parse(args.get("listen").unwrap_or("127.0.0.1:36421")).unwrap();
    let rmr = TransportAddr::parse(args.get("rmr").unwrap_or("127.0.0.1:4560")).unwrap();
    let south = flexric_ctrl::oran_emu::run_e2term(listen, rmr).await.expect("e2term");
    println!("oran-e2t listening on {south}");
    std::future::pending::<()>().await;
}
