//! Fig. 9b — Monitoring CPU and memory: FlexRIC vs the O-RAN RIC pipeline
//! (paper §5.4).
//!
//! "10 dummy agents export MAC statistics (excluding HARQ) for 32 UEs
//! using E2AP indication messages every ms."  The FlexRIC side is the
//! monitoring controller in one process; the O-RAN side is the E2
//! termination (decode + re-encode), an RMR hop, the xApp (second decode)
//! and the platform components, in a separate process whose total CPU/RSS
//! is attributed to the RIC — the paper sums its components' `docker
//! stats` the same way.
//!
//! ```text
//! cargo run --release -p flexric-bench --bin fig9b_oran_monitoring \
//!     [--agents 10] [--duration 10] [--platform-components 13] [--platform-mb 12]
//! ```

use flexric_bench::{metrics, roles, spawn_role, table, Args};
use flexric_transport::TransportAddr;

/// Role: the whole O-RAN RIC in one process — E2T + RMR + xApp + platform.
async fn role_oran_ric(args: &Args) {
    let listen = TransportAddr::parse(args.get("listen").expect("--listen")).expect("addr");
    let components: usize = args.get_or("platform-components", 13);
    let mb: usize = args.get_or("platform-mb", 12);
    let period: u32 = args.get_or("period", 1);
    let sm = flexric_sm::SmCodec::Asn1Per;
    let xapp =
        flexric_ctrl::oran_emu::OranXapp::spawn(TransportAddr::parse("127.0.0.1:0").unwrap(), sm)
            .await
            .expect("xapp");
    let _south =
        flexric_ctrl::oran_emu::run_e2term(listen, xapp.rmr_addr.clone()).await.expect("e2term");
    let _platform = flexric_ctrl::oran_emu::spawn_platform(components, mb);
    // Subscribe to MAC stats of every agent surfaced by discovery polling.
    let mut subscribed = std::collections::HashSet::new();
    loop {
        tokio::time::sleep(std::time::Duration::from_millis(200)).await;
        let found: Vec<usize> = xapp.discovered.lock().clone();
        for agent in found {
            if subscribed.insert(agent) {
                xapp.subscribe(
                    agent,
                    flexric_e2ap::RanFunctionId::new(flexric_sm::rf::MAC_STATS),
                    period,
                );
            }
        }
    }
}

async fn measure(
    ric_args: Vec<String>,
    agents_args: Vec<String>,
    duration: u64,
    ric_pid_label: &str,
) -> (f64, u64) {
    let mut ric = spawn_role(&ric_args).expect("spawn ric");
    tokio::time::sleep(std::time::Duration::from_millis(500)).await;
    let mut ag = spawn_role(&agents_args).expect("spawn agents");
    tokio::time::sleep(std::time::Duration::from_millis(2500)).await;
    let a = metrics::sample(Some(ric.id())).expect("sample");
    tokio::time::sleep(std::time::Duration::from_secs(duration)).await;
    let b = metrics::sample(Some(ric.id())).expect("sample");
    let cpu = metrics::cpu_pct(&a, &b);
    eprintln!("  {ric_pid_label}: {cpu:.1} % cpu, {} MB rss", b.rss_kb / 1024);
    let _ = ag.kill();
    let _ = ag.wait();
    let _ = ric.kill();
    let _ = ric.wait();
    (cpu, b.rss_kb)
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args = Args::parse();
    if args.get("role") == Some("oran-ric") {
        role_oran_ric(&args).await;
        return;
    }
    if roles::dispatch(&args).await {
        return;
    }
    let agents: usize = args.get_or("agents", 10);
    let duration: u64 = args.get_or("duration", 10);
    let components: usize = args.get_or("platform-components", 13);
    let platform_mb: usize = args.get_or("platform-mb", 12);

    table::experiment(
        "Fig. 9b",
        "Monitoring CPU/memory: FlexRIC vs O-RAN RIC (10 agents × 32 UEs, MAC @1 ms)",
    );

    // FlexRIC side: monitoring controller, FB, MAC only.
    let (ric_cpu, ric_rss) = measure(
        vec![
            "--role".into(),
            "monitor".into(),
            "--listen".into(),
            "127.0.0.1:39501".into(),
            "--period".into(),
            "1".into(),
            "--codec".into(),
            "fb".into(),
        ],
        vec![
            "--role".into(),
            "dummy-agents".into(),
            "--ctrl".into(),
            "127.0.0.1:39501".into(),
            "--agents".into(),
            agents.to_string(),
            "--ues".into(),
            "32".into(),
            "--codec".into(),
            "fb".into(),
            "--mac-only".into(),
            "x".into(),
        ],
        duration,
        "FlexRIC",
    )
    .await;

    // O-RAN side: E2T + RMR + xApp + platform, ASN.1.
    let (oran_cpu, oran_rss) = measure(
        vec![
            "--role".into(),
            "oran-ric".into(),
            "--listen".into(),
            "127.0.0.1:39502".into(),
            "--agents".into(),
            agents.to_string(),
            "--period".into(),
            "1".into(),
            "--platform-components".into(),
            components.to_string(),
            "--platform-mb".into(),
            platform_mb.to_string(),
        ],
        vec![
            "--role".into(),
            "dummy-agents".into(),
            "--ctrl".into(),
            "127.0.0.1:39502".into(),
            "--agents".into(),
            agents.to_string(),
            "--ues".into(),
            "32".into(),
            "--codec".into(),
            "asn".into(),
            "--mac-only".into(),
            "x".into(),
        ],
        duration,
        "O-RAN RIC",
    )
    .await;

    table::table(
        &["platform", "cpu_%", "rss_MB"],
        &[
            vec!["FlexRIC".into(), table::f(ric_cpu), table::f(ric_rss as f64 / 1024.0)],
            vec!["O-RAN RIC".into(), table::f(oran_cpu), table::f(oran_rss as f64 / 1024.0)],
        ],
    );
    println!();
    println!(
        "ratios: O-RAN/FlexRIC cpu = {:.1}x, memory = {:.0}x",
        oran_cpu / ric_cpu.max(0.01),
        oran_rss as f64 / ric_rss.max(1) as f64
    );
    println!("Paper shape check: FlexRIC CPU ≈83 % lower than O-RAN (double decode +");
    println!("RMR hop), O-RAN memory dominated by always-on platform components.");
}
