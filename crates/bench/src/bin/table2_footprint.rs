//! Table 2 — Footprint of the deployable units (paper §5.4).
//!
//! The paper compares Docker image sizes: FlexRIC + HW 76 MB, FlexRIC +
//! stats 94 MB, the O-RAN RIC platform 2469 MB across 15 containers, plus
//! ~170 MB per xApp image.  Without Docker, the honest equivalent is the
//! size of each deployable unit — here a statically linked release binary
//! — multiplied by how many units the architecture requires: FlexRIC
//! ships one process; the O-RAN RIC ships the E2 termination, one image
//! per platform component (15), and one per xApp.
//!
//! Run `cargo build --release -p flexric-bench` first; this binary stats
//! the artifacts in `target/release`.

use flexric_bench::table;

fn size_of(bin: &str) -> Option<u64> {
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    std::fs::metadata(dir.join(bin)).ok().map(|m| m.len())
}

fn main() {
    table::experiment("Table 2", "Deployable-unit footprints (release binaries, vs Docker images)");
    let units: [(&str, &str, u64); 5] = [
        ("FlexRIC + HW-E2SM", "deploy_flexric_hw", 1),
        ("FlexRIC + Stats E2SMs (FB)", "deploy_flexric_stats", 1),
        ("O-RAN E2 termination", "deploy_oran_e2t", 1),
        ("O-RAN platform component", "deploy_oran_platform", 15),
        ("O-RAN stats xApp", "deploy_oran_xapp", 1),
    ];
    let mut rows = Vec::new();
    let mut flexric_total = 0u64;
    let mut oran_total = 0u64;
    for (label, bin, count) in units {
        let Some(sz) = size_of(bin) else {
            eprintln!("missing {bin}: run `cargo build --release -p flexric-bench` first");
            continue;
        };
        let total = sz * count;
        if label.starts_with("FlexRIC + Stats") {
            flexric_total = total;
        }
        if label.starts_with("O-RAN") {
            oran_total += total;
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", sz as f64 / 1e6),
            count.to_string(),
            format!("{:.1}", total as f64 / 1e6),
        ]);
    }
    table::table(&["deployable", "unit_MB", "units", "total_MB"], &rows);
    println!();
    println!(
        "O-RAN total / FlexRIC-stats = {:.1}x (paper: 2469+166 / 94 ≈ 28x, dominated by",
        oran_total as f64 / flexric_total.max(1) as f64
    );
    println!("the per-container OS layers the paper's Docker images carry; the binary");
    println!("ratio isolates the architectural multiplier: number of deployable units).");
}
