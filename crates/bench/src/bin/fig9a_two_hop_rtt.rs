//! Fig. 9a — Two-hop round-trip times: FlexRIC (relaying controller) vs
//! the O-RAN RIC pipeline (paper §5.4).
//!
//! FlexRIC side: upstream controller → relaying controller → agent, all
//! over localhost TCP, in FB/FB and ASN/ASN.  The relay is "not imposed by
//! FlexRIC but added to carry out a fair comparison".
//!
//! O-RAN side: xApp → RMR hop → E2 termination → agent, ASN.1 throughout,
//! with the E2T decoding/re-encoding and the xApp decoding again — the
//! architecture that makes a localhost RTT approach 1 ms in the paper.
//!
//! ```text
//! cargo run --release -p flexric-bench --bin fig9a_two_hop_rtt \
//!     [--pings 1000] [--out BENCH_fig9a.json]
//! ```
//!
//! Besides the table, a machine-readable snapshot is written to `--out`
//! (default `BENCH_fig9a.json`, `--out -` to skip) so re-anchors can track
//! the two-hop RTT over time.

use flexric::agent::{Agent, AgentConfig};
use flexric::server::{Server, ServerConfig};
use flexric_bench::{summarize, table, Args};
use flexric_codec::E2apCodec;
use flexric_ctrl::oran_emu::{run_e2term, OranXapp};
use flexric_ctrl::ranfun::HwFn;
use flexric_ctrl::relay::{hw_advertisement, spawn_relay, PingApp};
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;

async fn flexric_one_hop(
    codec: E2apCodec,
    sm: SmCodec,
    payload: usize,
    pings: usize,
) -> (f64, f64, f64) {
    // FlexRIC's native deployment: the application is an iApp, one hop to
    // the agent — the architecture O-RAN precludes.
    let (ping_app, rtts) = PingApp::new(sm, payload, 1);
    let mut cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 1),
        TransportAddr::parse("127.0.0.1:0").unwrap(),
    );
    cfg.codec = codec;
    cfg.tick_ms = Some(1);
    let server = Server::spawn(cfg, vec![Box::new(ping_app)]).await.unwrap();
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
        server.addrs[0].clone(),
    );
    acfg.codec = codec;
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, vec![Box::new(HwFn::new(sm))]).await.unwrap();
    let t0 = std::time::Instant::now();
    while rtts.lock().len() < pings && t0.elapsed().as_secs() < 60 {
        tokio::time::sleep(std::time::Duration::from_millis(20)).await;
    }
    let mut samples = rtts.lock().clone();
    let s = summarize(&mut samples);
    agent.stop();
    server.stop();
    (s.mean / 1000.0, s.p50 as f64 / 1000.0, s.p99 as f64 / 1000.0)
}

async fn flexric_two_hop(
    codec: E2apCodec,
    sm: SmCodec,
    payload: usize,
    pings: usize,
) -> (f64, f64, f64) {
    let (ping_app, rtts) = PingApp::new(sm, payload, 1);
    let mut up_cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 1),
        TransportAddr::parse("127.0.0.1:0").unwrap(),
    );
    up_cfg.codec = codec;
    up_cfg.tick_ms = Some(1);
    let up = Server::spawn(up_cfg, vec![Box::new(ping_app)]).await.unwrap();

    let mut south_cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 2),
        TransportAddr::parse("127.0.0.1:0").unwrap(),
    );
    south_cfg.codec = codec;
    south_cfg.tick_ms = None;
    let relay = spawn_relay(
        south_cfg,
        up.addrs[0].clone(),
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 99),
        hw_advertisement(sm),
    )
    .await
    .unwrap();

    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
        relay.addrs[0].clone(),
    );
    acfg.codec = codec;
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, vec![Box::new(HwFn::new(sm))]).await.unwrap();

    let t0 = std::time::Instant::now();
    while rtts.lock().len() < pings && t0.elapsed().as_secs() < 60 {
        tokio::time::sleep(std::time::Duration::from_millis(20)).await;
    }
    let mut samples = rtts.lock().clone();
    let s = summarize(&mut samples);
    agent.stop();
    relay.stop();
    up.stop();
    (s.mean / 1000.0, s.p50 as f64 / 1000.0, s.p99 as f64 / 1000.0)
}

async fn oran_two_hop(payload: usize, pings: usize) -> (f64, f64, f64) {
    let sm = SmCodec::Asn1Per;
    let xapp = OranXapp::spawn(TransportAddr::parse("127.0.0.1:0").unwrap(), sm).await.unwrap();
    let south = run_e2term(TransportAddr::parse("127.0.0.1:0").unwrap(), xapp.rmr_addr.clone())
        .await
        .unwrap();
    let mut acfg = AgentConfig::new(GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1), south);
    acfg.codec = E2apCodec::Asn1Per;
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, vec![Box::new(HwFn::new(sm))]).await.unwrap();
    tokio::time::sleep(std::time::Duration::from_millis(300)).await;

    // Serialized pinging: send the next once the previous returned.
    let t0 = std::time::Instant::now();
    let mut sent = 0usize;
    while sent < pings && t0.elapsed().as_secs() < 60 {
        let have = xapp.rtts.lock().len();
        if have == sent {
            if sent == have {
                xapp.ping(0, payload);
                sent += 1;
            }
        }
        // Wait for the pong before the next ping.
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(200);
        while xapp.rtts.lock().len() < sent && std::time::Instant::now() < deadline {
            tokio::time::sleep(std::time::Duration::from_micros(200)).await;
        }
    }
    let mut samples = xapp.rtts.lock().clone();
    let s = summarize(&mut samples);
    agent.stop();
    (s.mean / 1000.0, s.p50 as f64 / 1000.0, s.p99 as f64 / 1000.0)
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args = Args::parse();
    let pings: usize = args.get_or("pings", 1000);
    let out = args.get("out").unwrap_or("BENCH_fig9a.json").to_owned();

    table::experiment(
        "Fig. 9a",
        "Two-hop RTT: FlexRIC relay vs O-RAN RIC pipeline (localhost TCP)",
    );
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for payload in [100usize, 1500] {
        for (label, codec, sm) in [
            ("FB/FB 1-hop", Some((E2apCodec::Flatb, false)), SmCodec::Flatb),
            ("FB/FB relay", Some((E2apCodec::Flatb, true)), SmCodec::Flatb),
            ("ASN/ASN relay", Some((E2apCodec::Asn1Per, true)), SmCodec::Asn1Per),
            ("O-RAN", None, SmCodec::Asn1Per),
        ] {
            let (mean, p50, p99) = match codec {
                Some((c, true)) => flexric_two_hop(c, sm, payload, pings).await,
                Some((c, false)) => flexric_one_hop(c, sm, payload, pings).await,
                None => oran_two_hop(payload, pings).await,
            };
            eprintln!("  {payload} B {label}: mean {mean:.1} µs");
            rows.push(vec![
                format!("{payload} B"),
                label.to_string(),
                table::f(mean),
                table::f(p50),
                table::f(p99),
            ]);
            points.push(serde_json::json!({
                "payload_bytes": payload,
                "path": label,
                "rtt_mean_us": mean,
                "rtt_p50_us": p50,
                "rtt_p99_us": p99,
            }));
        }
    }
    table::table(&["payload", "path", "rtt_mean_us", "rtt_p50_us", "rtt_p99_us"], &rows);

    if out != "-" {
        let doc = serde_json::json!({
            "bench": "fig9a",
            "source": "fig9a_two_hop_rtt",
            "status": "measured",
            "pings_per_point": pings,
            "points": points,
        });
        match std::fs::write(&out, serde_json::to_string_pretty(&doc).unwrap() + "\n") {
            Ok(()) => eprintln!("  snapshot written to {out}"),
            Err(e) => eprintln!("  snapshot NOT written ({out}: {e})"),
        }
    }
    println!();
    println!("Paper shape check: O-RAN imposes the second hop that FlexRIC does not");
    println!("(1-hop row ≈ half the RTT).  At equal hop counts our substrate shows");
    println!("parity: the paper's residual 2-3x there comes from RMR + container");
    println!("networking, which this emulation does not add (see EXPERIMENTS.md).");
}
