//! Fig. 6a — Normalized CPU usage of the agent on a "radio" deployment
//! (paper §5.1).
//!
//! Runs a simulated base station in its own process — LTE (25 RB, 3 UEs,
//! MCS 28, normalized to the paper's 8-core budget) and NR (106 RB, 3 UEs,
//! MCS 20, 16-core budget) — exporting MAC+RLC+PDCP statistics at 1 ms,
//! and measures the base-station process CPU with the FlexRIC agent, with
//! the FlexRAN agent, and with no agent at all.  The agent overhead is the
//! delta against the no-agent baseline.
//!
//! Substitution note: the paper's absolute bars include the OAI PHY
//! (6.5–8.7 % per cell), which has no counterpart here; the quantity the
//! paper's claim concerns — the *agent-attributable* overhead being well
//! below 1 % normalized — is exactly what this harness reports.
//!
//! ```text
//! cargo run --release -p flexric-bench --bin fig6a_agent_overhead [--duration 10]
//! ```

use flexric_bench::{metrics, roles, spawn_role, table, Args};

struct Scenario {
    label: &'static str,
    cell: &'static str,
    mcs: u8,
    cores: u32,
    variant: &'static str,
    ctrl_role: Option<&'static str>,
    port: u16,
}

async fn run_scenario(s: &Scenario, duration: u64) -> f64 {
    // Controller process (if the variant needs one).
    let mut ctrl_child = None;
    if let Some(role) = s.ctrl_role {
        let child = spawn_role(&[
            "--role".into(),
            role.into(),
            "--listen".into(),
            format!("127.0.0.1:{}", s.port),
            "--period".into(),
            "1".into(),
        ])
        .expect("spawn controller");
        ctrl_child = Some(child);
        tokio::time::sleep(std::time::Duration::from_millis(300)).await;
    }
    // Base-station process.
    let mut bs_args: Vec<String> = vec![
        "--role".into(),
        "bs".into(),
        "--variant".into(),
        s.variant.into(),
        "--cell".into(),
        s.cell.into(),
        "--mcs".into(),
        s.mcs.to_string(),
        "--ues".into(),
        "3".into(),
        "--duration".into(),
        duration.to_string(),
    ];
    if s.ctrl_role.is_some() {
        bs_args.push("--ctrl".into());
        bs_args.push(format!("127.0.0.1:{}", s.port));
    }
    let mut bs = spawn_role(&bs_args).expect("spawn bs");
    // Let it warm up, then meter the steady state.
    tokio::time::sleep(std::time::Duration::from_millis(1000)).await;
    let a = metrics::sample(Some(bs.id())).expect("sample");
    tokio::time::sleep(std::time::Duration::from_secs(duration.saturating_sub(2).max(3))).await;
    let b = metrics::sample(Some(bs.id())).expect("sample");
    let pct = metrics::cpu_pct_normalized(&a, &b, s.cores);
    let _ = bs.wait();
    if let Some(mut c) = ctrl_child {
        let _ = c.kill();
        let _ = c.wait();
    }
    pct
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args = Args::parse();
    if roles::dispatch(&args).await {
        return;
    }
    let duration: u64 = args.get_or("duration", 10);

    table::experiment(
        "Fig. 6a",
        "Normalized agent CPU overhead, radio deployment (BS process, Δ vs no agent)",
    );
    let scenarios = [
        Scenario {
            label: "4G baseline",
            cell: "lte25",
            mcs: 28,
            cores: 8,
            variant: "none",
            ctrl_role: None,
            port: 0,
        },
        Scenario {
            label: "4G FlexRIC",
            cell: "lte25",
            mcs: 28,
            cores: 8,
            variant: "flexric",
            ctrl_role: Some("monitor"),
            port: 39101,
        },
        Scenario {
            label: "4G FlexRAN",
            cell: "lte25",
            mcs: 28,
            cores: 8,
            variant: "flexran",
            ctrl_role: Some("flexran-ctrl"),
            port: 39102,
        },
        Scenario {
            label: "5G baseline",
            cell: "nr106",
            mcs: 20,
            cores: 16,
            variant: "none",
            ctrl_role: None,
            port: 0,
        },
        Scenario {
            label: "5G FlexRIC",
            cell: "nr106",
            mcs: 20,
            cores: 16,
            variant: "flexric",
            ctrl_role: Some("monitor"),
            port: 39103,
        },
    ];
    let mut results = Vec::new();
    for s in &scenarios {
        let pct = run_scenario(s, duration).await;
        eprintln!("  {}: {:.3} % (normalized, {} cores)", s.label, pct, s.cores);
        results.push((s.label, s.cores, pct));
    }
    let base_4g = results.iter().find(|(l, _, _)| *l == "4G baseline").map(|r| r.2).unwrap_or(0.0);
    let base_5g = results.iter().find(|(l, _, _)| *l == "5G baseline").map(|r| r.2).unwrap_or(0.0);
    let rows: Vec<Vec<String>> = results
        .iter()
        .filter(|(l, _, _)| !l.ends_with("baseline"))
        .map(|(label, cores, pct)| {
            let base = if label.starts_with("4G") { base_4g } else { base_5g };
            vec![
                label.to_string(),
                cores.to_string(),
                table::f(*pct),
                table::f(base),
                table::f((pct - base).max(0.0)),
            ]
        })
        .collect();
    table::table(&["scenario", "cores", "bs_cpu_norm_%", "baseline_%", "agent_overhead_%"], &rows);
    println!();
    println!("Paper shape check: all agent overheads well below 1 % normalized;");
    println!("5G FlexRIC relative overhead smaller than 4G (larger cell budget).");
}
