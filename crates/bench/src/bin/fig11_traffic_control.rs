//! Fig. 11 — Sojourn times and VoIP RTT with and without the traffic
//! control xApp (paper §6.1.1).
//!
//! Workload, as in the paper: a G.711-like VoIP flow (172 B UDP every
//! 20 ms) starts at t=0; a greedy TCP (Cubic) flow starts 5 s later and
//! bloats the RLC buffer.  Two runs over the virtual-time simulator:
//!
//! * **transparent** — the TC sublayer passes everything through one FIFO
//!   (Fig. 11a): the VoIP packets share the bloated buffer;
//! * **xApp** — the full control loop runs: the RLC statistics flow
//!   through the FlexRIC controller to the broker; the bloat-guard xApp
//!   notices the sojourn limit violation and performs the paper's three
//!   actions over REST (second FIFO queue, 5-tuple filter for the VoIP
//!   flow, 5G-BDP pacer) (Fig. 11b).
//!
//! Output: sojourn time series for both runs and the VoIP RTT CDF
//! (Fig. 11c).
//!
//! ```text
//! cargo run --release -p flexric-bench --bin fig11_traffic_control [--secs 60]
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use flexric::agent::{Agent, AgentConfig};
use flexric::server::{Server, ServerConfig};
use flexric_bench::{table, Args};
use flexric_ctrl::ranfun::{full_bundle, BearerAddr, SimBs};
use flexric_ctrl::traffic::{spawn_rest, BloatGuardConfig, StatsForwarderApp, TcManagerApp};
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_ransim::{CellConfig, FlowConfig, FlowKind, PathConfig, Sim, UeConfig};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;
use flexric_xapp::broker::Broker;

const RNTI: u16 = 0x4601;
const VOIP_PORT: u16 = 5004;

fn build_sim() -> (Sim, usize, usize) {
    let mut sim = Sim::new(vec![CellConfig::nr("cell0", 106)], PathConfig::default());
    sim.attach_ue(0, UeConfig::new(RNTI, 20));
    let voip = sim.add_flow(FlowConfig {
        cell: 0,
        rnti: RNTI,
        drb: 1,
        kind: FlowKind::Cbr { bytes: 172, interval_ms: 20 },
        tuple: (0x0A00_0001, 0x0A00_0002, 40_000, VOIP_PORT, 17),
        start_ms: 0,
        stop_ms: None,
    });
    let tcp = sim.add_flow(FlowConfig {
        cell: 0,
        rnti: RNTI,
        drb: 1,
        kind: FlowKind::GreedyTcp { mss: 1500 },
        tuple: (0x0A00_0001, 0x0A00_0002, 40_001, 80, 6),
        start_ms: 5_000,
        stop_ms: None,
    });
    (sim, voip, tcp)
}

/// One sample row of the sojourn series.
struct Sample {
    t_s: f64,
    rlc_sojourn_ms: f64,
    q0_sojourn_ms: f64,
    q1_sojourn_ms: f64,
}

async fn run(secs: u64, with_xapp: bool) -> (Vec<Sample>, Vec<(u64, u64)>) {
    let (sim, voip, _tcp) = build_sim();
    let sim = Arc::new(Mutex::new(sim));

    let mut agent = None;
    if with_xapp {
        // Full control loop: broker + controller (stats forwarder + TC
        // manager) + REST + bloat-guard xApp.
        let broker = Broker::spawn("127.0.0.1:0").await.expect("broker");
        let broker_addr = broker.addr.to_string();
        let sm = SmCodec::Flatb;
        let fwd = StatsForwarderApp::new(
            sm,
            100,
            broker_addr.clone(),
            vec![BearerAddr { rnti: RNTI, drb: 1 }],
        );
        let mgr = TcManagerApp::new(sm);
        let mut cfg = ServerConfig::new(
            GlobalRicId::new(Plmn::TEST, 1),
            TransportAddr::Mem("fig11-ctrl".into()),
        );
        cfg.tick_ms = Some(10);
        let server = Server::spawn(cfg, vec![Box::new(fwd), Box::new(mgr)]).await.expect("server");
        let rest = spawn_rest("127.0.0.1:0", server.clone()).await.expect("rest");
        let rest_addr = rest.addr.to_string();

        let bs = SimBs::new(sim.clone(), 0);
        let mut acfg = AgentConfig::new(
            GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
            TransportAddr::Mem("fig11-ctrl".into()),
        );
        acfg.tick_ms = None;
        let a = Agent::spawn(acfg, full_bundle(&bs, sm)).await.expect("agent");
        agent = Some(a);

        tokio::spawn(async move {
            let outcome = flexric_ctrl::traffic::run_bloat_guard(BloatGuardConfig {
                broker_addr,
                rest_addr,
                sojourn_limit_us: 20_000,
                protect_dst_port: VOIP_PORT,
                protect_proto: 17,
                pacer_target_us: 10_000,
            })
            .await;
            match outcome {
                Ok((agent, rnti, drb)) => {
                    eprintln!("  xApp intervened: agent {agent}, rnti {rnti:#x}, drb {drb}")
                }
                Err(e) => eprintln!("  xApp error: {e}"),
            }
        });
    }

    // Virtual-time drive with periodic sampling.
    let mut samples = Vec::new();
    let total_ms = secs * 1000;
    let mut t = 0u64;
    while t < total_ms {
        // 100 ms of simulation per chunk, then yield so the control loop
        // (broker → xApp → REST → iApp → agent) can act.
        for _ in 0..100 {
            let now = {
                let mut s = sim.lock();
                s.tick();
                s.now_ms()
            };
            if let Some(a) = &agent {
                a.tick(now);
            }
            t += 1;
        }
        tokio::task::yield_now().await;
        if with_xapp {
            tokio::time::sleep(std::time::Duration::from_micros(500)).await;
        }
        // Sample the queues directly from the simulator.
        let (rlc_us, q0_us, q1_us) = {
            let mut s = sim.lock();
            let rlc = s.cells[0].rlc_stats();
            let rlc_us = rlc.bearers.first().map(|b| b.sojourn_us_avg).unwrap_or(0);
            let tc = s.cells[0].tc_stats(RNTI, 1);
            let (q0_us, q1_us) = tc
                .map(|tc| {
                    let g = |id: u32| {
                        tc.queues.iter().find(|q| q.id == id).map(|q| q.sojourn_us_avg).unwrap_or(0)
                    };
                    (g(0), g(1))
                })
                .unwrap_or((0, 0));
            (rlc_us, q0_us, q1_us)
        };
        samples.push(Sample {
            t_s: t as f64 / 1000.0,
            rlc_sojourn_ms: rlc_us as f64 / 1000.0,
            q0_sojourn_ms: q0_us as f64 / 1000.0,
            q1_sojourn_ms: q1_us as f64 / 1000.0,
        });
    }
    // Let in-flight messages settle, then pull the RTT log.
    tokio::time::sleep(std::time::Duration::from_millis(100)).await;
    let rtt_log = sim.lock().flow(voip).rtt_log.clone();
    if let Some(a) = agent {
        a.stop();
    }
    (samples, rtt_log)
}

fn print_series(label: &str, samples: &[Sample]) {
    println!("\n# {label}: t_s  rlc_sojourn_ms  tc_q0_ms  tc_q1_ms");
    for s in samples.iter().step_by(10) {
        println!(
            "{:.1}\t{:.1}\t{:.1}\t{:.1}",
            s.t_s, s.rlc_sojourn_ms, s.q0_sojourn_ms, s.q1_sojourn_ms
        );
    }
}

fn cdf_rows(log: &[(u64, u64)]) -> Vec<(f64, f64)> {
    let mut rtts: Vec<u64> = log.iter().map(|(_, r)| *r / 1000).collect();
    rtts.sort_unstable();
    let n = rtts.len().max(1) as f64;
    [1, 5, 10, 25, 50, 75, 90, 95, 99, 100]
        .iter()
        .map(|p| {
            let idx = ((*p as f64 / 100.0) * n).ceil() as usize;
            (rtts.get(idx.saturating_sub(1)).copied().unwrap_or(0) as f64, *p as f64 / 100.0)
        })
        .collect()
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args = Args::parse();
    let secs: u64 = args.get_or("secs", 60);

    table::experiment(
        "Fig. 11",
        "TC SM: sojourn times and VoIP RTT, transparent vs xApp (virtual-time sim)",
    );
    eprintln!("running transparent mode ({secs}s sim)...");
    let (ts, rtt_transparent) = run(secs, false).await;
    eprintln!("running xApp mode ({secs}s sim)...");
    let (xs, rtt_xapp) = run(secs, true).await;

    print_series("Fig. 11a transparent", &ts);
    print_series("Fig. 11b with TC xApp", &xs);

    println!("\n# Fig. 11c: VoIP RTT CDF (delay_ms, fraction)");
    println!("# transparent");
    for (ms, f) in cdf_rows(&rtt_transparent) {
        println!("{ms:.0}\t{f:.2}");
    }
    println!("# xApp");
    for (ms, f) in cdf_rows(&rtt_xapp) {
        println!("{ms:.0}\t{f:.2}");
    }

    let avg = |log: &[(u64, u64)], from_ms: u64| {
        let v: Vec<u64> =
            log.iter().filter(|(t, _)| *t >= from_ms).map(|(_, r)| *r / 1000).collect();
        v.iter().sum::<u64>() as f64 / v.len().max(1) as f64
    };
    let t_avg = avg(&rtt_transparent, 10_000);
    let x_avg = avg(&rtt_xapp, 10_000);
    println!();
    println!(
        "steady-state VoIP RTT: transparent {t_avg:.0} ms, xApp {x_avg:.0} ms ({:.1}x faster)",
        t_avg / x_avg.max(1.0)
    );
    println!("Paper shape check: transparent RTT inflates to hundreds of ms once the");
    println!("greedy flow starts; with the xApp the VoIP flow stays ~4x faster, and the");
    println!("bloat is confined to TC queue 0 while the RLC buffer stays uncongested.");
}
