//! SLA closed-loop A/B under scenario load: open-loop (static NVS
//! shares) vs closed-loop (the `ctrl::sla` xApp re-solving shares) while
//! the scenario engine drives mobility, churn and outages.
//!
//! For each preset the same seeded scenario runs twice through the full
//! stack — simulator, per-cell agents over the mem transport, monitoring
//! iApp (slice + RLC rows), SLA iApp — once with the loop disabled and
//! once enabled.  The figure of merit is SLA-violation time in *virtual*
//! seconds; the scenario event trace is identical between the two arms
//! (engine decisions never read cell throughput), so the comparison is
//! paired.
//!
//! ```text
//! cargo run --release -p flexric-bench --bin fig_sla_scenario \
//!     [--ms 30000] [--seed 7] [--out BENCH_sla.json] [--require-improvement]
//! ```

use std::sync::Arc;

use parking_lot::Mutex;
use serde_json::json;

use flexric::agent::{Agent, AgentConfig, AgentHandle};
use flexric::server::{Server, ServerConfig, ServerHandle};
use flexric_bench::{table, Args};
use flexric_ctrl::monitoring::{MonitorApp, MonitorConfig};
use flexric_ctrl::ranfun::{full_bundle, SimBs};
use flexric_ctrl::sla::{SlaApp, SlaConfig, SlaLedger, SlaPoll};
use flexric_ctrl::sla_solver::SlaTarget;
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_ransim::scenario::ScenarioEvent;
use flexric_ransim::{ScenarioEngine, ScenarioSpec, Sim};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;

/// Virtual-time spacing of agent ticks (report opportunities).
const AGENT_TICK_MS: u64 = 10;

/// SLOs for the preset slice layout (voip / web / mbb).  `mbb` carries no
/// objective: it is the donor the solver shrinks when others starve.
fn targets() -> Vec<SlaTarget> {
    vec![
        SlaTarget { slice: 0, thr_kbps_min: 0.0, delay_ms_max: 8.0, floor_milli: 100 },
        SlaTarget { slice: 1, thr_kbps_min: 2_000.0, delay_ms_max: 40.0, floor_milli: 100 },
        SlaTarget { slice: 2, thr_kbps_min: 0.0, delay_ms_max: 0.0, floor_milli: 100 },
    ]
}

async fn spawn_agent(sim: &Arc<Mutex<Sim>>, cell: usize, server: &ServerHandle) -> AgentHandle {
    let bs = SimBs::new(sim.clone(), cell);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1 + cell as u64),
        server.addrs[0].clone(),
    );
    acfg.tick_ms = None; // virtual-time driven
    Agent::spawn(acfg, full_bundle(&bs, SmCodec::Flatb)).await.expect("agent")
}

struct ArmResult {
    ledger: SlaLedger,
    trace_hash: u64,
    handovers: u64,
    arrivals: u64,
    departures: u64,
    outages: u64,
}

/// One full-stack run of `spec`; `closed` enables the SLA loop.
async fn run_arm(spec: ScenarioSpec, closed: bool, dur_ms: u64, run_id: usize) -> ArmResult {
    let mut engine = ScenarioEngine::new(spec);
    let mut sim = engine.build_sim();
    engine.prime(&mut sim);
    let cells = sim.cells.len();
    let sim = Arc::new(Mutex::new(sim));

    let mcfg = MonitorConfig {
        period_ms: 20,
        sm_codec: SmCodec::Flatb,
        mac: true,
        rlc: true,
        pdcp: false,
        slice: true,
        stale_ttl_ms: Some(5_000),
        ..Default::default()
    };
    let (monitor, db, _counters) = MonitorApp::new(mcfg);
    let (sla, ledger) = SlaApp::new(SlaConfig::new(db, targets(), closed));

    let addr = TransportAddr::Mem(format!("sla-scenario-{run_id}"));
    let mut cfg = ServerConfig::new(GlobalRicId::new(Plmn::TEST, 1), addr.clone());
    cfg.tick_ms = Some(20);
    cfg.reconnect_grace_ms = 10_000; // outages are short in wall time
    let server =
        Server::spawn(cfg, vec![Box::new(monitor), Box::new(sla)]).await.expect("controller");

    let mut agents: Vec<Option<AgentHandle>> = Vec::new();
    for cell in 0..cells {
        agents.push(Some(spawn_agent(&sim, cell, &server).await));
    }

    // Monitoring wants MAC + RLC + slice rows per agent.
    let want_subs = cells as u64 * 3;
    for _ in 0..400 {
        if server.stats().await.unwrap().subs >= want_subs {
            break;
        }
        tokio::time::sleep(std::time::Duration::from_millis(10)).await;
    }

    let steps = dur_ms / AGENT_TICK_MS;
    for step in 1..=steps {
        {
            let mut s = sim.lock();
            for _ in 0..AGENT_TICK_MS {
                s.tick();
                engine.advance(&mut s);
            }
        }
        let now = step * AGENT_TICK_MS;
        for ev in engine.drain_events() {
            match ev.1 {
                ScenarioEvent::CellOutage { cell } => {
                    // The cell's agent loses its transport for the
                    // outage, exercising grace + resubscribe on return.
                    if let Some(a) = agents[cell].take() {
                        a.stop();
                    }
                }
                ScenarioEvent::CellRecover { cell } => {
                    agents[cell] = Some(spawn_agent(&sim, cell, &server).await);
                }
                _ => {}
            }
        }
        for a in agents.iter().flatten() {
            a.tick(now);
        }
        if step % 10 == 0 {
            // Force an evaluation sweep every 100 virtual ms: indications
            // route to the monitor, so the SLA loop samples the store on
            // polls/ticks — awaiting the reply pins the cadence to
            // virtual time instead of the wall-clock server tick.
            let (tx, rx) = tokio::sync::oneshot::channel();
            server.to_iapp("sla", Box::new(SlaPoll { reply: tx }));
            let _ = tokio::time::timeout(std::time::Duration::from_secs(1), rx).await;
        } else {
            tokio::task::yield_now().await;
        }
    }
    // Let the last indications land, then flush the accounting.
    tokio::time::sleep(std::time::Duration::from_millis(100)).await;
    let (tx, rx) = tokio::sync::oneshot::channel();
    server.to_iapp("sla", Box::new(SlaPoll { reply: tx }));
    let ledger_snap = tokio::time::timeout(std::time::Duration::from_secs(5), rx)
        .await
        .ok()
        .and_then(|r| r.ok())
        .unwrap_or_else(|| {
            let led = ledger.lock();
            SlaLedger {
                violation_ms: led.violation_ms.clone(),
                evals: led.evals,
                pushes: led.pushes,
                acks: led.acks,
                failures: led.failures,
            }
        });

    for a in agents.iter().flatten() {
        a.stop();
    }
    server.stop();
    ArmResult {
        ledger: ledger_snap,
        trace_hash: engine.trace_hash(),
        handovers: engine.stats.handovers,
        arrivals: engine.stats.arrivals,
        departures: engine.stats.departures,
        outages: engine.stats.outages,
    }
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args = Args::parse();
    let dur_ms: u64 = args.get_or("ms", 30_000u64);
    let seed: u64 = args.get_or("seed", 7u64);
    let out = args.get("out").unwrap_or("BENCH_sla.json").to_owned();
    let gate = args.has("require-improvement");

    table::experiment(
        "SLA scenario A/B",
        "open-loop vs closed-loop NVS shares under mobility + churn + outages",
    );

    let mut points = Vec::new();
    let mut rows = Vec::new();
    let mut all_improved = true;
    for (i, preset) in ["commuter-rush", "flash-crowd"].iter().enumerate() {
        let spec = ScenarioSpec::preset(preset, seed).expect("preset");
        let open = run_arm(spec.clone(), false, dur_ms, i * 2).await;
        let closed = run_arm(spec, true, dur_ms, i * 2 + 1).await;
        assert_eq!(
            open.trace_hash, closed.trace_hash,
            "scenario must be identical across arms (paired comparison)"
        );
        let open_s = open.ledger.total_violation_ms() as f64 / 1000.0;
        let closed_s = closed.ledger.total_violation_ms() as f64 / 1000.0;
        all_improved &= closed_s < open_s;
        rows.push(vec![
            preset.to_string(),
            table::f(open_s),
            table::f(closed_s),
            table::f((1.0 - closed_s / open_s.max(1e-9)) * 100.0),
            closed.ledger.pushes.to_string(),
            open.handovers.to_string(),
            open.outages.to_string(),
        ]);
        for (name, arm) in [("open", &open), ("closed", &closed)] {
            points.push(json!({
                "preset": preset,
                "loop": name,
                "virtual_ms": dur_ms,
                "violation_s": if name == "open" { open_s } else { closed_s },
                "violation_ms_by_slice": arm.ledger.violation_ms,
                "evals": arm.ledger.evals,
                "pushes": arm.ledger.pushes,
                "acks": arm.ledger.acks,
                "failures": arm.ledger.failures,
                "handovers": arm.handovers,
                "arrivals": arm.arrivals,
                "departures": arm.departures,
                "outages": arm.outages,
                "trace_hash": format!("{:016x}", arm.trace_hash),
            }));
        }
    }
    table::table(
        &[
            "preset",
            "open_viol_s",
            "closed_viol_s",
            "reduction_%",
            "pushes",
            "handovers",
            "outages",
        ],
        &rows,
    );

    let doc = json!({
        "bench": "sla_scenario",
        "source": "fig_sla_scenario (full stack, mem transport, virtual time)",
        "status": "measured-live",
        "note": format!(
            "Paired A/B per preset over {dur_ms} virtual ms, seed {seed}: identical scenario \
             trace (hash-checked), SLA-violation virtual seconds accounted by the sla iApp \
             from SliceStatsInd + RLC sojourn rows."
        ),
        "points": points,
    });
    if out != "-" {
        std::fs::write(&out, serde_json::to_string_pretty(&doc).expect("json") + "\n")
            .expect("write out");
        println!("\nwrote {out}");
    }

    if gate && !all_improved {
        eprintln!("FAIL: closed loop did not reduce SLA-violation time on every preset");
        std::process::exit(1);
    }
}
