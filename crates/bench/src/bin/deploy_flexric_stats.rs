//! Deployable unit: a FlexRIC monitoring controller (MAC/RLC/PDCP stats,
//! FB) — the "FlexRIC + Stats E2SMs (FB)" row of the paper's Table 2.
//!
//! ```text
//! deploy_flexric_stats --listen 127.0.0.1:36421
//! ```

use flexric::server::{Server, ServerConfig};
use flexric_bench::Args;
use flexric_ctrl::monitoring::{MonitorApp, MonitorConfig};
use flexric_e2ap::{GlobalRicId, Plmn};
use flexric_transport::TransportAddr;

#[tokio::main]
async fn main() {
    let args = Args::parse();
    let listen = args.get("listen").unwrap_or("127.0.0.1:36421");
    let (app, _db, _counters) = MonitorApp::new(MonitorConfig::default());
    let cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 1),
        TransportAddr::parse(listen).expect("listen addr"),
    );
    let server = Server::spawn(cfg, vec![Box::new(app)]).await.expect("server");
    println!("flexric-stats controller listening on {}", server.addrs[0]);
    std::future::pending::<()>().await;
}
