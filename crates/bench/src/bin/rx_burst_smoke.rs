//! Burst-traffic smoke over TCP loopback: bulk indications saturate the
//! agent→controller direction while control procedures (HW pings, which
//! ride stream 0 southbound and are acknowledged on stream 0 northbound)
//! run concurrently — exercising the prioritized conn writer and the
//! zero-copy receive path together.
//!
//! Exits nonzero if conservation breaks, if a per-frame payload copy
//! shows up in steady state, or if the batched reader never sees a
//! multi-frame wakeup.
//!
//! ```text
//! cargo run --release -p flexric-bench --bin rx_burst_smoke [--duration 3]
//! ```

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use flexric::agent::{Agent, AgentConfig};
use flexric::server::{Server, ServerConfig};
use flexric_bench::Args;
use flexric_codec::E2apCodec;
use flexric_ctrl::monitoring::{MonitorApp, MonitorConfig};
use flexric_ctrl::ranfun::{stats_bundle, HwFn, SimBs};
use flexric_ctrl::relay::PingApp;
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_obs::SnapValue;
use flexric_ransim::{CellConfig, FlowConfig, FlowKind, PathConfig, Sim, UeConfig};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;

fn counter_sum(snap: &flexric_obs::Snapshot, name: &str) -> u64 {
    snap.metrics
        .iter()
        .filter(|m| m.name == name)
        .map(|m| match m.value {
            SnapValue::Counter(v) => v,
            _ => 0,
        })
        .sum()
}

fn hist_count(snap: &flexric_obs::Snapshot, name: &str) -> u64 {
    snap.metrics
        .iter()
        .filter(|m| m.name == name)
        .map(|m| match &m.value {
            SnapValue::Hist(h) => h.count,
            _ => 0,
        })
        .sum()
}

fn fail(msg: &str) -> ! {
    eprintln!("rx_burst_smoke: FAIL: {msg}");
    std::process::exit(1);
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args = Args::parse();
    let duration_s: u64 = args.get_or("duration", 3);

    // Controller: monitoring iApp (bulk consumer) + pinger (control
    // producer), TCP loopback, server ticks driving the pings.
    let mcfg = MonitorConfig::default();
    let (monitor, _db, _counters) = MonitorApp::new(mcfg);
    let (ping_app, rtts) = PingApp::new(SmCodec::Flatb, 100, 1);
    let mut cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 1),
        TransportAddr::parse("127.0.0.1:0").unwrap(),
    );
    cfg.codec = E2apCodec::Flatb;
    cfg.tick_ms = Some(1);
    let apps: Vec<Box<dyn flexric::server::IApp>> = vec![Box::new(monitor), Box::new(ping_app)];
    let server = Server::spawn(cfg, apps).await.unwrap();

    // Agent: 3 statistics SMs on a simulated cell plus the HW echo
    // function, so every ping forces a control-class reply into an outbox
    // already crowded with bulk indications.
    let mut sim = Sim::new(vec![CellConfig::nr("cell0", 106)], PathConfig::default());
    for i in 0..8u16 {
        sim.attach_ue(0, UeConfig::new(0x4601 + i, 20));
        sim.add_flow(FlowConfig {
            cell: 0,
            rnti: 0x4601 + i,
            drb: 1,
            kind: FlowKind::GreedyTcp { mss: 1500 },
            tuple: (0x0A00_0001, 0x0A00_0100 + i as u32, 1000, 80, 6),
            start_ms: 0,
            stop_ms: None,
        });
    }
    let sim = Arc::new(Mutex::new(sim));
    let bs = SimBs::new(sim.clone(), 0);
    let mut fns = stats_bundle(&bs, SmCodec::Flatb);
    fns.push(Box::new(HwFn::new(SmCodec::Flatb)));
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Gnb, 1),
        server.addrs[0].clone(),
    );
    acfg.codec = E2apCodec::Flatb;
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, fns).await.unwrap();

    // Setup and subscriptions settle, then the steady-state baseline.
    tokio::time::sleep(Duration::from_millis(300)).await;
    let rx_copies_before =
        counter_sum(&flexric_obs::snapshot(), "flexric_transport_rx_copies_total");

    // Bursty load: many sim ticks between yields, so each socket wakeup
    // carries several frames.
    let t0 = std::time::Instant::now();
    while t0.elapsed().as_secs() < duration_s {
        for _ in 0..50 {
            let now = {
                let mut s = sim.lock();
                s.tick();
                s.now_ms()
            };
            agent.tick(now);
        }
        tokio::task::yield_now().await;
    }

    // Settle.
    let mut snap = flexric_obs::snapshot();
    for _ in 0..100 {
        let sent = counter_sum(&snap, "flexric_agent_indications_sent_total");
        let rx = counter_sum(&snap, "flexric_server_indications_rx_total");
        if sent > 0 && sent == rx {
            break;
        }
        tokio::time::sleep(Duration::from_millis(30)).await;
        snap = flexric_obs::snapshot();
    }

    let sent = counter_sum(&snap, "flexric_agent_indications_sent_total");
    let rx = counter_sum(&snap, "flexric_server_indications_rx_total");
    let rx_copies = counter_sum(&snap, "flexric_transport_rx_copies_total");
    let wakeups = hist_count(&snap, "flexric_transport_read_frames_per_wakeup");
    let frames = counter_sum(&snap, "flexric_transport_rx_frames_total");
    let promotions = counter_sum(&snap, "flexric_conn_control_promotions_total");
    let pings = rtts.lock().len();

    println!("rx_burst_smoke: {sent} indications sent, {rx} received");
    println!("rx_burst_smoke: {frames} frames over {wakeups} socket wakeups");
    println!("rx_burst_smoke: {pings} control pings completed during the burst");
    println!("rx_burst_smoke: {promotions} control-frame promotions past queued bulk");
    println!(
        "rx_burst_smoke: rx payload copies {rx_copies_before} before burst, {rx_copies} after"
    );

    if sent < 1_000 {
        fail(&format!("burst too small: only {sent} indications sent"));
    }
    if sent != rx {
        fail(&format!("conservation broke: sent {sent} != received {rx}"));
    }
    if cfg!(feature = "rx-copy") {
        // Legacy-path A/B run: the copying reader must actually have been
        // in play, i.e. every steady-state frame took a copy.
        if rx_copies == rx_copies_before {
            fail("rx-copy build but the copying receive path never ran");
        }
    } else if rx_copies != rx_copies_before {
        fail("receive path took per-frame payload copies in steady state");
    }
    if wakeups == 0 {
        fail("frames-per-wakeup histogram never recorded");
    }
    if frames < wakeups {
        fail("reader claims more wakeups than frames");
    }
    if pings == 0 {
        fail("no control ping completed — priority stream never exercised");
    }

    agent.stop();
    server.stop();
    println!("rx_burst_smoke: OK");
}
