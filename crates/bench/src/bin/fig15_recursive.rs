//! Fig. 15 — Recursive slicing: dedicated vs shared infrastructure
//! (paper §6.2).
//!
//! Two operators, two UEs each, over 4G/LTE:
//!
//! * **dedicated** — two eNBs of 25 RB (5 MHz) each, one slicing
//!   controller per operator, directly attached;
//! * **shared** — one eNB of 50 RB (10 MHz) fronted by the virtualization
//!   controller; the *same* slicing controllers connect northbound as
//!   tenants with a 50 % SLA each (multi-RAT reuse of the SC SM).
//!
//! Timeline (as in the paper): at ~8 s and ~11 s operator A creates two
//! sub-slices (66 %, 33 %) in its virtual network; around 25–35 s operator
//! B's UE 4 stops its traffic; around 40–50 s all of operator B idles.
//! Isolation: A's sub-slicing never affects B.  Sharing: in the shared
//! infrastructure, A's UEs absorb B's idle resources (multiplexing gain);
//! in the dedicated one they are wasted.
//!
//! ```text
//! cargo run --release -p flexric-bench --bin fig15_recursive [--secs 50]
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use flexric::agent::{Agent, AgentConfig, AgentHandle};
use flexric::server::{Server, ServerConfig, ServerHandle};
use flexric_bench::{table, Args};
use flexric_ctrl::ranfun::{full_bundle, SimBs};
use flexric_ctrl::recursive::{TenantConf, VirtController};
use flexric_ctrl::slicing::{ApplySliceCtrl, SliceApp};
use flexric_e2ap::{E2NodeType, GlobalE2NodeId, GlobalRicId, Plmn};
use flexric_ransim::{CellConfig, FlowConfig, FlowKind, PathConfig, Sim, UeConfig};
use flexric_sm::slice::{SliceConf, SliceCtrl, SliceParams, UeSchedAlgo};
use flexric_sm::SmCodec;
use flexric_transport::TransportAddr;
use tokio::sync::oneshot;

const MCS: u8 = 28;
const OP_A: (u16, u16) = (1, 1);
const OP_B: (u16, u16) = (2, 1);
// UE 1, 2 belong to operator A; UE 3, 4 to operator B.
const UES: [(u16, (u16, u16)); 4] = [(0x11, OP_A), (0x12, OP_A), (0x21, OP_B), (0x22, OP_B)];

/// A tenant-facing slicing controller (the §6.1.2 controller, reused).
struct TenantCtrl {
    server: ServerHandle,
}

async fn spawn_tenant(name: &str) -> TenantCtrl {
    let (app, _latest) = SliceApp::new(SmCodec::Flatb, 1000);
    let mut cfg =
        ServerConfig::new(GlobalRicId::new(Plmn::TEST, 10), TransportAddr::Mem(name.to_owned()));
    cfg.tick_ms = None;
    let server = Server::spawn(cfg, vec![Box::new(app)]).await.expect("tenant ctrl");
    TenantCtrl { server }
}

impl TenantCtrl {
    /// Issues a slice-control command through the tenant's controller and
    /// waits for the (virtualized) acknowledgement.
    async fn apply(&self, ctrl: SliceCtrl) -> bool {
        let (tx, rx) = oneshot::channel();
        self.server.to_iapp("slice", Box::new(ApplySliceCtrl { agent: 0, ctrl, reply: tx }));
        match tokio::time::timeout(std::time::Duration::from_secs(5), rx).await {
            Ok(Ok(reply)) => reply.ok,
            _ => false,
        }
    }
}

fn attach_ues(sim: &mut Sim, cell: usize, ues: &[(u16, (u16, u16))]) -> Vec<usize> {
    let mut flows = Vec::new();
    for (i, (rnti, plmn)) in ues.iter().enumerate() {
        sim.attach_ue(cell, UeConfig { rnti: *rnti, mcs: MCS, cqi: 15, plmn: *plmn, snssai: None });
        flows.push(sim.add_flow(FlowConfig {
            cell,
            rnti: *rnti,
            drb: 1,
            kind: FlowKind::GreedyTcp { mss: 1500 },
            tuple: (0x0A00_0001, 0x0A00_0200 + i as u32, 1000, 80, 6),
            start_ms: 0,
            stop_ms: None,
        }));
    }
    flows
}

struct Setup {
    sim: Arc<Mutex<Sim>>,
    agents: Vec<AgentHandle>,
    servers: Vec<ServerHandle>,
    tenant_a: TenantCtrl,
    flows: Vec<usize>,
    /// Slice ids usable by tenant A for its sub-slices.
    a_slice_ids: (u32, u32),
}

/// Dedicated: two 25 RB eNBs, one slicing controller each.
async fn setup_dedicated(tag: &str) -> Setup {
    let mut sim = Sim::new(
        vec![CellConfig::lte("enb-a", 25), CellConfig::lte("enb-b", 25)],
        PathConfig::default(),
    );
    let mut flows = attach_ues(&mut sim, 0, &UES[..2]);
    flows.extend(attach_ues(&mut sim, 1, &UES[2..]));
    let sim = Arc::new(Mutex::new(sim));

    let mut agents = Vec::new();
    let mut servers = Vec::new();
    let tenant_a = spawn_tenant(&format!("fig15-{tag}-a")).await;
    let tenant_b = spawn_tenant(&format!("fig15-{tag}-b")).await;
    for (cell, (tenant, name)) in
        [(&tenant_a, format!("fig15-{tag}-a")), (&tenant_b, format!("fig15-{tag}-b"))]
            .iter()
            .enumerate()
    {
        let bs = SimBs::new(sim.clone(), cell);
        let mut acfg = AgentConfig::new(
            GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Enb, cell as u64 + 1),
            TransportAddr::Mem(name.clone()),
        );
        acfg.tick_ms = None;
        let agent = Agent::spawn(acfg, full_bundle(&bs, SmCodec::Flatb)).await.expect("agent");
        agents.push(agent);
        servers.push(tenant.server.clone());
    }
    servers.push(tenant_b.server.clone());
    tokio::time::sleep(std::time::Duration::from_millis(100)).await;
    // Dedicated case: tenant A controls its own eNB directly; NVS there.
    assert!(tenant_a.apply(SliceCtrl::SetAlgo { algo: flexric_sm::slice::SliceAlgo::Nvs }).await);
    Setup { sim, agents, servers, tenant_a, flows, a_slice_ids: (0, 1) }
}

/// Shared: one 50 RB eNB behind the virtualization controller; the same
/// tenant controllers connect northbound.
async fn setup_shared(tag: &str) -> Setup {
    let mut sim = Sim::new(vec![CellConfig::lte("enb-shared", 50)], PathConfig::default());
    let flows = attach_ues(&mut sim, 0, &UES);
    let sim = Arc::new(Mutex::new(sim));

    let tenant_a = spawn_tenant(&format!("fig15-{tag}-a")).await;
    let tenant_b = spawn_tenant(&format!("fig15-{tag}-b")).await;

    let mut south_cfg = ServerConfig::new(
        GlobalRicId::new(Plmn::TEST, 20),
        TransportAddr::Mem(format!("fig15-{tag}-virt")),
    );
    south_cfg.tick_ms = None;
    let virt = VirtController::spawn(
        south_cfg,
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Enb, 99),
        vec![
            TenantConf {
                name: "opA".into(),
                plmn: OP_A,
                sla_milli: 500,
                ctrl_addr: TransportAddr::Mem(format!("fig15-{tag}-a")),
            },
            TenantConf {
                name: "opB".into(),
                plmn: OP_B,
                sla_milli: 500,
                ctrl_addr: TransportAddr::Mem(format!("fig15-{tag}-b")),
            },
        ],
        SmCodec::Flatb,
        500,
        None,
    )
    .await
    .expect("virt controller");

    // The real agent connects to the virtualization controller southbound.
    let bs = SimBs::new(sim.clone(), 0);
    let mut acfg = AgentConfig::new(
        GlobalE2NodeId::new(Plmn::TEST, E2NodeType::Enb, 1),
        TransportAddr::Mem(format!("fig15-{tag}-virt")),
    );
    acfg.tick_ms = None;
    let agent = Agent::spawn(acfg, full_bundle(&bs, SmCodec::Flatb)).await.expect("agent");
    tokio::time::sleep(std::time::Duration::from_millis(100)).await;

    Setup {
        sim,
        agents: vec![agent, virt.north.clone()],
        servers: vec![virt.south.clone(), tenant_a.server.clone(), tenant_b.server.clone()],
        tenant_a,
        flows,
        a_slice_ids: (0, 1),
    }
}

/// Drives virtual time, samples per-UE throughput every 500 ms, applies
/// the timeline, returns `(t_s, [ue throughputs Mbps])` rows.
async fn run_timeline(setup: &Setup, secs: u64) -> Vec<(f64, Vec<f64>)> {
    let mut series = Vec::new();
    let mut last: Vec<u64> =
        setup.flows.iter().map(|f| setup.sim.lock().flow(*f).delivered_bytes).collect();
    let total_ms = secs * 1000;
    let mut t = 0u64;
    let mut did_slice1 = false;
    let mut did_slice2 = false;
    let mut ue4_idle = false;
    let mut b_idle = false;
    while t < total_ms {
        for _ in 0..500 {
            let now = {
                let mut s = setup.sim.lock();
                s.tick();
                s.now_ms()
            };
            for a in &setup.agents {
                a.tick(now);
            }
            for s in &setup.servers {
                s.tick(now);
            }
            t += 1;
        }
        tokio::task::yield_now().await;
        tokio::time::sleep(std::time::Duration::from_micros(300)).await;

        // Timeline actions (sim-time triggered, applied through the
        // tenant controller — over the virtualization layer when shared).
        if !did_slice1 && t >= 8_000 {
            did_slice1 = true;
            let ok = setup
                .tenant_a
                .apply(SliceCtrl::AddModSlices {
                    slices: vec![SliceConf {
                        id: setup.a_slice_ids.0,
                        label: "a-sub1".into(),
                        params: SliceParams::NvsCapacity { share_milli: 660 },
                        ue_sched: UeSchedAlgo::PropFair,
                    }],
                })
                .await;
            eprintln!("  t=8s: operator A creates 66% sub-slice (ok={ok})");
            let ok = setup
                .tenant_a
                .apply(SliceCtrl::AssocUeSlice { assoc: vec![(0x11, setup.a_slice_ids.0)] })
                .await;
            eprintln!("  t=8s: UE1 → sub-slice 1 (ok={ok})");
        }
        if !did_slice2 && t >= 11_000 {
            did_slice2 = true;
            let ok = setup
                .tenant_a
                .apply(SliceCtrl::AddModSlices {
                    slices: vec![SliceConf {
                        id: setup.a_slice_ids.1,
                        label: "a-sub2".into(),
                        params: SliceParams::NvsCapacity { share_milli: 330 },
                        ue_sched: UeSchedAlgo::PropFair,
                    }],
                })
                .await;
            eprintln!("  t=11s: operator A creates 33% sub-slice (ok={ok})");
            let ok = setup
                .tenant_a
                .apply(SliceCtrl::AssocUeSlice { assoc: vec![(0x12, setup.a_slice_ids.1)] })
                .await;
            eprintln!("  t=11s: UE2 → sub-slice 2 (ok={ok})");
        }
        if !ue4_idle && t >= (secs * 1000) / 2 {
            ue4_idle = true;
            setup.sim.lock().set_flow_active(setup.flows[3], false);
            eprintln!("  t={}s: operator B UE4 idle", t / 1000);
        }
        if !b_idle && t >= (secs * 1000) * 4 / 5 {
            b_idle = true;
            setup.sim.lock().set_flow_active(setup.flows[2], false);
            eprintln!("  t={}s: operator B fully idle", t / 1000);
        }

        let ts = t as f64 / 1000.0;
        let mut mbps = Vec::new();
        for (i, f) in setup.flows.iter().enumerate() {
            let b = setup.sim.lock().flow(*f).delivered_bytes;
            mbps.push((b - last[i]) as f64 * 8.0 / 0.5 / 1e6);
            last[i] = b;
        }
        series.push((ts, mbps));
    }
    series
}

fn summarize_phases(label: &str, series: &[(f64, Vec<f64>)], secs: u64) {
    let phase = |lo: f64, hi: f64| -> Vec<f64> {
        let rows: Vec<&Vec<f64>> =
            series.iter().filter(|(t, _)| *t >= lo && *t < hi).map(|(_, m)| m).collect();
        let n = rows.len().max(1) as f64;
        (0..4)
            .map(|i| rows.iter().map(|m| m.get(i).copied().unwrap_or(0.0)).sum::<f64>() / n)
            .collect()
    };
    let half = secs as f64 / 2.0;
    let four_fifth = secs as f64 * 4.0 / 5.0;
    let phases = [
        ("no sub-slices (2-7 s)", phase(2.0, 7.0)),
        ("A sub-sliced 66/33 (13 s-half)", phase(13.0, half)),
        ("B UE4 idle", phase(half + 2.0, four_fifth)),
        ("B fully idle", phase(four_fifth + 2.0, secs as f64)),
    ];
    println!("\n-- {label} --");
    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|(p, m)| {
            vec![
                p.to_string(),
                table::f(m[0]),
                table::f(m[1]),
                table::f(m[2]),
                table::f(m[3]),
                table::f(m[0] + m[1]),
            ]
        })
        .collect();
    table::table(
        &["phase", "A_ue1_mbps", "A_ue2_mbps", "B_ue3_mbps", "B_ue4_mbps", "A_total"],
        &rows,
    );
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args = Args::parse();
    let secs: u64 = args.get_or("secs", 50);

    table::experiment(
        "Fig. 15",
        "Recursive slicing: dedicated (2×25 RB) vs shared (1×50 RB + virtualization)",
    );
    eprintln!("dedicated infrastructure run...");
    let ded = setup_dedicated("ded").await;
    let ded_series = run_timeline(&ded, secs).await;
    summarize_phases("Fig. 15a dedicated (two eNBs)", &ded_series, secs);

    eprintln!("shared infrastructure run...");
    let sh = setup_shared("sh").await;
    let sh_series = run_timeline(&sh, secs).await;
    summarize_phases("Fig. 15b shared (one eNB + virtualization controller)", &sh_series, secs);

    println!();
    println!("Paper shape check: (isolation) A's sub-slicing at 8/11 s leaves B's UEs");
    println!("unchanged in both cases; (sharing) when B idles, A's throughput grows in");
    println!("the shared case (multiplexing gain up to ~100 %) but stays capped at the");
    println!("dedicated eNB rate in the dedicated case.");
}
